"""Tests for fixed-base precomputed exponentiation."""

import random

import pytest

from repro.core.dlr import DLR
from repro.errors import ParameterError
from repro.groups.precompute import FixedBaseExp, PrecomputedEncryptor


class TestFixedBaseExp:
    def test_matches_plain_pow_g(self, small_group, rng):
        table = FixedBaseExp(small_group.g, small_group.p, window=4)
        for _ in range(10):
            k = small_group.random_scalar(rng)
            assert table.pow(k) == small_group.g ** k

    def test_matches_plain_pow_gt(self, small_group, rng):
        z = small_group.gt_generator()
        table = FixedBaseExp(z, small_group.p, window=3)
        for _ in range(10):
            k = small_group.random_scalar(rng)
            assert table.pow(k) == z ** k

    def test_edge_exponents(self, small_group):
        table = FixedBaseExp(small_group.g, small_group.p)
        assert table.pow(0).is_identity()
        assert table.pow(1) == small_group.g
        assert table.pow(small_group.p).is_identity()
        assert table.pow(small_group.p - 1) == small_group.g.inverse()

    def test_random_base(self, small_group, rng):
        base = small_group.random_g(rng)
        table = FixedBaseExp(base, small_group.p, window=5)
        k = small_group.random_scalar(rng)
        assert table.pow(k) == base ** k

    @pytest.mark.parametrize("window", [1, 2, 4, 8])
    def test_all_windows_agree(self, small_group, rng, window):
        k = small_group.random_scalar(rng)
        table = FixedBaseExp(small_group.g, small_group.p, window=window)
        assert table.pow(k) == small_group.g ** k

    def test_invalid_window(self, small_group):
        with pytest.raises(ParameterError):
            FixedBaseExp(small_group.g, small_group.p, window=0)

    def test_table_size(self, small_group):
        table = FixedBaseExp(small_group.g, small_group.p, window=4)
        # Full 2^w rows except the top one, which is trimmed to the
        # digits an exponent < order can actually produce there.
        top_digits = (small_group.p - 1) >> (4 * (table.digits - 1))
        expected = (table.digits - 1) * 16 + top_digits + 1
        assert table.table_elements() == expected
        assert table.table_elements() <= table.digits * 16

    def test_trimmed_top_row_still_covers_max_exponent(self, small_group):
        table = FixedBaseExp(small_group.g, small_group.p, window=4)
        assert table.pow(small_group.p - 1) == small_group.g.inverse()

    def test_dlr_encryptor_factory(self, small_params):
        scheme = DLR(small_params)
        rng = random.Random(3)
        generation = scheme.generate(rng)
        encryptor = scheme.encryptor(generation.public_key)
        message = scheme.group.random_gt(rng)
        ciphertext = encryptor.encrypt(message, rng)
        assert scheme.reference_decrypt(
            generation.share1, generation.share2, ciphertext
        ) == message

    def test_fewer_group_mults_than_ladder(self, small_group, rng):
        """The point of precomputation: per-exponentiation multiplications
        drop well below the double-and-add ladder's count."""
        table = FixedBaseExp(small_group.g, small_group.p, window=4)
        k = small_group.random_scalar(rng) | (1 << 30)  # force full length
        before = small_group.counter.snapshot()
        table.pow(k)
        table_cost = small_group.counter.diff(before).g_mul
        before = small_group.counter.snapshot()
        _ = small_group.g ** k
        # ladder runs inside __pow__: counts as 1 g_exp, so measure via a
        # manual ladder instead
        ladder_cost = int(1.5 * small_group.p.bit_length())
        assert table_cost < ladder_cost / 3


class TestPrecomputedEncryptor:
    def test_matches_reference_encryption(self, small_params):
        scheme = DLR(small_params)
        rng = random.Random(1)
        generation = scheme.generate(rng)
        encryptor = PrecomputedEncryptor(generation.public_key)
        message = scheme.group.random_gt(rng)
        ciphertext = encryptor.encrypt(message, rng)
        assert scheme.reference_decrypt(
            generation.share1, generation.share2, ciphertext
        ) == message

    def test_many_encryptions(self, small_params):
        scheme = DLR(small_params)
        rng = random.Random(2)
        generation = scheme.generate(rng)
        encryptor = PrecomputedEncryptor(generation.public_key, window=5)
        for _ in range(5):
            message = scheme.group.random_gt(rng)
            ciphertext = encryptor.encrypt(message, rng)
            assert scheme.reference_decrypt(
                generation.share1, generation.share2, ciphertext
            ) == message
