"""Unit tests for unknown-dlog sampling (section 5.2 remark)."""

import random
from collections import Counter

from repro.groups import curve
from repro.groups.sampling import random_gt_value, random_subgroup_point


class TestSubgroupPointSampling:
    def test_on_curve_and_in_subgroup(self, small_group, rng):
        params = small_group.params
        for _ in range(10):
            point = random_subgroup_point(params, rng)
            assert curve.is_on_curve(point, params.q)
            assert not point.is_infinity()
            assert curve.scalar_mul(point, params.p, params.q).is_infinity()

    def test_roughly_uniform_on_toy_group(self, toy_group):
        """Chi-squared-ish sanity: a small group's subgroup points should
        all be reachable and no point should dominate."""
        params = toy_group.params
        rng = random.Random(42)
        counts = Counter(
            random_subgroup_point(params, rng) for _ in range(3000)
        )
        # Support should be large (order-p subgroup has p - 1 non-identity
        # points; p ~ 2^16, so 3000 draws should be almost all distinct).
        assert len(counts) > 2800
        assert max(counts.values()) <= 4

    def test_sign_of_y_varies(self, small_group):
        params = small_group.params
        rng = random.Random(5)
        ys = {random_subgroup_point(params, rng).y % 2 for _ in range(30)}
        assert ys == {0, 1}


class TestGTSampling:
    def test_order_p(self, small_group, rng):
        params = small_group.params
        for _ in range(10):
            value = random_gt_value(params, rng)
            assert not value.is_one()
            assert (value ** params.p).is_one()

    def test_distinct_draws(self, small_group, rng):
        params = small_group.params
        values = [random_gt_value(params, rng) for _ in range(20)]
        assert len({v.to_tuple() for v in values}) == 20

    def test_matches_pairing_subgroup(self, small_group, rng):
        """Sampled GT values must live in the same subgroup the pairing
        lands in: their product with pairing outputs stays order-p."""
        params = small_group.params
        value = random_gt_value(params, rng)
        z = small_group.pair(small_group.g, small_group.g)
        combined = z.value * value
        assert (combined ** params.p).is_one()
