"""Unit tests for group-element decoding (the persistence substrate)."""

import pytest

from repro.errors import GroupError
from repro.groups.encoding import decode_g1, decode_gt, g1_roundtrip, gt_roundtrip
from repro.utils.bits import BitString
from repro.utils.serialization import int_width


class TestG1Decoding:
    def test_roundtrip_random_points(self, small_group, rng):
        for _ in range(10):
            element = small_group.random_g(rng)
            assert g1_roundtrip(small_group, element) == element

    def test_roundtrip_identity(self, small_group):
        identity = small_group.g_identity()
        assert g1_roundtrip(small_group, identity) == identity

    def test_roundtrip_both_parities(self, small_group, rng):
        element = small_group.random_g(rng)
        assert g1_roundtrip(small_group, element.inverse()) == element.inverse()

    def test_wrong_length_rejected(self, small_group):
        with pytest.raises(GroupError):
            decode_g1(small_group, BitString(0, 5))

    def test_garbage_x_rejected(self, small_group):
        """An x off the curve must be refused."""
        width = int_width(small_group.params.q)
        rejected = 0
        for x in range(40):
            bits = BitString(1, 1) + BitString(x, width) + BitString(0, 1)
            try:
                decode_g1(small_group, bits)
            except GroupError:
                rejected += 1
        # About half of all x are non-residues, plus subgroup checks.
        assert rejected > 10

    def test_out_of_field_x_rejected(self, small_group):
        width = int_width(small_group.params.q)
        bits = BitString(1, 1) + BitString((1 << width) - 1, width) + BitString(0, 1)
        with pytest.raises(GroupError):
            decode_g1(small_group, bits)

    def test_malformed_identity_rejected(self, small_group):
        width = int_width(small_group.params.q)
        bits = BitString(0, 1) + BitString(7, width) + BitString(1, 1)
        with pytest.raises(GroupError):
            decode_g1(small_group, bits)

    def test_wrong_subgroup_rejected(self, small_group, rng):
        """A curve point outside the order-p subgroup must be refused."""
        from repro.groups.curve import Point
        from repro.math.modular import is_quadratic_residue, sqrt_mod

        params = small_group.params
        q = params.q
        width = int_width(q)
        # Find a point NOT in the subgroup: random curve point without
        # cofactor clearing, checked to have full-ish order.
        import random as _random

        search = _random.Random(1)
        from repro.groups import curve as curve_mod

        while True:
            x = search.randrange(q)
            rhs = (x * x * x + x) % q
            if rhs and is_quadratic_residue(rhs, q):
                y = sqrt_mod(rhs, q)
                point = Point(x, y, False)
                if not curve_mod.scalar_mul(point, params.p, q).is_infinity():
                    break
        bits = BitString(1, 1) + BitString(x, width) + BitString(y % 2, 1)
        with pytest.raises(GroupError):
            decode_g1(small_group, bits)


class TestGTDecoding:
    def test_roundtrip(self, small_group, rng):
        for _ in range(10):
            element = small_group.random_gt(rng)
            assert gt_roundtrip(small_group, element) == element

    def test_roundtrip_pairing_output(self, small_group, rng):
        element = small_group.pair(small_group.random_g(rng), small_group.g)
        assert gt_roundtrip(small_group, element) == element

    def test_roundtrip_identity(self, small_group):
        identity = small_group.gt_identity()
        assert gt_roundtrip(small_group, identity) == identity

    def test_wrong_length_rejected(self, small_group):
        with pytest.raises(GroupError):
            decode_gt(small_group, BitString(0, 3))

    def test_zero_rejected(self, small_group):
        width = int_width(small_group.params.q)
        with pytest.raises(GroupError):
            decode_gt(small_group, BitString(0, 2 * width))

    def test_wrong_subgroup_rejected(self, small_group):
        """A random field element is (whp) not in the mu_p subgroup."""
        width = int_width(small_group.params.q)
        bits = BitString(2, width) + BitString(3, width)
        with pytest.raises(GroupError):
            decode_gt(small_group, bits)

    def test_out_of_field_rejected(self, small_group):
        width = int_width(small_group.params.q)
        bits = BitString((1 << width) - 1, width) + BitString(0, width)
        with pytest.raises(GroupError):
            decode_gt(small_group, bits)
