"""Property tests for the fast group-arithmetic kernels.

Every kernel is pinned against the naive reference it replaces:
``multiexp`` against the per-term product of powers, the precomputed
pairing schedule against :func:`~repro.groups.pairing.tate_pairing`, the
projective Miller loop against the affine one.  The kernels must be
*invisible* -- bit-identical values, and the only observable difference
the operation-counter profile.
"""

import random

import pytest

from repro.errors import GroupError
from repro.groups import fastops, preset_group
from repro.groups.bilinear import G1Element, GTElement
from repro.groups.pairing import (
    PairingPrecomp,
    final_exponentiation,
    miller_loop,
    miller_loop_affine,
    tate_pairing,
)


def naive_product(bases, exponents):
    result = None
    for base, exponent in zip(bases, exponents):
        term = base ** exponent
        result = term if result is None else result * term
    return result


@pytest.fixture()
def rng():
    return random.Random(0xFA57)


# ---------------------------------------------------------------------------
# multiexp == naive product of powers


class TestMultiexpMatchesNaive:
    @pytest.mark.parametrize("terms", [1, 2, 3, 7, 26, 64, 130])
    def test_g1(self, small_group, rng, terms):
        bases = [small_group.random_g(rng) for _ in range(terms)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(terms)]
        assert G1Element.multiexp(bases, exponents) == naive_product(bases, exponents)

    @pytest.mark.parametrize("terms", [1, 2, 3, 7, 26, 64, 130])
    def test_gt(self, small_group, rng, terms):
        bases = [small_group.random_gt(rng) for _ in range(terms)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(terms)]
        assert GTElement.multiexp(bases, exponents) == naive_product(bases, exponents)

    def test_matches_reference_mode(self, small_group, rng):
        """The fast path and the reference path agree on identical inputs."""
        bases = [small_group.random_g(rng) for _ in range(9)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(9)]
        fast = G1Element.multiexp(bases, exponents)
        with fastops.reference_mode():
            reference = G1Element.multiexp(bases, exponents)
        assert fast == reference

    def test_small_exponents(self, small_group, rng):
        bases = [small_group.random_g(rng) for _ in range(6)]
        exponents = [1, 2, 3, 1, 5, 8]
        assert G1Element.multiexp(bases, exponents) == naive_product(bases, exponents)

    def test_group_dispatch(self, small_group, rng):
        g_bases = [small_group.random_g(rng) for _ in range(4)]
        gt_bases = [small_group.random_gt(rng) for _ in range(4)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(4)]
        assert small_group.multiexp(g_bases, exponents) == naive_product(
            g_bases, exponents
        )
        assert small_group.multiexp(gt_bases, exponents) == naive_product(
            gt_bases, exponents
        )


class TestMultiexpEdgeCases:
    def test_no_bases_raises(self, small_group):
        with pytest.raises(GroupError):
            G1Element.multiexp([], [])
        with pytest.raises(GroupError):
            small_group.multiexp([], [])

    def test_length_mismatch_raises(self, small_group, rng):
        bases = [small_group.random_g(rng) for _ in range(3)]
        with pytest.raises(GroupError):
            G1Element.multiexp(bases, [1, 2])

    def test_zero_exponents_dropped(self, small_group, rng):
        bases = [small_group.random_g(rng) for _ in range(5)]
        exponents = [0, 7, 0, 11, 0]
        assert G1Element.multiexp(bases, exponents) == bases[1] ** 7 * bases[3] ** 11

    def test_identity_bases_dropped(self, small_group, rng):
        u = small_group.random_g(rng)
        bases = [small_group.g_identity(), u, small_group.g_identity()]
        assert G1Element.multiexp(bases, [3, 5, 9]) == u ** 5

    def test_all_trivial_terms_give_identity(self, small_group, rng):
        bases = [small_group.g_identity(), small_group.random_g(rng)]
        assert G1Element.multiexp(bases, [4, 0]) == small_group.g_identity()
        gt_bases = [small_group.gt_identity()]
        assert GTElement.multiexp(gt_bases, [12]) == small_group.gt_identity()

    def test_exponents_fold_mod_p(self, small_group, rng):
        """Order-p subgroup: e and e mod p give the same element, so the
        division-folding trick (exponent p - s) is sound."""
        p = small_group.p
        u, v = small_group.random_g(rng), small_group.random_g(rng)
        s = rng.randrange(1, p)
        assert G1Element.multiexp([u, v], [p + 3, 2 * p + s]) == u ** 3 * v ** s
        # x ** (p - s) == x ** -s: the folded form of a division.
        assert G1Element.multiexp([u, v], [1, p - s]) == u / v ** s


class TestKernelAgreement:
    """Straus and Pippenger are selected by term count; force both on
    the same input and require identical results."""

    def test_g1_straus_vs_pippenger(self, small_group, rng):
        q = small_group.q
        points = [small_group.random_g(rng).point for _ in range(20)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(20)]
        straus = fastops._straus_points(points, exponents, q)
        pippenger = fastops._pippenger_points(points, exponents, q)
        assert straus == pippenger

    def test_fq2_straus_vs_pippenger(self, small_group, rng):
        q = small_group.q
        values = [
            (v.value.a, v.value.b)
            for v in (small_group.random_gt(rng) for _ in range(20))
        ]
        exponents = [rng.randrange(1, small_group.p) for _ in range(20)]
        straus = fastops._straus_fq2(values, exponents, q)
        pippenger = fastops._pippenger_fq2(values, exponents, q)
        assert straus == pippenger

    def test_threshold_boundary(self, small_group, rng):
        """Term counts straddling PIPPENGER_THRESHOLD agree with naive."""
        for terms in (
            fastops.PIPPENGER_THRESHOLD - 1,
            fastops.PIPPENGER_THRESHOLD,
        ):
            bases = [small_group.random_g(rng) for _ in range(terms)]
            exponents = [rng.randrange(1, small_group.p) for _ in range(terms)]
            assert G1Element.multiexp(bases, exponents) == naive_product(
                bases, exponents
            )


# ---------------------------------------------------------------------------
# Fixed-argument pairing precomputation


class TestPairingPrecomp:
    def test_matches_tate_pairing(self, small_group, rng):
        left = small_group.random_g(rng).point
        precomp = PairingPrecomp(left, small_group.params)
        for _ in range(10):
            right = small_group.random_g(rng).point
            assert precomp.pair_with(right) == tate_pairing(
                left, right, small_group.params
            )

    def test_element_handle_matches_group_pair(self, small_group, rng):
        left = small_group.random_g(rng)
        handle = small_group.pairing_precomp(left)
        for _ in range(5):
            right = small_group.random_g(rng)
            assert handle.pair(right) == small_group.pair(left, right)

    def test_infinity_left(self, small_group, rng):
        left = small_group.g_identity()
        handle = small_group.pairing_precomp(left)
        right = small_group.random_g(rng)
        assert handle.pair(right) == small_group.gt_identity()

    def test_infinity_right(self, small_group, rng):
        left = small_group.random_g(rng)
        handle = small_group.pairing_precomp(left)
        assert handle.pair(small_group.g_identity()) == small_group.gt_identity()

    def test_reference_mode_same_values(self, small_group, rng):
        left = small_group.random_g(rng)
        right = small_group.random_g(rng)
        fast = small_group.pairing_precomp(left).pair(right)
        with fastops.reference_mode():
            reference = small_group.pairing_precomp(left).pair(right)
        assert fast == reference

    def test_bilinearity_through_schedule(self, small_group, rng):
        """e(P, aQ + bR) == e(P,Q)^a * e(P,R)^b through the cached lines."""
        u = small_group.random_g(rng)
        v, w = small_group.random_g(rng), small_group.random_g(rng)
        a, b = rng.randrange(1, small_group.p), rng.randrange(1, small_group.p)
        handle = small_group.pairing_precomp(u)
        assert handle.pair(v ** a * w ** b) == handle.pair(v) ** a * handle.pair(w) ** b


class TestMillerLoop:
    def test_projective_matches_affine(self, small_group, rng):
        """The inversion-free loop differs from the affine one only by
        F_q factors, which the final exponentiation kills."""
        params = small_group.params
        for _ in range(8):
            left = small_group.random_g(rng).point
            right = small_group.random_g(rng).point
            projective = final_exponentiation(miller_loop(left, right, params), params)
            affine = final_exponentiation(
                miller_loop_affine(left, right, params), params
            )
            assert projective == affine


# ---------------------------------------------------------------------------
# Counter contract


class TestCounterContract:
    def test_fast_multiexp_counts_terms(self, rng):
        group = preset_group(32)
        bases = [group.random_g(rng) for _ in range(6)]
        exponents = [rng.randrange(1, group.p) for _ in range(6)]
        before = group.counter.snapshot()
        G1Element.multiexp(bases, exponents)
        moved = group.counter.diff(before)
        assert moved.g_multiexp == 6
        assert moved.g_exp == 0

    def test_trivial_terms_not_counted(self, rng):
        group = preset_group(32)
        bases = [group.g_identity()] + [group.random_g(rng) for _ in range(3)]
        before = group.counter.snapshot()
        G1Element.multiexp(bases, [5, 9, 0, 7])
        moved = group.counter.diff(before)
        assert moved.g_multiexp == 2  # only the two real terms

    def test_single_surviving_term_uses_plain_exp(self, rng):
        """A one-term multiexp degenerates to ``**`` (classic profile)."""
        group = preset_group(32)
        bases = [group.g_identity(), group.random_g(rng)]
        before = group.counter.snapshot()
        G1Element.multiexp(bases, [5, 7])
        moved = group.counter.diff(before)
        assert moved.g_multiexp == 0
        assert moved.g_exp == 1

    def test_reference_mode_counts_classic_profile(self, rng):
        group = preset_group(32)
        bases = [group.random_g(rng) for _ in range(6)]
        exponents = [rng.randrange(1, group.p) for _ in range(6)]
        before = group.counter.snapshot()
        with fastops.reference_mode():
            G1Element.multiexp(bases, exponents)
        moved = group.counter.diff(before)
        assert moved.g_multiexp == 0
        assert moved.g_exp == 6
        assert moved.g_mul == 5

    def test_precomp_counter(self, rng):
        group = preset_group(32)
        handle = group.pairing_precomp(group.random_g(rng))
        right = group.random_g(rng)
        before = group.counter.snapshot()
        handle.pair(right)
        moved = group.counter.diff(before)
        assert moved.pairings_precomp == 1
        assert moved.pairings == 0

    def test_precomp_counter_reference_mode(self, rng):
        group = preset_group(32)
        right = group.random_g(rng)
        with fastops.reference_mode():
            handle = group.pairing_precomp(group.random_g(rng))
            before = group.counter.snapshot()
            handle.pair(right)
        moved = group.counter.diff(before)
        assert moved.pairings == 1
        assert moved.pairings_precomp == 0

    def test_reference_mode_restores_flag(self):
        assert fastops.enabled()
        with fastops.reference_mode():
            assert not fastops.enabled()
            with fastops.reference_mode():
                assert not fastops.enabled()
            assert not fastops.enabled()
        assert fastops.enabled()
