"""Equivalence suite for the amortized batch kernels.

``batch_multiexp_*`` shares one window decision and one Montgomery-trick
inversion across a vector of multiexp instances; ``evaluate_many`` /
``pair_many`` serve a vector of right points from one cached Miller
schedule, optionally fanned across the :mod:`repro.parallel` process
pool.  All of them are *pure reorganizations*: every output must be
bit-identical to the sequential loop they replace, on every available
field backend, at sizes straddling the Pippenger threshold, and with
the pool active.
"""

import os
import random

import pytest

from repro.groups import fastops, preset_group
from repro.groups.bilinear import G1Element, GTElement
from repro.groups.fastops import PIPPENGER_THRESHOLD
from repro.groups.pairing import PairingPrecomp
from repro.math.backend import available_backends, use_backend
from repro.parallel import parallel_map, set_jobs, shutdown_pool

BACKENDS = available_backends()

#: Instance sizes the shared-window batch must triage correctly:
#: single-term, small Straus, straddling the Pippenger threshold.
SIZES = [1, 2, 5, PIPPENGER_THRESHOLD - 1, PIPPENGER_THRESHOLD, PIPPENGER_THRESHOLD + 3]


@pytest.fixture()
def rng():
    return random.Random(0xBA7C4)


def _g1_instances(group, rng, sizes):
    return [
        (
            tuple(group.random_g(rng) for _ in range(size)),
            tuple(rng.randrange(1, group.p) for _ in range(size)),
        )
        for size in sizes
    ]


def _gt_instances(group, rng, sizes):
    return [
        (
            tuple(group.random_gt(rng) for _ in range(size)),
            tuple(rng.randrange(1, group.p) for _ in range(size)),
        )
        for size in sizes
    ]


class TestMultiexpBatchEquivalence:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_g1_matches_sequential(self, small_group, rng, backend_name):
        with use_backend(backend_name):
            instances = _g1_instances(small_group, rng, SIZES)
            batched = G1Element.multiexp_batch(instances)
            sequential = [
                G1Element.multiexp(bases, exponents) for bases, exponents in instances
            ]
        assert batched == sequential

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_gt_matches_sequential(self, small_group, rng, backend_name):
        with use_backend(backend_name):
            instances = _gt_instances(small_group, rng, SIZES)
            batched = GTElement.multiexp_batch(instances)
            sequential = [
                GTElement.multiexp(bases, exponents) for bases, exponents in instances
            ]
        assert batched == sequential

    def test_empty_batch(self):
        assert G1Element.multiexp_batch([]) == []
        assert GTElement.multiexp_batch([]) == []

    def test_empty_instance_raises_like_sequential(self, small_group, rng):
        from repro.errors import GroupError

        good = _g1_instances(small_group, rng, [3])
        with pytest.raises(GroupError):
            G1Element.multiexp_batch([good[0], ((), ())])

    def test_batch_of_one(self, small_group, rng):
        instances = _g1_instances(small_group, rng, [7])
        [result] = G1Element.multiexp_batch(instances)
        assert result == G1Element.multiexp(*instances[0])

    def test_reference_mode_matches(self, small_group, rng):
        instances = _g1_instances(small_group, rng, [3, 9])
        fast = G1Element.multiexp_batch(instances)
        with fastops.reference_mode():
            reference = G1Element.multiexp_batch(instances)
        assert fast == reference

    def test_counter_totals_match_sequential(self, small_group, rng):
        """The batch kernel must book the same folded-term totals as the
        per-instance loop, or the BENCH_ops baselines drift."""
        instances = _g1_instances(small_group, rng, [2, 5, PIPPENGER_THRESHOLD])
        small_group.counter.reset()
        G1Element.multiexp_batch(instances)
        batched = small_group.counter.as_dict()
        small_group.counter.reset()
        for bases, exponents in instances:
            G1Element.multiexp(bases, exponents)
        sequential = small_group.counter.as_dict()
        small_group.counter.reset()
        assert batched == sequential

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_pooled_dispatch_matches(self, small_group, rng, backend_name):
        """jobs=2 fans the kernel instances across worker processes; the
        re-lifted results must be identical to the in-process run."""
        with use_backend(backend_name):
            instances = _g1_instances(small_group, rng, [3, 6, 9, 4, 8, 2, 5, 7, 11, 3])
            in_process = G1Element.multiexp_batch(instances)
            set_jobs(2)
            try:
                pooled = G1Element.multiexp_batch(instances)
            finally:
                set_jobs(1)
                shutdown_pool()
        assert pooled == in_process


class TestEvaluateManyEquivalence:
    def _schedule(self, group, rng):
        left = group.random_g(rng).point
        return PairingPrecomp(left, group.params)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_matches_pair_with_loop(self, small_group, rng, backend_name):
        with use_backend(backend_name):
            precomp = self._schedule(small_group, rng)
            rights = [small_group.random_g(rng).point for _ in range(9)]
            many = precomp.pair_with_many(rights)
            loop = [precomp.pair_with(right) for right in rights]
        assert many == loop

    def test_empty_and_single(self, small_group, rng):
        precomp = self._schedule(small_group, rng)
        assert precomp.pair_with_many([]) == []
        right = small_group.random_g(rng).point
        assert precomp.pair_with_many([right]) == [precomp.pair_with(right)]

    def test_infinity_entries_pass_through(self, small_group, rng):
        from repro.groups.curve import INFINITY

        precomp = self._schedule(small_group, rng)
        rights = [
            small_group.random_g(rng).point,
            INFINITY,
            small_group.random_g(rng).point,
        ]
        many = precomp.pair_with_many(rights)
        assert many == [precomp.pair_with(right) for right in rights]

    def test_pooled_matches_in_process(self, small_group, rng):
        precomp = self._schedule(small_group, rng)
        rights = [small_group.random_g(rng).point for _ in range(24)]
        in_process = precomp.pair_with_many(rights, jobs=1)
        try:
            pooled = precomp.pair_with_many(rights, jobs=2)
        finally:
            shutdown_pool()
        assert pooled == in_process

    def test_pair_many_handle_matches_and_counts(self, small_group, rng):
        left = small_group.random_g(rng)
        rights = [small_group.random_g(rng) for _ in range(6)]
        handle = small_group.pairing_precomp(left)
        small_group.counter.reset()
        many = handle.pair_many(rights)
        counted = small_group.counter.pairings_precomp
        small_group.counter.reset()
        loop = [small_group.pairing_precomp(left).pair(right) for right in rights]
        assert many == loop
        assert counted == len(rights)

    def test_pair_many_reference_mode_matches(self, small_group, rng):
        left = small_group.random_g(rng)
        rights = [small_group.random_g(rng) for _ in range(4)]
        fast = small_group.pairing_precomp(left).pair_many(rights)
        with fastops.reference_mode():
            reference = small_group.pairing_precomp(left).pair_many(rights)
        assert fast == reference


def _add_hundred(chunk):
    """Module-level so the pool can pickle it (locals cannot cross)."""
    return [item + 100 for item in chunk]


class TestParallelMap:
    def test_small_batches_stay_in_process(self):
        calls = []

        def worker(chunk):
            calls.append(list(chunk))
            return [item * 2 for item in chunk]

        assert parallel_map(worker, [1, 2, 3], jobs=4, min_batch=8) == [2, 4, 6]
        # One call with the whole vector: no pool for a sub-threshold batch.
        assert calls == [[1, 2, 3]]

    def test_jobs_one_never_pools(self):
        def worker(chunk):
            return [os.getpid() for _ in chunk]

        pids = set(parallel_map(worker, list(range(32)), jobs=1))
        assert pids == {os.getpid()}

    def test_order_preserved_across_chunks(self):
        items = list(range(23))
        try:
            result = parallel_map(_add_hundred, items, jobs=2, min_batch=2)
        finally:
            shutdown_pool()
        assert result == [item + 100 for item in items]

    def test_env_default(self, monkeypatch):
        from repro import parallel

        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setattr(parallel, "_jobs", None)
        assert parallel.get_jobs() == 3
        # get_jobs caches; a fresh resolution of a malformed value falls
        # back to 1 (pool disabled) rather than crashing startup.
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        monkeypatch.setattr(parallel, "_jobs", None)
        assert parallel.get_jobs() == 1
