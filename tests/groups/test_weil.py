"""Weil-pairing cross-check of the Miller machinery.

The Weil implementation shares no shortcuts with the production Tate
path (no denominator elimination, generic F_{q^2} curve arithmetic, no
final exponentiation), so agreement on the pairing axioms is strong
independent evidence for both.
"""

import random

import pytest

from repro.groups import curve, preset_group
from repro.groups.weil import distort, general_miller, lift_base_point, weil_pairing
from repro.math.fields import Fq2


@pytest.fixture(scope="module")
def group():
    return preset_group(16)


@pytest.fixture(scope="module")
def params(group):
    return group.params


class TestWeilPairing:
    def test_non_degenerate(self, group, params):
        w = weil_pairing(group.g.point, group.g.point, params)
        assert not w.is_one()
        assert (w ** params.p).is_one()

    def test_bilinearity_grid(self, group, params):
        g = group.g.point
        w = weil_pairing(g, g, params)
        for a in (2, 3, 7):
            for b in (5, 11):
                left = weil_pairing(
                    curve.scalar_mul(g, a, params.q),
                    curve.scalar_mul(g, b, params.q),
                    params,
                )
                assert left == w ** (a * b)

    def test_symmetry(self, group, params):
        rng = random.Random(1)
        p = group.random_g(rng).point
        q = group.random_g(rng).point
        assert weil_pairing(p, q, params) == weil_pairing(q, p, params)

    def test_identity_inputs(self, group, params):
        from repro.groups.curve import INFINITY

        assert weil_pairing(INFINITY, group.g.point, params).is_one()
        assert weil_pairing(group.g.point, INFINITY, params).is_one()

    def test_multiplicativity(self, group, params):
        rng = random.Random(2)
        p1 = group.random_g(rng).point
        p2 = group.random_g(rng).point
        q = group.random_g(rng).point
        combined = curve.add(p1, p2, params.q)
        assert weil_pairing(combined, q, params) == (
            weil_pairing(p1, q, params) * weil_pairing(p2, q, params)
        )

    def test_consistent_with_tate_up_to_fixed_exponent(self, group, params):
        """Two non-degenerate pairings on a cyclic group differ by a
        fixed exponent k: find k from (g, g), verify on random points."""
        rng = random.Random(3)
        t_gg = group.pair(group.g, group.g).value
        w_gg = weil_pairing(group.g.point, group.g.point, params)
        k = None
        acc = Fq2.one(params.q)
        for i in range(params.p):
            if acc == w_gg:
                k = i
                break
            acc = acc * t_gg
        assert k is not None and k != 0
        for _ in range(2):
            p = group.random_g(rng)
            q = group.random_g(rng)
            t = group.pair(p, q).value
            w = weil_pairing(p.point, q.point, params)
            assert w == t ** k


class TestGeneralMiller:
    def test_fp_of_distorted_self_nontrivial(self, group, params):
        g = lift_base_point(group.g.point, params.q)
        phi_g = distort(group.g.point, params.q)
        value = general_miller(g, phi_g, params.p, params.q)
        assert not value.is_zero()

    def test_infinity_inputs(self, group, params):
        g = lift_base_point(group.g.point, params.q)
        assert general_miller(None, g, params.p, params.q).is_one()
        assert general_miller(g, None, params.p, params.q).is_one()

    def test_distortion_map_lands_on_curve(self, group, params):
        """phi(P) satisfies y^2 = x^3 + x over F_{q^2}."""
        rng = random.Random(4)
        for _ in range(5):
            point = group.random_g(rng).point
            phi = distort(point, params.q)
            assert phi is not None
            x, y = phi
            assert y * y == x * x * x + x

    def test_distorted_point_is_independent(self, group, params):
        """phi(P) is not a multiple of P (the whole point of the
        distortion map): the modified self-pairing w(P, P) =
        e_Weil(P, phi(P)) is nontrivial, which is impossible for linearly
        dependent arguments (the Weil pairing is alternating)."""
        w = weil_pairing(group.g.point, group.g.point, params)
        assert not w.is_one()

    def test_degenerate_evaluation_detected(self, group, params):
        """Evaluating f_{p,P} *at P itself* (a point of the base divisor)
        is undefined; the implementation refuses instead of returning a
        wrong value."""
        from repro.errors import GroupError

        g = lift_base_point(group.g.point, params.q)
        with pytest.raises(GroupError):
            general_miller(g, g, params.p, params.q)
