"""Unit tests for the parameters-generating algorithm G(1^n)."""

import random

import pytest

from repro.errors import ParameterError
from repro.groups.pairing_params import PairingParams, generate_params, preset_params
from repro.math.primes import is_prime


class TestGenerateParams:
    @pytest.mark.parametrize("n", [16, 24, 32, 48])
    def test_structure(self, n):
        params = generate_params(n, random.Random(n))
        assert params.p.bit_length() == n
        assert is_prime(params.p)
        assert is_prime(params.q)
        assert params.q == params.h * params.p - 1
        assert params.q % 4 == 3
        assert params.h % 4 == 0

    def test_p_divides_curve_order(self):
        params = generate_params(32, random.Random(1))
        assert (params.q + 1) % params.p == 0

    def test_too_small_raises(self):
        with pytest.raises(ParameterError):
            generate_params(3)

    def test_deterministic_given_rng(self):
        a = generate_params(24, random.Random(9))
        b = generate_params(24, random.Random(9))
        assert a == b


class TestPresetParams:
    def test_cached_identity(self):
        assert preset_params(16) is preset_params(16)

    def test_distinct_sizes_distinct_params(self):
        assert preset_params(16) != preset_params(32)

    def test_log_p(self):
        assert preset_params(32).log_p == 32

    def test_gt_exponent(self):
        params = preset_params(16)
        assert params.gt_exponent() * params.p == params.q * params.q - 1


class TestValidation:
    def test_rejects_inconsistent_q(self):
        good = preset_params(16)
        with pytest.raises(ParameterError):
            PairingParams(good.n, good.p, good.q + 4, good.h)

    def test_rejects_composite_p(self):
        good = preset_params(16)
        # Construct q' = h' * p' - 1 with composite p'.
        with pytest.raises(ParameterError):
            PairingParams(good.n, good.p * 3, good.p * 3 * 4 - 1, 4)
