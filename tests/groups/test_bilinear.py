"""Unit tests for the BilinearGroup element API and operation counters."""

import random

import pytest

from repro.errors import GroupError
from repro.groups import preset_group


class TestG1Element:
    def test_group_law(self, small_group, rng):
        a, b = small_group.random_g(rng), small_group.random_g(rng)
        assert a * b == b * a
        assert (a * b) / b == a

    def test_identity(self, small_group, rng):
        e = small_group.g_identity()
        a = small_group.random_g(rng)
        assert a * e == a
        assert e.is_identity()

    def test_pow_zero_is_identity(self, small_group, rng):
        a = small_group.random_g(rng)
        assert (a ** 0).is_identity()

    def test_pow_negative_is_inverse_pow(self, small_group, rng):
        a = small_group.random_g(rng)
        assert a ** -1 == a.inverse()
        assert a ** -3 == (a ** 3).inverse()

    def test_pow_reduced_mod_p(self, small_group, rng):
        a = small_group.random_g(rng)
        k = rng.randrange(small_group.p)
        assert a ** (k + small_group.p) == a ** k

    def test_order_p(self, small_group, rng):
        a = small_group.random_g(rng)
        assert (a ** small_group.p).is_identity()

    def test_hashable_consistent_with_eq(self, small_group, rng):
        a = small_group.random_g(rng)
        b = a ** 1
        assert a == b
        assert hash(a) == hash(b)

    def test_cross_group_rejected(self, small_group, toy_group, rng):
        a = small_group.random_g(rng)
        b = toy_group.random_g(rng)
        with pytest.raises(GroupError):
            a * b


class TestGTElement:
    def test_group_law(self, small_group, rng):
        a, b = small_group.random_gt(rng), small_group.random_gt(rng)
        assert a * b == b * a
        assert (a * b) / b == a

    def test_inverse(self, small_group, rng):
        a = small_group.random_gt(rng)
        assert (a * a.inverse()).is_identity()

    def test_pow(self, small_group, rng):
        a = small_group.random_gt(rng)
        assert a ** 2 == a * a
        assert a ** -1 == a.inverse()

    def test_order_p(self, small_group, rng):
        a = small_group.random_gt(rng)
        assert (a ** small_group.p).is_identity()

    def test_gt_generator_cached(self, small_group):
        assert small_group.gt_generator() is small_group.gt_generator()

    def test_gt_generator_is_pairing(self, small_group):
        assert small_group.gt_generator() == small_group.pair(small_group.g, small_group.g)


class TestCounters:
    def test_pairing_counted(self, small_group, rng):
        before = small_group.counter.snapshot()
        small_group.pair(small_group.g, small_group.g)
        delta = small_group.counter.diff(before)
        assert delta.pairings == 1

    def test_exponentiation_counted(self, small_group, rng):
        before = small_group.counter.snapshot()
        _ = small_group.g ** 5
        _ = small_group.gt_generator() ** 3
        delta = small_group.counter.diff(before)
        assert delta.g_exp == 1
        assert delta.gt_exp == 1

    def test_multiplication_counted(self, small_group, rng):
        a, b = small_group.random_g(rng), small_group.random_g(rng)
        before = small_group.counter.snapshot()
        _ = a * b
        delta = small_group.counter.diff(before)
        assert delta.g_mul == 1

    def test_reset(self):
        group = preset_group(16)
        group.pair(group.g, group.g)
        group.counter.reset()
        assert group.counter.pairings == 0

    def test_exponentiations_property(self, small_group, rng):
        before = small_group.counter.snapshot()
        _ = small_group.g ** 2
        _ = small_group.g ** 3
        delta = small_group.counter.diff(before)
        assert delta.exponentiations == 2


class TestDeterminism:
    def test_preset_group_generator_stable(self):
        a = preset_group(16)
        from repro.groups.bilinear import BilinearGroup

        b = BilinearGroup(a.params)
        assert a.g == b.g

    def test_scalar_bits(self, small_group):
        assert small_group.scalar_bits() == small_group.params.p.bit_length()

    def test_random_scalar_in_range(self, small_group, rng):
        for _ in range(10):
            assert 0 <= small_group.random_scalar(rng) < small_group.p
