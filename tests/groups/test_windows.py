"""The shared window-selection cost models (:mod:`repro.groups.windows`).

The Straus and Pippenger models used to live inline in ``fastops``; the
first two test classes pin the shared module to those historical
formulas exactly (any drift would silently change which kernel variant
every multiexp call site runs).  The rest covers the fixed-base model
and its consumer :class:`~repro.groups.precompute.FixedBaseExp`.
"""

import random

import pytest

from repro.errors import ParameterError
from repro.groups import preset_group
from repro.groups.precompute import FixedBaseExp, PrecomputedEncryptor
from repro.groups.windows import (
    MAX_BUCKET_WINDOW,
    MAX_FIXED_BASE_WINDOW,
    MAX_STRAUS_WINDOW,
    WindowProfile,
    bucket_window,
    fixed_base_window,
    profile_for,
    straus_window,
)
from repro.math.backend import get_backend, use_backend

SWEEP = [
    (terms, bits)
    for terms in (1, 2, 3, 7, 16, 26, 64, 130, 512, 2048)
    for bits in (1, 8, 17, 32, 64, 128, 256, 521)
]


def historical_straus(terms: int, bits: int) -> int:
    """The pre-refactor ``fastops._window_size`` formula, verbatim."""
    best_w, best_cost = 1, None
    for w in range(1, 8):
        cost = terms * ((1 << w) - 2) + bits + terms * (bits / w) * (1 - 2.0 ** -w)
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def historical_bucket(terms: int, bits: int) -> int:
    """The pre-refactor ``fastops._bucket_window_size`` formula, verbatim."""
    best_w, best_cost = 1, None
    for w in range(1, 12):
        cost = bits + (bits / w) * (terms + (1 << (w + 1)))
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


class TestStrausWindow:
    @pytest.mark.parametrize("terms,bits", SWEEP)
    def test_matches_historical_formula(self, terms, bits):
        assert straus_window(terms, bits) == historical_straus(terms, bits)

    def test_pinned_values(self):
        # Spot values so a change to *both* the model and the historical
        # reimplementation above still trips something.
        assert straus_window(8, 32) == 2
        assert straus_window(26, 64) == 3
        assert straus_window(130, 256) == 4

    def test_bounds(self):
        for terms, bits in SWEEP:
            assert 1 <= straus_window(terms, bits) <= MAX_STRAUS_WINDOW


class TestBucketWindow:
    @pytest.mark.parametrize("terms,bits", SWEEP)
    def test_matches_historical_formula(self, terms, bits):
        assert bucket_window(terms, bits) == historical_bucket(terms, bits)

    def test_pinned_values(self):
        assert bucket_window(26, 64) == 3
        assert bucket_window(130, 128) == 5
        assert bucket_window(512, 256) == 6

    def test_bounds(self):
        for terms, bits in SWEEP:
            assert 1 <= bucket_window(terms, bits) <= MAX_BUCKET_WINDOW

    def test_wide_windows_need_many_terms(self):
        # The bucket fold's 2^{w+1} term keeps windows narrow until the
        # term count dominates it.
        assert bucket_window(4, 256) < bucket_window(4096, 256)


class TestFixedBaseWindow:
    def test_pinned_values(self):
        assert fixed_base_window(32, expected_uses=1) == 1
        assert fixed_base_window(32, expected_uses=16) == 4
        assert fixed_base_window(256, expected_uses=256) == 6
        assert fixed_base_window(256, expected_uses=4096) == 10

    def test_bounds_and_monotonicity(self):
        previous = 0
        for uses in (1, 4, 16, 64, 256, 1024, 4096):
            window = fixed_base_window(128, expected_uses=uses)
            assert 1 <= window <= MAX_FIXED_BASE_WINDOW
            # More uses amortise a bigger table: never a narrower window.
            assert window >= previous
            previous = window

    def test_single_use_builds_no_table(self):
        # One exponentiation cannot amortise any table: w=1 minimises.
        for bits in (16, 64, 256, 1024):
            assert fixed_base_window(bits, expected_uses=1) == 1


class TestProfiles:
    def test_profile_for_reads_backend_costs(self):
        assert profile_for(get_backend("python")) == WindowProfile(1.0, 1.0)
        with use_backend("python"):
            assert profile_for() == WindowProfile(1.0, 1.0)

    def test_uniform_scaling_never_shifts_selection(self):
        # The models are homogeneous in the add cost; a backend that is
        # uniformly k times faster picks identical windows.
        scaled = WindowProfile(add_cost=0.04, double_cost=0.04)
        for terms, bits in SWEEP:
            assert straus_window(terms, bits, scaled) == straus_window(terms, bits)
            assert bucket_window(terms, bits, scaled) == bucket_window(terms, bits)
            assert fixed_base_window(bits, 256, scaled) == fixed_base_window(bits, 256)

    def test_profile_is_frozen(self):
        profile = WindowProfile()
        with pytest.raises(AttributeError):
            profile.add_cost = 2.0


class TestFixedBaseExpAutoWindow:
    @pytest.fixture()
    def rng(self):
        return random.Random(0x51DE)

    def test_auto_window_matches_cost_model(self, small_group):
        table = FixedBaseExp(small_group.g, small_group.p, window=None)
        assert table.window == fixed_base_window((small_group.p - 1).bit_length())

    def test_auto_window_pow_matches_operator(self, small_group, rng):
        table = FixedBaseExp(small_group.g, small_group.p, window=None)
        for _ in range(8):
            exponent = rng.randrange(small_group.p)
            assert table.pow(exponent) == small_group.g ** exponent

    def test_explicit_window_still_validated(self, small_group):
        with pytest.raises(ParameterError, match=r"\[1, 16\]"):
            FixedBaseExp(small_group.g, small_group.p, window=0)
        with pytest.raises(ParameterError, match=r"\[1, 16\]"):
            FixedBaseExp(small_group.g, small_group.p, window=17)

    def test_precomputed_encryptor_accepts_auto_window(self, small_group, rng):
        from repro.core.dlr import DLR
        from repro.core.params import DLRParams

        scheme = DLR(DLRParams(group=small_group, lam=32))
        generation = scheme.generate(rng)
        encryptor = PrecomputedEncryptor(generation.public_key, window=None)
        assert encryptor._g_table.window == fixed_base_window(
            (small_group.p - 1).bit_length()
        )
        message = small_group.random_gt(rng)
        ciphertext = encryptor.encrypt(message, rng)
        assert scheme.reference_decrypt(
            generation.share1, generation.share2, ciphertext
        ) == message
