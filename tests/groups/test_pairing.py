"""Unit tests for the modified Tate pairing (the paper's section 2.1
admissibility requirements, verified computationally)."""

import random

import pytest

from repro.groups.pairing import tate_pairing
from repro.math.fields import Fq2


@pytest.fixture(scope="module")
def group():
    from repro.groups import preset_group

    return preset_group(32)


class TestAdmissibility:
    def test_non_degenerate(self, group):
        """e(g, g) must generate GT (requirement 2 of section 2.1)."""
        z = group.pair(group.g, group.g)
        assert not z.is_identity()
        # Order exactly p (p prime: any non-identity element generates).
        assert (z ** group.p).is_identity()

    def test_bilinear_in_first_argument(self, group):
        rng = random.Random(1)
        z = group.pair(group.g, group.g)
        for _ in range(3):
            a = group.random_scalar(rng)
            assert group.pair(group.g ** a, group.g) == z ** a

    def test_bilinear_in_second_argument(self, group):
        rng = random.Random(2)
        z = group.pair(group.g, group.g)
        for _ in range(3):
            b = group.random_scalar(rng)
            assert group.pair(group.g, group.g ** b) == z ** b

    def test_bilinear_joint(self, group):
        """e(u^a, v^b) = e(u, v)^{ab} for random u, v."""
        rng = random.Random(3)
        u, v = group.random_g(rng), group.random_g(rng)
        a, b = group.random_scalar(rng), group.random_scalar(rng)
        assert group.pair(u ** a, v ** b) == group.pair(u, v) ** (a * b)

    def test_symmetry(self, group):
        rng = random.Random(4)
        u, v = group.random_g(rng), group.random_g(rng)
        assert group.pair(u, v) == group.pair(v, u)

    def test_identity_absorbing(self, group):
        rng = random.Random(5)
        u = group.random_g(rng)
        assert group.pair(u, group.g_identity()).is_identity()
        assert group.pair(group.g_identity(), u).is_identity()

    def test_inverse_relation(self, group):
        rng = random.Random(6)
        u, v = group.random_g(rng), group.random_g(rng)
        assert group.pair(u.inverse(), v) == group.pair(u, v).inverse()

    def test_multiplicativity(self, group):
        """e(u1 * u2, v) = e(u1, v) e(u2, v)."""
        rng = random.Random(7)
        u1, u2, v = (group.random_g(rng) for _ in range(3))
        assert group.pair(u1 * u2, v) == group.pair(u1, v) * group.pair(u2, v)


class TestRawPairing:
    def test_result_in_mu_p(self, group):
        """Raw pairing output lies in the order-p subgroup of F_{q^2}^*."""
        params = group.params
        raw = tate_pairing(group.g.point, group.g.point, params)
        assert raw ** params.p == Fq2.one(params.q)
        assert not (raw ** 1).is_zero()

    def test_infinity_maps_to_one(self, group):
        from repro.groups.curve import INFINITY

        params = group.params
        assert tate_pairing(INFINITY, group.g.point, params) == Fq2.one(params.q)
        assert tate_pairing(group.g.point, INFINITY, params) == Fq2.one(params.q)

    def test_pairing_with_self_nontrivial(self, group):
        """The distortion map makes e(P, P) != 1 -- the type-1 property
        the BB-style schemes rely on."""
        rng = random.Random(8)
        for _ in range(3):
            point = group.random_g(rng)
            assert not group.pair(point, point).is_identity()

    def test_dlog_consistency_toy(self):
        """On a toy group, check e(g^a, g^b) = e(g,g)^{ab} exhaustively
        over a grid of exponents."""
        from repro.groups import preset_group

        toy = preset_group(16)
        z = toy.pair(toy.g, toy.g)
        for a in (1, 2, 3, 5):
            for b in (1, 4, 7):
                assert toy.pair(toy.g ** a, toy.g ** b) == z ** (a * b)
