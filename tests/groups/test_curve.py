"""Unit tests for the supersingular curve arithmetic."""

import random

import pytest

from repro.groups import curve
from repro.groups.curve import INFINITY, Point
from repro.groups.pairing_params import preset_params
from repro.groups.sampling import random_subgroup_point


@pytest.fixture(scope="module")
def params():
    return preset_params(16)


def random_point(params, seed):
    return random_subgroup_point(params, random.Random(seed))


class TestPointBasics:
    def test_infinity_on_curve(self, params):
        assert curve.is_on_curve(INFINITY, params.q)

    def test_random_points_on_curve(self, params):
        for seed in range(5):
            assert curve.is_on_curve(random_point(params, seed), params.q)

    def test_negate(self, params):
        point = random_point(params, 1)
        neg = point.negate(params.q)
        assert curve.is_on_curve(neg, params.q)
        assert curve.add(point, neg, params.q) == INFINITY

    def test_negate_infinity(self, params):
        assert INFINITY.negate(params.q) == INFINITY


class TestAddition:
    def test_identity_element(self, params):
        point = random_point(params, 2)
        assert curve.add(point, INFINITY, params.q) == point
        assert curve.add(INFINITY, point, params.q) == point

    def test_commutative(self, params):
        a, b = random_point(params, 3), random_point(params, 4)
        assert curve.add(a, b, params.q) == curve.add(b, a, params.q)

    def test_associative(self, params):
        a, b, c = (random_point(params, s) for s in (5, 6, 7))
        left = curve.add(curve.add(a, b, params.q), c, params.q)
        right = curve.add(a, curve.add(b, c, params.q), params.q)
        assert left == right

    def test_double_matches_add_self(self, params):
        point = random_point(params, 8)
        assert curve.double(point, params.q) == curve.add(point, point, params.q)

    def test_result_on_curve(self, params):
        a, b = random_point(params, 9), random_point(params, 10)
        assert curve.is_on_curve(curve.add(a, b, params.q), params.q)


class TestScalarMul:
    def test_zero_scalar(self, params):
        point = random_point(params, 11)
        assert curve.scalar_mul(point, 0, params.q) == INFINITY

    def test_one_scalar(self, params):
        point = random_point(params, 12)
        assert curve.scalar_mul(point, 1, params.q) == point

    def test_matches_repeated_addition(self, params):
        point = random_point(params, 13)
        acc = INFINITY
        for k in range(8):
            assert curve.scalar_mul(point, k, params.q) == acc
            acc = curve.add(acc, point, params.q)

    def test_order_p_annihilates(self, params):
        point = random_point(params, 14)
        assert curve.scalar_mul(point, params.p, params.q) == INFINITY

    def test_distributive(self, params):
        point = random_point(params, 15)
        rng = random.Random(16)
        a, b = rng.randrange(params.p), rng.randrange(params.p)
        left = curve.scalar_mul(point, a + b, params.q)
        right = curve.add(
            curve.scalar_mul(point, a, params.q),
            curve.scalar_mul(point, b, params.q),
            params.q,
        )
        assert left == right

    def test_order_reduction(self, params):
        point = random_point(params, 17)
        rng = random.Random(18)
        k = rng.randrange(params.p)
        assert curve.scalar_mul(point, k + params.p, params.q, order=params.p) == \
            curve.scalar_mul(point, k, params.q)

    def test_curve_order_q_plus_1(self, params):
        # The full curve has q + 1 points; any point is annihilated by it.
        rng = random.Random(19)
        from repro.math.modular import is_quadratic_residue, sqrt_mod

        while True:
            x = rng.randrange(params.q)
            rhs = (x * x * x + x) % params.q
            if rhs and is_quadratic_residue(rhs, params.q):
                point = Point(x, sqrt_mod(rhs, params.q), False)
                break
        assert curve.scalar_mul(point, params.q + 1, params.q) == INFINITY


class TestJacobianEquivalence:
    """The Jacobian fast path must agree with the affine reference on
    every input class."""

    def test_random_scalars(self, params):
        rng = random.Random(20)
        point = random_point(params, 21)
        for _ in range(30):
            k = rng.randrange(params.p)
            assert curve.scalar_mul(point, k, params.q) == \
                curve.scalar_mul_affine(point, k, params.q)

    def test_edge_scalars(self, params):
        point = random_point(params, 22)
        for k in (0, 1, 2, 3, 4, params.p - 1, params.p):
            assert curve.scalar_mul(point, k, params.q) == \
                curve.scalar_mul_affine(point, k, params.q)

    def test_infinity_input(self, params):
        assert curve.scalar_mul(INFINITY, 12345, params.q) == INFINITY

    def test_full_curve_points(self, params):
        """Points outside the order-p subgroup (full q+1 order) multiply
        identically under both paths."""
        from repro.math.modular import is_quadratic_residue, sqrt_mod

        rng = random.Random(23)
        while True:
            x = rng.randrange(params.q)
            rhs = (x * x * x + x) % params.q
            if rhs and is_quadratic_residue(rhs, params.q):
                point = Point(x, sqrt_mod(rhs, params.q), False)
                break
        for k in (7, 1000, params.q // 3):
            assert curve.scalar_mul(point, k, params.q) == \
                curve.scalar_mul_affine(point, k, params.q)

    def test_order_reduction_path(self, params):
        point = random_point(params, 24)
        k = params.p + 17
        assert curve.scalar_mul(point, k, params.q, order=params.p) == \
            curve.scalar_mul_affine(point, 17, params.q)
