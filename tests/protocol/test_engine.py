"""Unit tests for the protocol engine: scheduling, commit/rollback,
secret erasure, instrumentation -- exercised with toy step generators,
independent of the real schemes."""

import random

import pytest

from repro.errors import PeerDisconnected, ProtocolError, RefreshAborted
from repro.protocol.device import Device
from repro.protocol.engine import (
    Commit,
    ProtocolEngine,
    ProtocolSpec,
    Recv,
    Send,
    StagedShare,
    abort_phases,
)
from repro.protocol.transport import InMemoryTransport, SocketTransport
from repro.utils.bits import BitString


@pytest.fixture()
def devices(small_group):
    rng = random.Random(11)
    return Device("P1", small_group, rng), Device("P2", small_group, rng)


def run(spec, transport=None):
    engine = ProtocolEngine(transport if transport is not None else InMemoryTransport())
    return engine.run(spec), engine


def ping_pong_spec(d1, d2, **kwargs):
    def p1():
        reply = yield Recv("pong")
        return reply.payload

    def p2():
        yield Send("pong", BitString(0b101, 3))

    return ProtocolSpec("test.pingpong", d1, d2, p1, p2, **kwargs)


class TestScheduling:
    def test_round_trip_returns_party1_result(self, devices):
        d1, d2 = devices

        def p1():
            yield Send("a", BitString(1, 1))
            reply = yield Recv("b")
            return reply.payload

        def p2():
            message = yield Recv("a")
            assert message.payload == BitString(1, 1)
            yield Send("b", BitString(0b11, 2))

        result, _ = run(ProtocolSpec("test.rt", d1, d2, p1, p2))
        assert result == BitString(0b11, 2)

    def test_party2_can_speak_first(self, devices):
        d1, d2 = devices
        result, _ = run(ping_pong_spec(d1, d2))
        assert result == BitString(0b101, 3)

    def test_multi_round_interleaving(self, devices):
        d1, d2 = devices
        rounds = 4

        def p1():
            total = 0
            for i in range(rounds):
                yield Send("ask", i)
                reply = yield Recv("ans")
                total += reply.payload
            return total

        def p2():
            for _ in range(rounds):
                message = yield Recv("ask")
                yield Send("ans", message.payload * 2)

        result, engine = run(ProtocolSpec("test.rounds", d1, d2, p1, p2))
        assert result == 2 * sum(range(rounds))
        assert [s.label for s in engine.stats.sends()] == ["ask", "ans"] * rounds

    def test_label_mismatch_raises(self, devices):
        d1, d2 = devices

        def p1():
            yield Send("unexpected", BitString(1, 1))

        def p2():
            yield Recv("expected")

        with pytest.raises(ProtocolError, match="expected"):
            run(ProtocolSpec("test.mismatch", d1, d2, p1, p2))

    def test_deadlock_detected(self, devices):
        d1, d2 = devices

        def starving():
            yield Recv()

        with pytest.raises(ProtocolError, match="deadlock"):
            run(ProtocolSpec("test.deadlock", d1, d2, starving, starving))

    def test_non_protocol_yield_rejected(self, devices):
        d1, d2 = devices

        def p1():
            yield "not an operation"

        def p2():
            if False:
                yield

        with pytest.raises(ProtocolError, match="not a protocol operation"):
            run(ProtocolSpec("test.badyield", d1, d2, p1, p2))


class TestSecretErasure:
    def test_secrets_erased_on_success(self, devices):
        d1, d2 = devices

        def p1():
            d1.secret.store("tmp.key", BitString(1, 1))
            yield Send("m", True)

        def p2():
            yield Recv("m")

        run(ProtocolSpec("test.erase", d1, d2, p1, p2, secrets1=("tmp.key",)))
        assert not d1.secret.has("tmp.key")

    def test_secrets_erased_on_failure(self, devices):
        d1, d2 = devices

        def p1():
            d1.secret.store("tmp.key", BitString(1, 1))
            yield Send("m", True)
            raise ValueError("boom")

        def p2():
            yield Recv("m")
            yield Recv("never")

        with pytest.raises(ValueError):
            run(ProtocolSpec("test.erasefail", d1, d2, p1, p2, secrets1=("tmp.key",)))
        assert not d1.secret.has("tmp.key")


class TestCommitRollback:
    def staged_spec(self, d1, d2, fail_before_commit):
        d2.secret.store("share", BitString(0b0, 1))

        def p1():
            yield Send("new", BitString(0b1, 1))
            yield Recv("ok")
            if fail_before_commit:
                raise RuntimeError("crash at the boundary")
            yield Send("commit", True)

        def p2():
            message = yield Recv("new")
            d2.secret.store("share.pending", message.payload)
            yield Send("ok", True)
            yield Recv("commit")
            yield Commit()

        return ProtocolSpec(
            "test.staged",
            d1,
            d2,
            p1,
            p2,
            staged=(StagedShare(2, "share", "share.pending"),),
            abort_message="test rotation aborted",
        )

    def test_commit_promotes_pending(self, devices):
        d1, d2 = devices
        run(self.staged_spec(d1, d2, fail_before_commit=False))
        assert d2.secret.read("share") == BitString(0b1, 1)
        assert not d2.secret.has("share.pending")

    def test_abort_rolls_back_and_raises_refresh_aborted(self, devices):
        d1, d2 = devices
        with pytest.raises(RefreshAborted) as info:
            run(self.staged_spec(d1, d2, fail_before_commit=True))
        assert isinstance(info.value.__cause__, RuntimeError)
        assert d2.secret.read("share") == BitString(0b0, 1)
        assert not d2.secret.has("share.pending")

    def test_failure_before_staging_raises_original_error(self, devices):
        d1, d2 = devices
        d2.secret.store("share", BitString(0, 1))

        def p1():
            raise RuntimeError("immediate")
            yield  # pragma: no cover

        def p2():
            yield Recv()

        spec = ProtocolSpec(
            "test.early",
            d1,
            d2,
            p1,
            p2,
            staged=(StagedShare(2, "share", "share.pending"),),
            abort_message="never raised",
        )
        with pytest.raises(RuntimeError, match="immediate"):
            run(spec)

    def test_non_signalling_staged_slot_does_not_upgrade_abort(self, devices):
        """Pending *derived* material (signals_abort=False) is erased on
        abort but does not turn the failure into RefreshAborted."""
        d1, d2 = devices
        d1.secret.store("key", BitString(0, 1))

        def p1():
            d1.secret.store("key.pending", BitString(1, 1))
            yield Send("m", True)
            raise RuntimeError("after staging")

        def p2():
            yield Recv("m")
            yield Recv("never")

        spec = ProtocolSpec(
            "test.derived",
            d1,
            d2,
            p1,
            p2,
            staged=(StagedShare(1, "key", "key.pending", signals_abort=False),),
            abort_message="should not surface",
        )
        with pytest.raises(RuntimeError, match="after staging"):
            run(spec)
        assert d1.secret.read("key") == BitString(0, 1)
        assert not d1.secret.has("key.pending")

    def test_abort_erase_slots_cleared(self, devices):
        d1, d2 = devices

        def p1():
            d1.secret.store("half.installed", BitString(1, 1))
            yield Send("m", True)
            raise RuntimeError("boom")

        def p2():
            yield Recv("m")
            yield Recv("never")

        spec = ProtocolSpec(
            "test.aborterase",
            d1,
            d2,
            p1,
            p2,
            abort_erase=((1, "half.installed"),),
        )
        with pytest.raises(RuntimeError):
            run(spec)
        assert not d1.secret.has("half.installed")

    def test_abort_closes_open_phases_into_snapshots(self, devices):
        d1, d2 = devices
        snapshots = {}

        def p1():
            d1.secret.open_phase("t0.refresh")
            yield Send("m", True)
            raise RuntimeError("boom")

        def p2():
            yield Recv("m")
            yield Recv("never")

        spec = ProtocolSpec(
            "test.phases", d1, d2, p1, p2, snapshots=snapshots
        )
        with pytest.raises(RuntimeError):
            run(spec)
        assert (1, "refresh") in snapshots
        assert not d1.secret.phase_open


class TestAbortPhases:
    def test_labels_classified(self, devices):
        d1, d2 = devices
        d1.secret.open_phase("t3.refresh")
        d2.secret.open_phase("t3.normal")
        closed = abort_phases(d1, d2)
        assert set(closed) == {(1, "refresh"), (2, "normal")}

    def test_no_open_phase_is_empty(self, devices):
        d1, d2 = devices
        assert abort_phases(d1, d2) == {}


class TestInstrumentation:
    def test_stats_track_bits_and_labels(self, devices):
        d1, d2 = devices
        _, engine = run(ping_pong_spec(d1, d2))
        stats = engine.stats
        assert stats.protocol == "test.pingpong"
        assert stats.bits_by_label() == {"pong": 3}
        assert stats.bits_on_wire() == 3
        assert stats.wall_seconds() >= 0.0

    def test_inline_ops_attributed_per_party(self, devices, small_group):
        d1, d2 = devices

        def p1():
            _ = small_group.g ** 5  # one counted exponentiation
            yield Send("m", True)

        def p2():
            yield Recv("m")

        _, engine = run(ProtocolSpec("test.ops", d1, d2, p1, p2))
        assert engine.stats.ops_for_party(1).g_exp >= 1
        assert engine.stats.ops_for_party(2).g_exp == 0
        total = engine.stats.ops_total()
        assert total.g_exp == engine.stats.ops_for_party(1).g_exp

    def test_stats_match_transport_accounting(self, devices):
        d1, d2 = devices
        transport = InMemoryTransport()
        _, engine = run(ping_pong_spec(d1, d2), transport)
        assert engine.stats.bits_on_wire() == transport.bits_on_wire()
        assert engine.stats.bits_by_label() == transport.bits_by_label()

    def test_empty_transcript(self):
        """A fresh engine's stats answer every query, all zeros."""
        stats = ProtocolEngine(InMemoryTransport()).stats
        assert stats.bits_on_wire() == 0
        assert stats.bits_by_label() == {}
        assert stats.sends() == []
        assert stats.wall_seconds() == 0.0
        assert stats.ops_total().total_cost() == 0
        for party in (1, 2):
            assert stats.ops_for_party(party).nonzero() == {}

    def test_ops_for_party_that_never_ran(self, devices):
        """A party with no recorded steps reads as an all-zero counter,
        not an error -- and does not perturb the totals."""
        d1, d2 = devices

        def p1():
            yield Send("only", BitString(1, 1))

        def p2():
            yield Recv("only")

        _, engine = run(ProtocolSpec("test.oneparty", d1, d2, p1, p2))
        idle = engine.stats.ops_for_party(2)
        assert idle.as_dict() == {name: 0 for name in idle.as_dict()}
        assert engine.stats.ops_total().as_dict() == engine.stats.ops_for_party(1).as_dict()


class TestThreaded:
    def test_round_trip_over_sockets(self, devices):
        d1, d2 = devices
        result, engine = run(ping_pong_spec(d1, d2), SocketTransport(timeout=10.0))
        assert result == BitString(0b101, 3)
        # Threaded runs cannot attribute the shared op counter per step.
        assert all(s.ops is None for s in engine.stats.steps)

    def test_peer_failure_surfaces_original_error(self, devices):
        """The party that dies first is the primary error; the peer's
        PeerDisconnected is only a symptom."""
        d1, d2 = devices

        def p1():
            yield Recv("never")

        def p2():
            raise RuntimeError("party 2 died")
            yield  # pragma: no cover

        spec = ProtocolSpec("test.peerdeath", d1, d2, p1, p2)
        with pytest.raises(RuntimeError, match="party 2 died"):
            run(spec, SocketTransport(timeout=10.0))

    def test_disconnect_is_peer_disconnected(self, devices):
        d1, d2 = devices
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.shutdown_party("P1")
        with pytest.raises(PeerDisconnected):
            transport.recv("P2")
        transport.close()
