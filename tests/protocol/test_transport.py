"""Unit tests for the transport layer: in-memory and socket transports,
payload isolation (everything crosses as bytes), transcript recording."""

import random
import threading

import pytest

from repro.core.dlr import DLR
from repro.core.params import DLRParams
from repro.errors import PeerDisconnected
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.protocol.transport import InMemoryTransport, SocketTransport
from repro.utils.bits import BitString


class TestInMemoryIsolation:
    def test_receiver_gets_fresh_copy(self, small_group, rng):
        transport = InMemoryTransport()
        element = small_group.random_g(rng)
        payload = [element, BitString(0b10, 2)]
        delivered = transport.send("P1", "P2", "m", payload)
        assert delivered == payload
        assert delivered is not payload
        assert delivered[0] is not element

    def test_mutating_sent_object_does_not_reach_receiver(self, small_group, rng):
        transport = InMemoryTransport()
        payload = [BitString(0b1, 1)]
        delivered = transport.send("P1", "P2", "m", payload)
        payload.append(BitString(0b0, 1))  # sender keeps writing
        assert len(delivered) == 1

    def test_transcript_records_sender_side_payload(self, small_group, rng):
        """Transcript bits must be what the sender put on the wire --
        independent of the decode on the receiving side."""
        transport = InMemoryTransport()
        element = small_group.random_gt(rng)
        transport.send("P1", "P2", "m", element)
        (message,) = transport.transcript()
        assert message.payload is element


class TestSocketTransport:
    def test_send_recv_round_trip(self, small_group, rng):
        transport = SocketTransport(timeout=10.0)
        transport.attach_group(small_group)
        transport.open("P1", "P2")
        element = small_group.random_g(rng)
        payload = (element, True, 42)
        transport.send("P1", "P2", "probe", payload)
        sender, label, received = transport.recv("P2")
        transport.close()
        assert (sender, label) == ("P1", "probe")
        assert received == payload
        assert received[0] is not element  # decoded fresh copy

    def test_mutate_after_send_does_not_reach_peer(self, small_group, rng):
        """The serialization proof: the payload is bytes in the socket
        buffer by the time send returns, so mutating the sender's object
        afterwards cannot affect what the peer decodes."""
        transport = SocketTransport(timeout=10.0)
        transport.attach_group(small_group)
        transport.open("P1", "P2")
        payload = [1, 2, 3]
        transport.send("P1", "P2", "m", payload)
        payload.clear()  # sender destroys its object after the send
        _, _, received = transport.recv("P2")
        transport.close()
        assert received == [1, 2, 3]

    def test_messages_cross_in_both_directions(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.send("P1", "P2", "a", 1)
        transport.send("P2", "P1", "b", 2)
        assert transport.recv("P2")[2] == 1
        assert transport.recv("P1")[2] == 2
        transport.close()

    def test_eof_raises_peer_disconnected(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.shutdown_party("P1")
        with pytest.raises(PeerDisconnected):
            transport.recv("P2")
        transport.close()

    def test_send_after_close_raises_peer_disconnected(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.close()
        with pytest.raises(PeerDisconnected):
            transport.send("P1", "P2", "m", 1)

    def test_concurrent_sends_keep_transcript_consistent(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        n = 25

        def sender(me, peer):
            for i in range(n):
                transport.send(me, peer, f"{me}.m", i)

        threads = [
            threading.Thread(target=sender, args=("P1", "P2")),
            threading.Thread(target=sender, args=("P2", "P1")),
        ]
        for t in threads:
            t.start()
        for i in range(n):  # drain interleaved with the sends
            assert transport.recv("P2")[2] == i
            assert transport.recv("P1")[2] == i
        for t in threads:
            t.join()
        transport.close()
        assert len(transport.transcript()) == 2 * n


class TestProtocolOverSockets:
    def test_dlr_decrypt_protocol_end_to_end(self, small_params):
        """The real decryption protocol, P1 and P2 in separate threads
        over a socket pair, payloads crossing as bytes with the full
        subgroup check."""
        scheme = DLR(small_params)
        rng = random.Random(21)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)

        transport = SocketTransport(timeout=10.0)
        assert scheme.decrypt_protocol(p1, p2, transport, ciphertext) == message

    def test_run_period_socket_transcript_matches_in_memory(self, small_params):
        """Same seed, two wires: the public transcript is bit-identical,
        so nothing about the transport leaks into the adversary's view."""

        def one_run(transport):
            scheme = DLR(small_params)
            rng = random.Random(77)
            generation = scheme.generate(rng)
            p1 = Device("P1", scheme.group, rng)
            p2 = Device("P2", scheme.group, rng)
            scheme.install(p1, p2, generation.share1, generation.share2)
            message = scheme.group.random_gt(rng)
            ciphertext = scheme.encrypt(generation.public_key, message, rng)
            record = scheme.run_period(p1, p2, transport, ciphertext)
            assert record.plaintext == message
            return transport.transcript_bits()

        in_memory = one_run(Channel())
        over_socket = one_run(SocketTransport(timeout=10.0))
        assert in_memory == over_socket
