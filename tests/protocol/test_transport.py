"""Unit tests for the transport layer: in-memory and socket transports,
payload isolation (everything crosses as bytes), transcript recording."""

import random
import threading

import pytest

from repro.core.dlr import DLR
from repro.core.params import DLRParams
from repro.errors import FaultInjected, PeerDisconnected, ProtocolError, TransportTimeout
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.protocol.transport import InMemoryTransport, SocketTransport
from repro.utils.bits import BitString


class TestInMemoryIsolation:
    def test_receiver_gets_fresh_copy(self, small_group, rng):
        transport = InMemoryTransport()
        element = small_group.random_g(rng)
        payload = [element, BitString(0b10, 2)]
        delivered = transport.send("P1", "P2", "m", payload)
        assert delivered == payload
        assert delivered is not payload
        assert delivered[0] is not element

    def test_mutating_sent_object_does_not_reach_receiver(self, small_group, rng):
        transport = InMemoryTransport()
        payload = [BitString(0b1, 1)]
        delivered = transport.send("P1", "P2", "m", payload)
        payload.append(BitString(0b0, 1))  # sender keeps writing
        assert len(delivered) == 1

    def test_transcript_records_sender_side_payload(self, small_group, rng):
        """Transcript bits must be what the sender put on the wire --
        independent of the decode on the receiving side."""
        transport = InMemoryTransport()
        element = small_group.random_gt(rng)
        transport.send("P1", "P2", "m", element)
        (message,) = transport.transcript()
        assert message.payload is element


class TestSocketTransport:
    def test_send_recv_round_trip(self, small_group, rng):
        transport = SocketTransport(timeout=10.0)
        transport.attach_group(small_group)
        transport.open("P1", "P2")
        element = small_group.random_g(rng)
        payload = (element, True, 42)
        transport.send("P1", "P2", "probe", payload)
        sender, label, received = transport.recv("P2")
        transport.close()
        assert (sender, label) == ("P1", "probe")
        assert received == payload
        assert received[0] is not element  # decoded fresh copy

    def test_mutate_after_send_does_not_reach_peer(self, small_group, rng):
        """The serialization proof: the payload is bytes in the socket
        buffer by the time send returns, so mutating the sender's object
        afterwards cannot affect what the peer decodes."""
        transport = SocketTransport(timeout=10.0)
        transport.attach_group(small_group)
        transport.open("P1", "P2")
        payload = [1, 2, 3]
        transport.send("P1", "P2", "m", payload)
        payload.clear()  # sender destroys its object after the send
        _, _, received = transport.recv("P2")
        transport.close()
        assert received == [1, 2, 3]

    def test_messages_cross_in_both_directions(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.send("P1", "P2", "a", 1)
        transport.send("P2", "P1", "b", 2)
        assert transport.recv("P2")[2] == 1
        assert transport.recv("P1")[2] == 2
        transport.close()

    def test_eof_raises_peer_disconnected(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.shutdown_party("P1")
        with pytest.raises(PeerDisconnected):
            transport.recv("P2")
        transport.close()

    def test_send_after_close_raises_peer_disconnected(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        transport.close()
        with pytest.raises(PeerDisconnected):
            transport.send("P1", "P2", "m", 1)

    def test_concurrent_sends_keep_transcript_consistent(self):
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        n = 25

        def sender(me, peer):
            for i in range(n):
                transport.send(me, peer, f"{me}.m", i)

        threads = [
            threading.Thread(target=sender, args=("P1", "P2")),
            threading.Thread(target=sender, args=("P2", "P1")),
        ]
        for t in threads:
            t.start()
        for i in range(n):  # drain interleaved with the sends
            assert transport.recv("P2")[2] == i
            assert transport.recv("P1")[2] == i
        for t in threads:
            t.join()
        transport.close()
        assert len(transport.transcript()) == 2 * n


class TestSilentPeer:
    def test_silent_peer_recv_raises_transport_timeout(self):
        """Nobody sends: the blocking read gives up after the configured
        timeout with a classified TransportTimeout, never a raw
        socket.timeout."""
        transport = SocketTransport(timeout=0.1)
        transport.open("P1", "P2")
        with pytest.raises(TransportTimeout) as info:
            transport.recv("P2")
        transport.close()
        assert info.value.timeout == 0.1
        assert isinstance(info.value, ProtocolError)  # engine abort paths see it

    def test_timeout_is_classified_transient(self):
        from repro.runtime import TRANSIENT, classify_fault

        assert classify_fault(TransportTimeout("silent", timeout=0.1)) == TRANSIENT

    def test_shutdown_mid_recv_raises_peer_disconnected(self):
        """A peer that dies while we block in recv surfaces promptly as
        PeerDisconnected (EOF), not as a timeout."""
        transport = SocketTransport(timeout=10.0)
        transport.open("P1", "P2")
        errors = []

        def reader():
            try:
                transport.recv("P2")
            except ProtocolError as exc:
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        transport.shutdown_party("P1")
        thread.join(timeout=5.0)
        transport.close()
        assert not thread.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], PeerDisconnected)

    def test_supervisor_retries_silent_peer_and_completes(self, small_params):
        """End to end: a delayed frame trips the peer's read timeout; the
        engine surfaces the timeout (not the secondary disconnect), the
        supervisor classifies it transient, retries, and the period
        completes on the clean re-run."""
        from repro.protocol.faults import DELAY, FaultRule, FaultyTransport
        from repro.runtime import RetryPolicy, SessionSupervisor, TRANSIENT

        scheme = DLR(small_params)
        generation = scheme.generate(random.Random(8))
        inner = SocketTransport(timeout=0.3)
        faulty = FaultyTransport(inner=inner, seed=0)
        # Stall one frame for longer than the socket timeout: the peer
        # times out first (silent peer), the stalled sender then hits
        # the closed endpoint.
        faulty.add_rule(
            FaultRule(mode=DELAY, label="dec.c_prime", delay_seconds=0.6)
        )
        supervisor = SessionSupervisor.start(
            scheme,
            faulty,
            public_key=generation.public_key,
            share1=generation.share1,
            share2=generation.share2,
            periods=1,
            seed=13,
            policy=RetryPolicy(base_backoff=0.0, jitter=0.0),
        )
        result = supervisor.run()
        assert result.periods_completed == 1
        retried = result.log.retried()
        assert len(retried) == 1
        assert retried[0].classification == TRANSIENT
        assert retried[0].fault == "TransportTimeout"

    def test_fault_beats_secondary_disconnect_in_classification(self, small_params):
        """When one party dies of an injected fault and the other of the
        resulting EOF, the surfaced error is the original fault."""
        from repro.protocol.faults import DROP, FaultRule, FaultyTransport

        scheme = DLR(small_params)
        rng = random.Random(9)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        faulty = FaultyTransport(inner=SocketTransport(timeout=5.0))
        faulty.add_rule(FaultRule(mode=DROP, label="dec.c_prime"))
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        with pytest.raises(FaultInjected):
            scheme.run_period(p1, p2, faulty, ciphertext)


class TestProtocolOverSockets:
    def test_dlr_decrypt_protocol_end_to_end(self, small_params):
        """The real decryption protocol, P1 and P2 in separate threads
        over a socket pair, payloads crossing as bytes with the full
        subgroup check."""
        scheme = DLR(small_params)
        rng = random.Random(21)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)

        transport = SocketTransport(timeout=10.0)
        assert scheme.decrypt_protocol(p1, p2, transport, ciphertext) == message

    def test_run_period_socket_transcript_matches_in_memory(self, small_params):
        """Same seed, two wires: the public transcript is bit-identical,
        so nothing about the transport leaks into the adversary's view."""

        def one_run(transport):
            scheme = DLR(small_params)
            rng = random.Random(77)
            generation = scheme.generate(rng)
            p1 = Device("P1", scheme.group, rng)
            p2 = Device("P2", scheme.group, rng)
            scheme.install(p1, p2, generation.share1, generation.share2)
            message = scheme.group.random_gt(rng)
            ciphertext = scheme.encrypt(generation.public_key, message, rng)
            record = scheme.run_period(p1, p2, transport, ciphertext)
            assert record.plaintext == message
            return transport.transcript_bits()

        in_memory = one_run(Channel())
        over_socket = one_run(SocketTransport(timeout=10.0))
        assert in_memory == over_socket
