"""Unit tests for memory regions and phase snapshots."""

import pytest

from repro.errors import ProtocolError
from repro.protocol.memory import MemoryRegion
from repro.utils.bits import BitString


class TestSlots:
    def test_store_read(self):
        mem = MemoryRegion("m")
        mem.store("x", BitString(1, 1))
        assert mem.read("x") == BitString(1, 1)

    def test_read_missing_raises(self):
        with pytest.raises(ProtocolError):
            MemoryRegion("m").read("nope")

    def test_has(self):
        mem = MemoryRegion("m")
        assert not mem.has("x")
        mem.store("x", BitString(0, 1))
        assert mem.has("x")

    def test_erase(self):
        mem = MemoryRegion("m")
        mem.store("x", BitString(0, 1))
        mem.erase("x")
        assert not mem.has("x")

    def test_erase_missing_raises(self):
        with pytest.raises(ProtocolError):
            MemoryRegion("m").erase("ghost")

    def test_erase_if_present_tolerant(self):
        MemoryRegion("m").erase_if_present("ghost")

    def test_clear(self):
        mem = MemoryRegion("m")
        mem.store("a", BitString(0, 1))
        mem.store("b", BitString(1, 1))
        mem.clear()
        assert mem.names() == []

    def test_rename(self):
        mem = MemoryRegion("m")
        mem.store("old", BitString(1, 1))
        mem.rename("old", "new")
        assert not mem.has("old")
        assert mem.read("new") == BitString(1, 1)

    def test_rename_missing_raises(self):
        with pytest.raises(ProtocolError):
            MemoryRegion("m").rename("ghost", "x")

    def test_rename_collision_raises(self):
        mem = MemoryRegion("m")
        mem.store("a", BitString(0, 1))
        mem.store("b", BitString(1, 1))
        with pytest.raises(ProtocolError):
            mem.rename("a", "b")


class TestSerialization:
    def test_size_bits(self):
        mem = MemoryRegion("m")
        mem.store("a", BitString(0b101, 3))
        mem.store("b", BitString(0b11, 2))
        assert mem.size_bits() == 5

    def test_derived_excluded_from_bits(self):
        mem = MemoryRegion("m")
        mem.store("essential", BitString(0b1, 1))
        mem.store("derived", BitString(0b1111, 4), derived=True)
        assert mem.size_bits() == 1

    def test_derived_flag_cleared_on_overwrite(self):
        mem = MemoryRegion("m")
        mem.store("x", BitString(1, 1), derived=True)
        mem.store("x", BitString(1, 1))
        assert mem.size_bits() == 1

    def test_to_bits_order_stable(self):
        mem = MemoryRegion("m")
        mem.store("a", BitString(1, 1))
        mem.store("b", BitString(0, 1))
        assert mem.to_bits() == BitString(0b10, 2)


class TestPhases:
    def test_snapshot_seeds_with_existing_contents(self):
        mem = MemoryRegion("m")
        mem.store("pre", BitString(1, 1))
        snap = mem.open_phase("p")
        mem.close_phase()
        assert snap.get("pre") == BitString(1, 1)

    def test_snapshot_captures_stores_during_phase(self):
        mem = MemoryRegion("m")
        snap = mem.open_phase("p")
        mem.store("mid", BitString(0b11, 2))
        mem.close_phase()
        assert snap.get("mid") == BitString(0b11, 2)

    def test_snapshot_keeps_erased_values(self):
        """The leakage input includes values that transited memory even
        if erased before the phase closed."""
        mem = MemoryRegion("m")
        snap = mem.open_phase("p")
        mem.store("fleeting", BitString(0b1, 1))
        mem.erase("fleeting")
        mem.close_phase()
        assert snap.get("fleeting") == BitString(0b1, 1)

    def test_snapshot_keeps_overwrite_history(self):
        mem = MemoryRegion("m")
        mem.store("x", BitString(0, 1))
        snap = mem.open_phase("p")
        mem.store("x", BitString(1, 1))
        mem.close_phase()
        assert snap.values["x"] == [BitString(0, 1), BitString(1, 1)]
        assert len(snap.to_bits()) == 2

    def test_derived_values_excluded_from_snapshot_bits(self):
        mem = MemoryRegion("m")
        snap = mem.open_phase("p")
        mem.store("scratch", BitString(0b1111, 4), derived=True)
        mem.store("key", BitString(0b1, 1))
        mem.close_phase()
        assert snap.size_bits() == 1
        assert snap.get("scratch") == BitString(0b1111, 4)  # still inspectable

    def test_rename_does_not_rerecord(self):
        mem = MemoryRegion("m")
        snap = mem.open_phase("p")
        mem.store("tmp", BitString(0b1, 1))
        mem.rename("tmp", "final")
        mem.close_phase()
        assert snap.size_bits() == 1

    def test_nested_phase_rejected(self):
        mem = MemoryRegion("m")
        mem.open_phase("a")
        with pytest.raises(ProtocolError):
            mem.open_phase("b")

    def test_close_without_open_rejected(self):
        with pytest.raises(ProtocolError):
            MemoryRegion("m").close_phase()

    def test_phase_open_property(self):
        mem = MemoryRegion("m")
        assert not mem.phase_open
        mem.open_phase("p")
        assert mem.phase_open
        mem.close_phase()
        assert not mem.phase_open

    def test_snapshot_get_missing_raises(self):
        mem = MemoryRegion("m")
        snap = mem.open_phase("p")
        mem.close_phase()
        with pytest.raises(ProtocolError):
            snap.get("nope")
