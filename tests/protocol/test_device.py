"""Unit tests for Device: sampling discipline and op attribution."""

import random

from repro.protocol.device import Device, _ScalarInMemory


class TestSampling:
    def test_sample_scalar_lands_in_secret_memory(self, small_group, rng):
        device = Device("P1", small_group, rng)
        value = device.sample_scalar("r")
        stored = device.secret.read("r")
        assert int(stored) == value

    def test_sample_g_lands_in_secret_memory(self, small_group, rng):
        device = Device("P1", small_group, rng)
        element = device.sample_g("a")
        assert device.secret.read("a") == element

    def test_sample_gt_lands_in_secret_memory(self, small_group, rng):
        device = Device("P1", small_group, rng)
        element = device.sample_gt("m")
        assert device.secret.read("m") == element

    def test_devices_have_independent_streams(self, small_group):
        seed = random.Random(1)
        d1 = Device("P1", small_group, seed)
        d2 = Device("P2", small_group, seed)
        assert d1.sample_scalar("x") != d2.sample_scalar("x")

    def test_same_name_same_parent_reproducible(self, small_group):
        a = Device("P1", small_group, random.Random(2)).sample_scalar("x")
        b = Device("P1", small_group, random.Random(2)).sample_scalar("x")
        assert a == b


class TestOpAttribution:
    def test_computing_block_attributes_ops(self, small_group, rng):
        device = Device("P1", small_group, rng)
        with device.computing():
            _ = small_group.g ** 5
            small_group.pair(small_group.g, small_group.g)
        assert device.ops.g_exp >= 1
        assert device.ops.pairings == 1

    def test_outside_block_not_attributed(self, small_group, rng):
        device = Device("P1", small_group, rng)
        _ = small_group.g ** 5
        assert device.ops.g_exp == 0

    def test_reset_ops(self, small_group, rng):
        device = Device("P1", small_group, rng)
        with device.computing():
            _ = small_group.g ** 2
        device.reset_ops()
        assert device.ops.g_exp == 0

    def test_nested_attribution_accumulates(self, small_group, rng):
        device = Device("P1", small_group, rng)
        with device.computing():
            _ = small_group.g ** 2
        with device.computing():
            _ = small_group.g ** 3
        assert device.ops.g_exp == 2


class TestScalarInMemory:
    def test_encoding_fixed_width(self, small_group):
        p = small_group.p
        a = _ScalarInMemory(1, p)
        b = _ScalarInMemory(p - 1, p)
        assert len(a.to_bits()) == len(b.to_bits())

    def test_equality_with_int(self, small_group):
        assert _ScalarInMemory(5, small_group.p) == 5

    def test_reduction(self, small_group):
        p = small_group.p
        assert _ScalarInMemory(p + 3, p) == 3
