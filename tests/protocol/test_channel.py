"""Unit tests for the public channel."""

from repro.protocol.channel import Channel
from repro.utils.bits import BitString


class TestChannel:
    def test_send_returns_decoded_copy(self):
        """The receiver gets an equal payload, but never the sender's
        object -- everything crosses the channel as wire bytes."""
        channel = Channel()
        payload = BitString(0b1, 1)
        delivered = channel.send("P1", "P2", "msg", payload)
        assert delivered == payload
        assert delivered is not payload

    def test_transcript_records_everything(self):
        channel = Channel()
        channel.send("P1", "P2", "a", BitString(1, 1))
        channel.send("P2", "P1", "b", BitString(0, 1))
        transcript = channel.transcript()
        assert [m.label for m in transcript] == ["a", "b"]
        assert transcript[0].sender == "P1"
        assert transcript[1].recipient == "P1"

    def test_period_tagging(self):
        channel = Channel()
        channel.send("P1", "P2", "first", BitString(1, 1))
        channel.advance_period()
        channel.send("P1", "P2", "second", BitString(1, 1))
        assert [m.label for m in channel.transcript(0)] == ["first"]
        assert [m.label for m in channel.transcript(1)] == ["second"]

    def test_transcript_bits_concatenation(self):
        channel = Channel()
        channel.send("P1", "P2", "a", BitString(0b10, 2))
        channel.send("P2", "P1", "b", BitString(0b1, 1))
        assert channel.transcript_bits() == BitString(0b101, 3)

    def test_bits_on_wire(self):
        channel = Channel()
        channel.send("P1", "P2", "a", BitString(0, 8))
        assert channel.bits_on_wire() == 8

    def test_prune_drops_committed_periods(self):
        channel = Channel()
        channel.send("P1", "P2", "first", BitString(1, 1))
        channel.advance_period()
        channel.send("P1", "P2", "second", BitString(1, 1))
        assert channel.prune(before_period=1) == 1
        assert channel.transcript(0) == []
        assert [m.label for m in channel.transcript()] == ["second"]
        assert channel.bits_on_wire() == 1

    def test_structured_payloads_encodable(self, small_group, rng):
        channel = Channel()
        element = small_group.random_g(rng)
        channel.send("P1", "P2", "g", (element, element))
        assert channel.bits_on_wire() == 2 * small_group.g_element_bits()


class TestBitsByLabel:
    def test_breakdown_sums_to_total(self):
        channel = Channel()
        channel.send("P1", "P2", "a", BitString(0b10, 2))
        channel.send("P2", "P1", "b", BitString(0b1, 1))
        channel.send("P1", "P2", "a", BitString(0b111, 3))
        breakdown = channel.bits_by_label()
        assert breakdown == {"a": 5, "b": 1}
        assert sum(breakdown.values()) == channel.bits_on_wire()

    def test_per_period_breakdown(self):
        channel = Channel()
        channel.send("P1", "P2", "x", BitString(1, 1))
        channel.advance_period()
        channel.send("P1", "P2", "x", BitString(0b11, 2))
        assert channel.bits_by_label(0) == {"x": 1}
        assert channel.bits_by_label(1) == {"x": 2}

    def test_protocol_breakdown_shape(self, small_group, rng):
        """One DLR period: the dec.d message dominates (it carries
        (ell+2) HPSKE ciphertexts of (kappa+1) GT elements each)."""
        import random as _random

        from repro.core.dlr import DLR
        from repro.core.params import DLRParams
        from repro.protocol.device import Device

        params = DLRParams(group=small_group, lam=32)
        scheme = DLR(params)
        generation = scheme.generate(_random.Random(1))
        p1 = Device("P1", small_group, _random.Random(2))
        p2 = Device("P2", small_group, _random.Random(2))
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()
        ciphertext = scheme.encrypt(generation.public_key, small_group.random_gt(rng), rng)
        scheme.run_period(p1, p2, channel, ciphertext)
        breakdown = channel.bits_by_label(0)
        assert breakdown["dec.d"] > breakdown["dec.c_prime"]
        assert breakdown["ref.f"] > breakdown["ref.f_combined"]
