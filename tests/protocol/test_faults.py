"""Unit tests for the fault-injection channel wrapper."""

import random

import pytest

from repro.errors import FaultInjected, ParameterError
from repro.protocol.channel import Channel
from repro.protocol.faults import (
    DECRYPT_BOUNDARIES,
    DELAY,
    DROP,
    PERIOD_BOUNDARIES,
    REFRESH_BOUNDARIES,
    TRUNCATE,
    FaultRule,
    FaultyChannel,
)
from repro.utils.bits import BitString


class TestFaultRule:
    def test_defaults(self):
        rule = FaultRule()
        assert rule.mode == DROP
        assert rule.label is None
        assert rule.occurrence == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode="explode")

    def test_zero_occurrence_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(occurrence=0)

    def test_negative_keep_bits_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode=TRUNCATE, keep_bits=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode=DELAY, delay_ticks=-1)


class TestBoundaryConstants:
    def test_refresh_boundaries_include_commit(self):
        assert "ref.commit" in REFRESH_BOUNDARIES

    def test_period_boundaries_superset(self):
        assert set(DECRYPT_BOUNDARIES) <= set(PERIOD_BOUNDARIES)
        assert set(REFRESH_BOUNDARIES) <= set(PERIOD_BOUNDARIES)


class TestDrop:
    def test_matching_label_raises_and_nothing_on_wire(self):
        channel = FaultyChannel.dropping("b")
        channel.send("P1", "P2", "a", BitString(1, 1))
        with pytest.raises(FaultInjected) as info:
            channel.send("P1", "P2", "b", BitString(1, 1))
        assert info.value.label == "b"
        assert info.value.mode == DROP
        assert [m.label for m in channel.transcript()] == ["a"]

    def test_occurrence_counts_matching_sends(self):
        channel = FaultyChannel.dropping("x", occurrence=3)
        channel.send("P1", "P2", "x", BitString(1, 1))
        channel.send("P1", "P2", "y", BitString(1, 1))  # non-matching
        channel.send("P1", "P2", "x", BitString(1, 1))
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))

    def test_rules_are_one_shot(self):
        channel = FaultyChannel.dropping("x")
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))
        # Spent: the same label now goes through.
        channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.transcript()) == 1

    def test_period_restriction(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DROP, label="x", period=1))
        channel.send("P1", "P2", "x", BitString(1, 1))  # period 0: safe
        channel.advance_period()
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))

    def test_wildcard_label_matches_anything(self):
        channel = FaultyChannel(rules=[FaultRule(mode=DROP)])
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "whatever", BitString(1, 1))


class TestTruncate:
    def test_partial_frame_reaches_transcript(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=TRUNCATE, label="x", keep_bits=3))
        with pytest.raises(FaultInjected) as info:
            channel.send("P1", "P2", "x", BitString(0b10110, 5))
        assert info.value.mode == TRUNCATE
        (partial,) = channel.transcript()
        assert partial.label == "x.truncated"
        assert partial.payload == BitString(0b101, 3)

    def test_keep_bits_clamped_to_payload(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=TRUNCATE, label="x", keep_bits=999))
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(0b11, 2))
        (partial,) = channel.transcript()
        assert partial.payload == BitString(0b11, 2)


class TestDelay:
    def test_message_still_delivered(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DELAY, label="x", delay_ticks=5))
        payload = BitString(1, 1)
        assert channel.send("P1", "P2", "x", payload) == payload
        assert channel.delay_ticks == 5
        assert [m.label for m in channel.transcript()] == ["x"]


class TestRepeat:
    def test_repeat_fires_bounded_number_of_times(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DROP, label="x", repeat=3))
        for _ in range(3):
            with pytest.raises(FaultInjected):
                channel.send("P1", "P2", "x", BitString(1, 1))
        # Spent after the third firing.
        channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.transcript()) == 1
        assert len(channel.injected) == 3

    def test_repeat_none_is_unlimited(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DROP, label="x", repeat=None))
        for _ in range(10):
            with pytest.raises(FaultInjected):
                channel.send("P1", "P2", "x", BitString(1, 1))

    def test_repeat_respects_occurrence_warmup(self):
        """The occurrence countdown still decides *when* the rule gets
        ripe; repeat only decides how many firings follow."""
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DROP, label="x", occurrence=2, repeat=2))
        channel.send("P1", "P2", "x", BitString(1, 1))  # occurrence 1: safe
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))
        channel.send("P1", "P2", "x", BitString(1, 1))  # spent
        assert len(channel.injected) == 2

    def test_invalid_repeat_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(repeat=0)


class TestProbability:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(probability=0.0)
        with pytest.raises(ParameterError):
            FaultRule(probability=1.5)

    def test_seeded_coin_flips_replay_exactly(self):
        """Two transports with the same seed make identical fire/pass
        decisions -- the property every chaos soak leans on."""

        def firing_pattern(seed):
            channel = FaultyChannel(seed=seed)
            channel.add_rule(
                FaultRule(mode=DROP, label="x", probability=0.5, repeat=None)
            )
            pattern = []
            for _ in range(40):
                try:
                    channel.send("P1", "P2", "x", BitString(1, 1))
                    pattern.append(False)
                except FaultInjected:
                    pattern.append(True)
            return pattern

        first = firing_pattern(1234)
        assert first == firing_pattern(1234)
        assert any(first) and not all(first)  # p=0.5 over 40 flips
        assert first != firing_pattern(999)

    def test_coin_matches_reference_rng(self):
        """The gate is exactly ``rng.random() < p`` on the transport's
        own seeded generator -- one draw per ripe offer, none during the
        occurrence warm-up."""
        seed, p = 77, 0.3
        channel = FaultyChannel(seed=seed)
        channel.add_rule(
            FaultRule(mode=DROP, label="x", occurrence=2, probability=p, repeat=None)
        )
        reference = random.Random(seed)
        channel.send("P1", "P2", "x", BitString(1, 1))  # warm-up: no draw
        for _ in range(20):
            expected_fire = reference.random() < p
            if expected_fire:
                with pytest.raises(FaultInjected):
                    channel.send("P1", "P2", "x", BitString(1, 1))
            else:
                channel.send("P1", "P2", "x", BitString(1, 1))

    def test_tails_leaves_rule_ripe(self):
        """A probability miss must not consume the rule: it keeps
        offering on later sends until repeat runs out."""
        channel = FaultyChannel(seed=5)
        channel.add_rule(FaultRule(mode=DROP, label="x", probability=0.2, repeat=1))
        fired = 0
        for _ in range(200):
            try:
                channel.send("P1", "P2", "x", BitString(1, 1))
            except FaultInjected:
                fired += 1
        assert fired == 1  # eventually fired exactly once, then spent


class TestDelaySeconds:
    def test_negative_delay_seconds_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode=DELAY, delay_seconds=-0.1)

    def test_delay_seconds_stalls_then_delivers(self):
        import time

        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DELAY, label="x", delay_seconds=0.05))
        start = time.monotonic()
        payload = BitString(1, 1)
        assert channel.send("P1", "P2", "x", payload) == payload
        assert time.monotonic() - start >= 0.05
        assert [m.label for m in channel.transcript()] == ["x"]


class TestChannelDelegation:
    def test_is_drop_in_for_channel(self):
        inner = Channel()
        channel = FaultyChannel(inner=inner)
        channel.send("P1", "P2", "a", BitString(0b10, 2))
        channel.advance_period()
        channel.send("P2", "P1", "b", BitString(1, 1))
        assert channel.current_period == inner.current_period == 1
        assert channel.bits_on_wire() == 3
        assert channel.bits_by_label(0) == {"a": 2}
        assert channel.transcript_bits(1) == BitString(1, 1)
        assert channel.messages is inner.messages

    def test_clear_rules_disarms(self):
        channel = FaultyChannel.dropping("x")
        channel.clear_rules()
        channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.transcript()) == 1

    def test_injected_log_records_fired_rules(self):
        channel = FaultyChannel.dropping("x")
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.injected) == 1
        rule, label = channel.injected[0]
        assert label == "x"
        assert rule.mode == DROP
