"""Unit tests for the fault-injection channel wrapper."""

import pytest

from repro.errors import FaultInjected, ParameterError
from repro.protocol.channel import Channel
from repro.protocol.faults import (
    DECRYPT_BOUNDARIES,
    DELAY,
    DROP,
    PERIOD_BOUNDARIES,
    REFRESH_BOUNDARIES,
    TRUNCATE,
    FaultRule,
    FaultyChannel,
)
from repro.utils.bits import BitString


class TestFaultRule:
    def test_defaults(self):
        rule = FaultRule()
        assert rule.mode == DROP
        assert rule.label is None
        assert rule.occurrence == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode="explode")

    def test_zero_occurrence_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(occurrence=0)

    def test_negative_keep_bits_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode=TRUNCATE, keep_bits=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            FaultRule(mode=DELAY, delay_ticks=-1)


class TestBoundaryConstants:
    def test_refresh_boundaries_include_commit(self):
        assert "ref.commit" in REFRESH_BOUNDARIES

    def test_period_boundaries_superset(self):
        assert set(DECRYPT_BOUNDARIES) <= set(PERIOD_BOUNDARIES)
        assert set(REFRESH_BOUNDARIES) <= set(PERIOD_BOUNDARIES)


class TestDrop:
    def test_matching_label_raises_and_nothing_on_wire(self):
        channel = FaultyChannel.dropping("b")
        channel.send("P1", "P2", "a", BitString(1, 1))
        with pytest.raises(FaultInjected) as info:
            channel.send("P1", "P2", "b", BitString(1, 1))
        assert info.value.label == "b"
        assert info.value.mode == DROP
        assert [m.label for m in channel.transcript()] == ["a"]

    def test_occurrence_counts_matching_sends(self):
        channel = FaultyChannel.dropping("x", occurrence=3)
        channel.send("P1", "P2", "x", BitString(1, 1))
        channel.send("P1", "P2", "y", BitString(1, 1))  # non-matching
        channel.send("P1", "P2", "x", BitString(1, 1))
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))

    def test_rules_are_one_shot(self):
        channel = FaultyChannel.dropping("x")
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))
        # Spent: the same label now goes through.
        channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.transcript()) == 1

    def test_period_restriction(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DROP, label="x", period=1))
        channel.send("P1", "P2", "x", BitString(1, 1))  # period 0: safe
        channel.advance_period()
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))

    def test_wildcard_label_matches_anything(self):
        channel = FaultyChannel(rules=[FaultRule(mode=DROP)])
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "whatever", BitString(1, 1))


class TestTruncate:
    def test_partial_frame_reaches_transcript(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=TRUNCATE, label="x", keep_bits=3))
        with pytest.raises(FaultInjected) as info:
            channel.send("P1", "P2", "x", BitString(0b10110, 5))
        assert info.value.mode == TRUNCATE
        (partial,) = channel.transcript()
        assert partial.label == "x.truncated"
        assert partial.payload == BitString(0b101, 3)

    def test_keep_bits_clamped_to_payload(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=TRUNCATE, label="x", keep_bits=999))
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(0b11, 2))
        (partial,) = channel.transcript()
        assert partial.payload == BitString(0b11, 2)


class TestDelay:
    def test_message_still_delivered(self):
        channel = FaultyChannel()
        channel.add_rule(FaultRule(mode=DELAY, label="x", delay_ticks=5))
        payload = BitString(1, 1)
        assert channel.send("P1", "P2", "x", payload) == payload
        assert channel.delay_ticks == 5
        assert [m.label for m in channel.transcript()] == ["x"]


class TestChannelDelegation:
    def test_is_drop_in_for_channel(self):
        inner = Channel()
        channel = FaultyChannel(inner=inner)
        channel.send("P1", "P2", "a", BitString(0b10, 2))
        channel.advance_period()
        channel.send("P2", "P1", "b", BitString(1, 1))
        assert channel.current_period == inner.current_period == 1
        assert channel.bits_on_wire() == 3
        assert channel.bits_by_label(0) == {"a": 2}
        assert channel.transcript_bits(1) == BitString(1, 1)
        assert channel.messages is inner.messages

    def test_clear_rules_disarms(self):
        channel = FaultyChannel.dropping("x")
        channel.clear_rules()
        channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.transcript()) == 1

    def test_injected_log_records_fired_rules(self):
        channel = FaultyChannel.dropping("x")
        with pytest.raises(FaultInjected):
            channel.send("P1", "P2", "x", BitString(1, 1))
        assert len(channel.injected) == 1
        rule, label = channel.injected[0]
        assert label == "x"
        assert rule.mode == DROP
