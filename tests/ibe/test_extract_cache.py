"""Unit + protocol regressions for the DLRIBE extract cache.

The :class:`~repro.ibe.extract_cache.IdentityKeyCache` decides when a
batch extraction may *reuse* device-resident identity shares instead of
re-running the 2-party extraction protocol, and when those shares must
be dropped (LRU bound) or stop being vouched for (identity refresh,
master rotation).  The protocol-level tests here pin the
leakage-ledger-aware invalidation contract from the issue: a cached
token goes stale the moment the identity's shares rotate, and a master
refresh marks *every* cached extraction stale at once.
"""

import random

import pytest

from repro.errors import ParameterError
from repro.ibe.dlr_ibe import DLRIBE, _id_slot
from repro.ibe.extract_cache import IdentityKeyCache
from repro.protocol.channel import Channel
from repro.protocol.device import Device

N_ID = 4


@pytest.fixture()
def dibe(small_params):
    return DLRIBE(small_params, n_id=N_ID)


@pytest.fixture()
def setup(dibe):
    return dibe.setup(random.Random(1))


def fresh_devices(dibe, setup, seed=2):
    rng = random.Random(seed)
    p1 = Device("P1", dibe.group, rng)
    p2 = Device("P2", dibe.group, rng)
    dibe.install(p1, p2, setup.share1, setup.share2)
    return p1, p2, Channel()


class TestCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            IdentityKeyCache(0)
        with pytest.raises(ParameterError):
            IdentityKeyCache(-3)

    def test_record_and_lru_order(self):
        cache = IdentityKeyCache(8)
        for name in ("a", "b", "c"):
            assert cache.record(name) is None
        assert cache.identities() == ["a", "b", "c"]
        cache.touch("a")
        assert cache.identities() == ["b", "c", "a"]
        # Touching an absent identity is a no-op, not an insert.
        cache.touch("ghost")
        assert "ghost" not in cache

    def test_eviction_returns_lru_victim(self):
        cache = IdentityKeyCache(2)
        cache.record("a")
        cache.record("b")
        assert cache.record("c") == "a"
        assert cache.identities() == ["b", "c"]
        assert cache.stats()["evictions"] == 1

    def test_re_record_does_not_evict(self):
        cache = IdentityKeyCache(2)
        cache.record("a")
        cache.record("b")
        assert cache.record("a") is None
        assert cache.identities() == ["b", "a"]

    def test_generation_token_staleness(self):
        cache = IdentityKeyCache(4)
        cache.record("alice")
        token = cache.token("alice")
        assert token is not None and cache.is_current(token)
        cache.record("alice")  # rotation mints a new generation
        assert not cache.is_current(token)
        assert cache.is_current(cache.token("alice"))

    def test_epoch_invalidates_everything(self):
        cache = IdentityKeyCache(4)
        cache.record("alice")
        cache.record("bob")
        token = cache.token("bob")
        assert cache.advance_epoch() == 1
        assert not cache.is_fresh("alice")
        assert not cache.is_fresh("bob")
        assert cache.token("alice") is None
        assert not cache.is_current(token)
        # Re-recording re-stamps under the new epoch.
        cache.record("alice")
        assert cache.is_fresh("alice")

    def test_invalidate_and_stats(self):
        cache = IdentityKeyCache(4)
        cache.record("alice")
        assert cache.invalidate("alice")
        assert not cache.invalidate("alice")
        assert cache.is_fresh("alice") is False  # counted as a miss
        stats = cache.stats()
        assert stats["size"] == 0
        assert stats["misses"] == 1
        assert len(cache) == 0


class TestExtractBatchCache:
    def test_batch_extracts_dedupe_and_decrypt(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        done = dibe.extract_batch(
            setup.public_params, p1, p2, channel, ["alice", "bob", "alice"]
        )
        assert done == ["alice", "bob"]
        for identity in done:
            message = dibe.group.random_gt(rng)
            ct = dibe.encrypt_to(setup.public_params, identity, message, rng)
            assert (
                dibe.decrypt_protocol_id(p1, p2, channel, identity, ct) == message
            )

    def test_second_batch_skips_cached(self, dibe, setup):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_batch(setup.public_params, p1, p2, channel, ["alice", "bob"])
        assert (
            dibe.extract_batch(setup.public_params, p1, p2, channel, ["alice", "bob"])
            == []
        )
        # skip_cached=False forces the re-extraction through.
        assert dibe.extract_batch(
            setup.public_params, p1, p2, channel, ["alice"], skip_cached=False
        ) == ["alice"]

    def test_batch_erases_transients(self, dibe, setup):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_batch(setup.public_params, p1, p2, channel, ["alice", "bob"])
        for slot in ("ext.r", "ext.sk_comm", "ext.a_next"):
            assert not p1.secret.has(slot)

    def test_lru_eviction_erases_device_slots(self, small_params, rng):
        dibe = DLRIBE(small_params, n_id=N_ID, extract_cache_size=2)
        setup = dibe.setup(random.Random(1))
        p1, p2, channel = fresh_devices(dibe, setup)
        pp = setup.public_params
        dibe.extract_batch(pp, p1, p2, channel, ["alice", "bob"])
        assert p1.secret.has(_id_slot(1, "alice"))
        dibe.extract_batch(pp, p1, p2, channel, ["carol"])
        # alice was least-recently-used: both devices dropped her shares.
        assert not p1.secret.has(_id_slot(1, "alice"))
        assert not p2.secret.has(_id_slot(2, "alice"))
        assert "alice" not in dibe.extract_cache
        assert p1.secret.has(_id_slot(1, "bob"))
        # bob and carol still decrypt after the eviction.
        for identity in ("bob", "carol"):
            message = dibe.group.random_gt(rng)
            ct = dibe.encrypt_to(pp, identity, message, rng)
            assert (
                dibe.decrypt_protocol_id(p1, p2, channel, identity, ct) == message
            )


class TestInvalidationRegressions:
    """The issue-named regressions: cached entries must be invalidated
    on refresh, never served stale."""

    def test_identity_refresh_rotates_generation_token(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        pp = setup.public_params
        dibe.extract_protocol(pp, p1, p2, channel, "alice")
        token = dibe.extract_cache.token("alice")
        assert token is not None
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(pp, "alice", message, rng)

        dibe.refresh_identity_protocol(pp, p1, p2, channel, "alice")

        # The old witness is stale, the rotated shares still decrypt.
        assert not dibe.extract_cache.is_current(token)
        assert dibe.extract_cache.is_current(dibe.extract_cache.token("alice"))
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message

    def test_master_refresh_advances_epoch_and_forces_reextract(
        self, dibe, setup, rng
    ):
        p1, p2, channel = fresh_devices(dibe, setup)
        pp = setup.public_params
        dibe.extract_batch(pp, p1, p2, channel, ["alice", "bob"])
        epoch_before = dibe.extract_cache.epoch

        dibe.refresh_protocol(p1, p2, channel)

        assert dibe.extract_cache.epoch == epoch_before + 1
        assert not dibe.extract_cache.is_fresh("alice")
        # The next batch re-extracts everything, then vouches again.
        assert dibe.extract_batch(pp, p1, p2, channel, ["alice", "bob"]) == [
            "alice",
            "bob",
        ]
        assert dibe.extract_cache.is_fresh("alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(pp, "alice", message, rng)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message

    def test_identity_period_rotates_generation_not_epoch(self, dibe, setup, rng):
        """An identity period ends in an identity refresh -- a *per-key*
        rotation (new generation), not a master rotation (same epoch)."""
        p1, p2, channel = fresh_devices(dibe, setup)
        pp = setup.public_params
        dibe.extract_protocol(pp, p1, p2, channel, "alice")
        token = dibe.extract_cache.token("alice")
        epoch_before = dibe.extract_cache.epoch
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(pp, "alice", message, rng)
        record = dibe.run_identity_period(pp, p1, p2, channel, "alice", ct)
        assert record.plaintext == message
        assert dibe.extract_cache.epoch == epoch_before
        assert not dibe.extract_cache.is_current(token)
        assert dibe.extract_cache.is_current(dibe.extract_cache.token("alice"))

    def test_failed_extraction_not_cached(self, dibe, setup, monkeypatch):
        p1, p2, channel = fresh_devices(dibe, setup)
        pp = setup.public_params

        def boom(*args, **kwargs):
            raise RuntimeError("wire cut")

        monkeypatch.setattr(dibe, "_run_engine", boom)
        with pytest.raises(RuntimeError):
            dibe.extract_protocol(pp, p1, p2, channel, "alice")
        assert "alice" not in dibe.extract_cache
        with pytest.raises(RuntimeError):
            dibe.extract_batch(pp, p1, p2, channel, ["bob", "carol"])
        assert "bob" not in dibe.extract_cache
        assert "carol" not in dibe.extract_cache
