"""Unit tests for the identity hash H(ID)."""

import pytest

from repro.errors import ParameterError
from repro.ibe.identity_hash import hash_identity


class TestHashIdentity:
    def test_length(self):
        for n_id in (1, 8, 16, 255, 300):
            assert len(hash_identity("alice", n_id)) == n_id

    def test_bits_only(self):
        assert set(hash_identity("bob", 64)) <= {0, 1}

    def test_deterministic(self):
        assert hash_identity("carol", 32) == hash_identity("carol", 32)

    def test_distinct_identities_differ(self):
        assert hash_identity("alice", 64) != hash_identity("bob", 64)

    def test_str_bytes_agreement(self):
        assert hash_identity("dave", 32) == hash_identity(b"dave", 32)

    def test_prefix_stability(self):
        """Longer outputs extend shorter ones (counter-mode XOF)."""
        short = hash_identity("eve", 16)
        long = hash_identity("eve", 64)
        assert long[:16] == short

    def test_zero_length_rejected(self):
        with pytest.raises(ParameterError):
            hash_identity("x", 0)

    def test_output_balanced(self):
        """Roughly half the bits should be 1 over a long output."""
        bits = hash_identity("some-long-identity", 1024)
        ones = sum(bits)
        assert 400 < ones < 624
