"""Protocol tests for DLRIBE (paper section 4.2)."""

import random

import pytest

from repro.errors import ProtocolError
from repro.ibe.dlr_ibe import DLRIBE
from repro.protocol.channel import Channel
from repro.protocol.device import Device

N_ID = 4


@pytest.fixture()
def dibe(small_params):
    return DLRIBE(small_params, n_id=N_ID)


@pytest.fixture()
def setup(dibe):
    return dibe.setup(random.Random(1))


def fresh_devices(dibe, setup, seed=2):
    rng = random.Random(seed)
    p1 = Device("P1", dibe.group, rng)
    p2 = Device("P2", dibe.group, rng)
    dibe.install(p1, p2, setup.share1, setup.share2)
    return p1, p2, Channel()


class TestSetup:
    def test_public_params_consistent(self, dibe, setup):
        pp = setup.public_params
        assert pp.z == dibe.group.pair(pp.g1, pp.g2)
        assert pp.n_id == N_ID

    def test_master_shares_reconstruct_msk(self, dibe, setup):
        msk = setup.share1.phi
        for a_i, s_i in zip(setup.share1.a, setup.share2.s):
            msk = msk / (a_i ** s_i)
        assert dibe.group.pair(dibe.group.g, msk) == setup.public_params.z


class TestExtraction:
    def test_extract_and_decrypt(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message

    def test_extraction_leaves_master_shares(self, dibe, setup):
        p1, p2, channel = fresh_devices(dibe, setup)
        before1, before2 = dibe.share1_of(p1), dibe.share2_of(p2)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        assert dibe.share1_of(p1) == before1
        assert dibe.share2_of(p2) == before2

    def test_extraction_erases_transients(self, dibe, setup):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        for slot in ("ext.r", "ext.sk_comm", "ext.a_next"):
            assert not p1.secret.has(slot)

    def test_wrong_identity_garbles(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "bob")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "bob", ct) != message

    def test_reference_matches_protocol(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        via_protocol = dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct)
        via_reference = dibe.reference_decrypt_id(
            dibe.identity_share1_of(p1, "alice"),
            dibe.identity_share2_of(p2, "alice"),
            ct,
        )
        assert via_protocol == via_reference == message

    def test_missing_identity_share_detected(self, dibe, setup):
        p1, p2, channel = fresh_devices(dibe, setup)
        with pytest.raises(ProtocolError):
            dibe.identity_share1_of(p1, "ghost")


class TestIdentityRefresh:
    def test_refresh_preserves_decryption(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        for _ in range(3):
            dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")
            assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message

    def test_refresh_changes_all_components(self, dibe, setup, rng):
        """Identity refresh re-randomizes the BB exponents (r_pub), the
        a-vector, Psi, and P2's scalars."""
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        old1 = dibe.identity_share1_of(p1, "alice")
        old2 = dibe.identity_share2_of(p2, "alice")
        dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")
        new1 = dibe.identity_share1_of(p1, "alice")
        new2 = dibe.identity_share2_of(p2, "alice")
        assert new1.r_pub != old1.r_pub
        assert new1.a != old1.a
        assert new1.psi != old1.psi
        assert new2 != old2

    def test_master_refresh_then_new_extraction(self, dibe, setup, rng):
        """Master shares refresh via the inherited DLR protocol; later
        extractions still produce working identity keys."""
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.refresh_protocol(p1, p2, channel)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message

    def test_interleaved_master_and_identity_refresh(self, dibe, setup, rng):
        p1, p2, channel = fresh_devices(dibe, setup)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        dibe.refresh_protocol(p1, p2, channel)
        dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")
        dibe.refresh_protocol(p1, p2, channel)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message


class TestLeakageSurface:
    def test_identity_operations_under_phases(self, dibe, setup, rng):
        """Extraction/decryption run inside leakage phases: snapshots
        capture the identity shares + protocol secrets (Remark 4.1's
        leakage applies to both master and identity key material)."""
        p1, p2, channel = fresh_devices(dibe, setup)
        snap1 = p1.secret.open_phase("extract")
        snap2 = p2.secret.open_phase("extract")
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        p1.secret.close_phase()
        p2.secret.close_phase()
        assert "ext.sk_comm" in snap1.names()
        assert "ext.r" in snap1.names()
        assert f"id.alice.sk2" in snap2.names()
