"""Unit tests for the single-processor BB-style IBE substrate."""

import random

import pytest

from repro.errors import ParameterError
from repro.ibe.boneh_boyen import BonehBoyenIBE

N_ID = 6


@pytest.fixture()
def ibe(small_group):
    return BonehBoyenIBE(small_group, n_id=N_ID)


@pytest.fixture()
def setup(ibe):
    return ibe.setup(random.Random(1))


class TestSetup:
    def test_structure(self, ibe, setup):
        pp, msk = setup
        assert pp.n_id == N_ID
        assert len(pp.u) == N_ID
        assert pp.z == ibe.group.pair(pp.g1, pp.g2)

    def test_msk_relation(self, ibe, setup):
        """msk = g2^alpha with g1 = g^alpha: check e(g1, g2) = e(g, msk)."""
        pp, msk = setup
        assert ibe.group.pair(ibe.group.g, msk) == pp.z

    def test_invalid_n_id(self, small_group):
        with pytest.raises(ParameterError):
            BonehBoyenIBE(small_group, n_id=0)


class TestEncryptDecrypt:
    def test_roundtrip(self, ibe, setup, rng):
        pp, msk = setup
        key = ibe.extract(pp, msk, "alice", rng)
        message = ibe.group.random_gt(rng)
        ct = ibe.encrypt(pp, "alice", message, rng)
        assert ibe.decrypt(key, ct) == message

    def test_wrong_identity_key_fails(self, ibe, setup, rng):
        pp, msk = setup
        key_bob = ibe.extract(pp, msk, "bob", rng)
        message = ibe.group.random_gt(rng)
        ct = ibe.encrypt(pp, "alice", message, rng)
        assert ibe.decrypt(key_bob, ct) != message

    def test_multiple_identities(self, ibe, setup, rng):
        pp, msk = setup
        for identity in ("alice", "bob", "carol"):
            key = ibe.extract(pp, msk, identity, rng)
            message = ibe.group.random_gt(rng)
            ct = ibe.encrypt(pp, identity, message, rng)
            assert ibe.decrypt(key, ct) == message

    def test_extraction_randomized_but_functional(self, ibe, setup, rng):
        """Two extractions of the same identity give different keys that
        both decrypt."""
        pp, msk = setup
        key_a = ibe.extract(pp, msk, "alice", rng)
        key_b = ibe.extract(pp, msk, "alice", rng)
        assert key_a != key_b
        message = ibe.group.random_gt(rng)
        ct = ibe.encrypt(pp, "alice", message, rng)
        assert ibe.decrypt(key_a, ct) == message
        assert ibe.decrypt(key_b, ct) == message

    def test_ciphertext_size(self, ibe, setup, rng):
        pp, _ = setup
        ct = ibe.encrypt(pp, "alice", ibe.group.random_gt(rng), rng)
        assert ct.size_group_elements() == 2 + N_ID

    def test_u_for_length_check(self, setup):
        pp, _ = setup
        with pytest.raises(ParameterError):
            pp.u_for((0, 1))
