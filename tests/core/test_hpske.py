"""Unit tests for HPSKE (Definition 5.1 / Lemma 5.2)."""

import random

import pytest

from repro.core.hpske import HPSKE, HPSKECiphertext, HPSKEKey
from repro.errors import ParameterError

KAPPA = 3


@pytest.fixture()
def hpske_g(small_group):
    return HPSKE(small_group, KAPPA, space="G")


@pytest.fixture()
def hpske_gt(small_group):
    return HPSKE(small_group, KAPPA, space="GT")


class TestBasics:
    def test_roundtrip_g(self, hpske_g, small_group, rng):
        key = hpske_g.keygen(rng)
        message = small_group.random_g(rng)
        assert hpske_g.decrypt(key, hpske_g.encrypt(key, message, rng)) == message

    def test_roundtrip_gt(self, hpske_gt, small_group, rng):
        key = hpske_gt.keygen(rng)
        message = small_group.random_gt(rng)
        assert hpske_gt.decrypt(key, hpske_gt.encrypt(key, message, rng)) == message

    def test_wrong_key_garbles(self, hpske_g, small_group, rng):
        key1, key2 = hpske_g.keygen(rng), hpske_g.keygen(rng)
        message = small_group.random_g(rng)
        assert hpske_g.decrypt(key2, hpske_g.encrypt(key1, message, rng)) != message

    def test_randomized_encryption(self, hpske_g, small_group, rng):
        key = hpske_g.keygen(rng)
        message = small_group.random_g(rng)
        a = hpske_g.encrypt(key, message, rng)
        b = hpske_g.encrypt(key, message, rng)
        assert a != b

    def test_explicit_coins_deterministic(self, hpske_g, small_group, rng):
        key = hpske_g.keygen(rng)
        message = small_group.random_g(rng)
        coins = hpske_g.sample_coins(rng)
        assert hpske_g.encrypt(key, message, coins=coins) == hpske_g.encrypt(
            key, message, coins=coins
        )

    def test_key_width_checked(self, hpske_g, small_group, rng):
        other = HPSKE(small_group, KAPPA + 1, space="G").keygen(rng)
        with pytest.raises(ParameterError):
            hpske_g.encrypt(other, small_group.random_g(rng), rng)

    def test_needs_rng_or_coins(self, hpske_g, small_group, rng):
        key = hpske_g.keygen(rng)
        with pytest.raises(ParameterError):
            hpske_g.encrypt(key, small_group.random_g(rng))

    def test_invalid_space(self, small_group):
        with pytest.raises(ParameterError):
            HPSKE(small_group, 2, space="H")

    def test_invalid_kappa(self, small_group):
        with pytest.raises(ParameterError):
            HPSKE(small_group, 0)

    def test_same_key_works_in_both_groups(self, small_group, rng):
        """'HPSKE for ell, G, GT': one key, two carrier groups."""
        g_scheme = HPSKE(small_group, KAPPA, space="G")
        gt_scheme = HPSKE(small_group, KAPPA, space="GT")
        key = g_scheme.keygen(rng)
        mg = small_group.random_g(rng)
        mt = small_group.random_gt(rng)
        assert g_scheme.decrypt(key, g_scheme.encrypt(key, mg, rng)) == mg
        assert gt_scheme.decrypt(key, gt_scheme.encrypt(key, mt, rng)) == mt


class TestHomomorphisms:
    def test_product_homomorphism(self, hpske_g, small_group, rng):
        """Definition 5.1, part 1: Dec(c0 * c1) = m0 * m1."""
        key = hpske_g.keygen(rng)
        m0, m1 = small_group.random_g(rng), small_group.random_g(rng)
        c0 = hpske_g.encrypt(key, m0, rng)
        c1 = hpske_g.encrypt(key, m1, rng)
        assert hpske_g.decrypt(key, c0 * c1) == m0 * m1

    def test_quotient_homomorphism(self, hpske_g, small_group, rng):
        key = hpske_g.keygen(rng)
        m0, m1 = small_group.random_g(rng), small_group.random_g(rng)
        c0 = hpske_g.encrypt(key, m0, rng)
        c1 = hpske_g.encrypt(key, m1, rng)
        assert hpske_g.decrypt(key, c0 / c1) == m0 / m1

    def test_scalar_homomorphism(self, hpske_g, small_group, rng):
        """Enc(m)^s decrypts to m^s -- what P2's combination step uses."""
        key = hpske_g.keygen(rng)
        m = small_group.random_g(rng)
        s = small_group.random_scalar(rng)
        assert hpske_g.decrypt(key, hpske_g.encrypt(key, m, rng) ** s) == m ** s

    def test_p2_combination_shape(self, hpske_g, small_group, rng):
        """Dec(prod c_i^{s_i} * c0) = prod m_i^{s_i} * m0 -- the exact
        expression P2 computes in Dec and Ref."""
        key = hpske_g.keygen(rng)
        messages = [small_group.random_g(rng) for _ in range(4)]
        scalars = [small_group.random_scalar(rng) for _ in range(4)]
        cts = [hpske_g.encrypt(key, m, rng) for m in messages]
        base = hpske_g.encrypt(key, small_group.random_g(rng), rng)
        combined = base
        expected = hpske_g.decrypt(key, base)
        for ct, m, s in zip(cts, messages, scalars):
            combined = combined * (ct ** s)
            expected = expected * (m ** s)
        assert hpske_g.decrypt(key, combined) == expected

    def test_width_mismatch_rejected(self, hpske_g, small_group, rng):
        key = hpske_g.keygen(rng)
        ct = hpske_g.encrypt(key, small_group.random_g(rng), rng)
        other = HPSKE(small_group, KAPPA + 1, "G")
        key2 = other.keygen(rng)
        ct2 = other.encrypt(key2, small_group.random_g(rng), rng)
        from repro.errors import GroupError

        with pytest.raises(GroupError):
            ct * ct2


class TestWeightedProduct:
    """The fused multi-exponentiation form of the combine expression."""

    def test_matches_sequential_ops(self, hpske_g, small_group, rng):
        from repro.core.hpske import weighted_product

        key = hpske_g.keygen(rng)
        messages = [small_group.random_g(rng) for _ in range(5)]
        scalars = [small_group.random_scalar(rng) for _ in range(5)]
        cts = [hpske_g.encrypt(key, m, rng) for m in messages]
        fused = weighted_product(cts, scalars)
        sequential = cts[0] ** scalars[0]
        for ct, s in zip(cts[1:], scalars[1:]):
            sequential = sequential * (ct ** s)
        assert fused == sequential

    def test_division_folds_as_p_minus_one(self, hpske_g, small_group, rng):
        """An exponent of p - 1 is a division -- the combine steps'
        trailing ``/ d_Phi`` in fused form."""
        from repro.core.hpske import weighted_product

        p = small_group.p
        key = hpske_g.keygen(rng)
        c0 = hpske_g.encrypt(key, small_group.random_g(rng), rng)
        c1 = hpske_g.encrypt(key, small_group.random_g(rng), rng)
        assert weighted_product((c0, c1), (1, p - 1)) == c0 / c1

    def test_decrypts_to_weighted_message_product(self, hpske_g, small_group, rng):
        from repro.core.hpske import weighted_product

        key = hpske_g.keygen(rng)
        messages = [small_group.random_g(rng) for _ in range(4)]
        scalars = [small_group.random_scalar(rng) for _ in range(4)]
        cts = [hpske_g.encrypt(key, m, rng) for m in messages]
        combined = weighted_product(cts, scalars)
        expected = None
        for m, s in zip(messages, scalars):
            term = m ** s
            expected = term if expected is None else expected * term
        assert hpske_g.decrypt(key, combined) == expected

    def test_empty_rejected(self):
        from repro.core.hpske import weighted_product

        with pytest.raises(ParameterError):
            weighted_product((), ())

    def test_length_mismatch_rejected(self, hpske_g, small_group, rng):
        from repro.core.hpske import weighted_product

        key = hpske_g.keygen(rng)
        ct = hpske_g.encrypt(key, small_group.random_g(rng), rng)
        with pytest.raises(ParameterError):
            weighted_product((ct,), (1, 2))

    def test_width_mismatch_rejected(self, hpske_g, small_group, rng):
        from repro.core.hpske import weighted_product
        from repro.errors import GroupError

        key = hpske_g.keygen(rng)
        ct = hpske_g.encrypt(key, small_group.random_g(rng), rng)
        other = HPSKE(small_group, KAPPA + 1, "G")
        ct2 = other.encrypt(other.keygen(rng), small_group.random_g(rng), rng)
        with pytest.raises(GroupError):
            weighted_product((ct, ct2), (1, 1))

    def test_matches_reference_mode(self, hpske_gt, small_group, rng):
        from repro.core.hpske import weighted_product
        from repro.groups import fastops

        key = hpske_gt.keygen(rng)
        cts = [
            hpske_gt.encrypt(key, small_group.random_gt(rng), rng) for _ in range(6)
        ]
        scalars = [small_group.random_scalar(rng) for _ in range(6)]
        fast = weighted_product(cts, scalars)
        with fastops.reference_mode():
            reference = weighted_product(cts, scalars)
        assert fast == reference


class TestPairingTransport:
    def test_pair_with_transports_to_gt(self, small_group, rng):
        """The f_i -> d_i reuse (section 5.2 remark): a G-ciphertext of m
        paired with A is a GT-ciphertext of e(A, m) under the same key."""
        g_scheme = HPSKE(small_group, KAPPA, "G")
        gt_scheme = HPSKE(small_group, KAPPA, "GT")
        key = g_scheme.keygen(rng)
        m = small_group.random_g(rng)
        a_point = small_group.random_g(rng)
        transported = g_scheme.encrypt(key, m, rng).pair_with(a_point)
        assert gt_scheme.decrypt(key, transported) == small_group.pair(a_point, m)

    def test_transport_preserves_homomorphism(self, small_group, rng):
        g_scheme = HPSKE(small_group, KAPPA, "G")
        gt_scheme = HPSKE(small_group, KAPPA, "GT")
        key = g_scheme.keygen(rng)
        m = small_group.random_g(rng)
        s = small_group.random_scalar(rng)
        a_point = small_group.random_g(rng)
        d = g_scheme.encrypt(key, m, rng).pair_with(a_point)
        assert gt_scheme.decrypt(key, d ** s) == small_group.pair(a_point, m) ** s


class TestSizes:
    def test_ciphertext_bits(self, small_group):
        g_scheme = HPSKE(small_group, KAPPA, "G")
        assert g_scheme.ciphertext_bits() == (KAPPA + 1) * small_group.g_element_bits()

    def test_key_bits(self, small_group, rng):
        key = HPSKE(small_group, KAPPA, "G").keygen(rng)
        assert key.size_bits() == KAPPA * small_group.scalar_bits()

    def test_key_reduction(self, small_group):
        p = small_group.p
        key = HPSKEKey((p + 1, 2 * p + 5), p)
        assert key.sigma == (1, 5)


class TestResidualEntropy:
    def test_definition_5_1_part_2_toy(self, toy_group):
        """On a toy group: even given the ciphertext coins and kappa-1 of
        the kappa key scalars (heavy leakage), the plaintext's mask still
        takes many values -> residual entropy in the plaintext.

        This checks the *mechanism* behind Definition 5.1 part 2: the
        mask prod b_j^{sigma_j} depends on the unleaked key material.
        """
        rng = random.Random(1)
        scheme = HPSKE(toy_group, kappa=2, space="GT")
        message = toy_group.random_gt(rng)
        coins = scheme.sample_coins(rng)
        # Leak sigma_1 entirely; sigma_2 unknown. Count distinct possible
        # plaintexts consistent with the ciphertext body over sigma_2.
        sigma1 = 7
        bodies = set()
        for sigma2 in range(64):
            key = HPSKEKey((sigma1, sigma2), toy_group.p)
            ct = scheme.encrypt(key, message, coins=coins)
            bodies.add(ct.body)
        assert len(bodies) == 64  # each key guess -> distinct body
