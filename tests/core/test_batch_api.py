"""Scheme-level batch API tests: ``encrypt_batch`` / ``decrypt_batch``.

The batch entry points are amortisation, not new cryptography: one
shared window decision and one fixed-``A`` pairing schedule per vector,
but every output must match what the corresponding singleton calls
produce, and the share rotation at the end of a batch period must leave
the devices as healthy as a normal period does.
"""

import random

import pytest

from repro.core.dlr import DLR, MultiPeriodRecord
from repro.core.optimal import OptimalDLR
from repro.protocol.channel import Channel
from repro.protocol.device import Device

SCHEMES = [DLR, OptimalDLR]


def _p1_share(scheme, device):
    """Device-1 share state, across both layouts (OptimalDLR keeps P1's
    share HPSKE-encrypted rather than as a plain ``Share1``)."""
    if isinstance(scheme, OptimalDLR):
        return scheme.encrypted_share_of(device)
    return scheme.share1_of(device)


def _installed(small_params, scheme_cls, seed=11):
    scheme = scheme_cls(small_params)
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    return scheme, generation, p1, p2, Channel(), rng


class TestEncryptBatch:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_round_trip(self, small_params, scheme_cls, rng):
        scheme, generation, p1, p2, channel, _ = _installed(
            small_params, scheme_cls
        )
        messages = [scheme.group.random_gt(rng) for _ in range(5)]
        ciphertexts = scheme.encrypt_batch(generation.public_key, messages, rng)
        assert len(ciphertexts) == len(messages)
        record = scheme.decrypt_batch(p1, p2, channel, ciphertexts)
        assert list(record.plaintexts) == messages

    def test_empty_batch_encrypt(self, small_params, rng):
        scheme, generation, *_ = _installed(small_params, DLR)
        assert scheme.encrypt_batch(generation.public_key, [], rng) == []

    def test_each_ciphertext_decrypts_standalone(self, small_params, rng):
        """Batch-encrypted ciphertexts are ordinary ciphertexts: any one
        of them decrypts through the singleton protocol."""
        scheme, generation, p1, p2, channel, _ = _installed(small_params, DLR)
        messages = [scheme.group.random_gt(rng) for _ in range(3)]
        ciphertexts = scheme.encrypt_batch(generation.public_key, messages, rng)
        assert (
            scheme.decrypt_protocol(p1, p2, channel, ciphertexts[1]) == messages[1]
        )


class TestDecryptBatch:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_is_one_period_and_rotates_shares(self, small_params, scheme_cls, rng):
        scheme, generation, p1, p2, channel, _ = _installed(
            small_params, scheme_cls
        )
        before1 = _p1_share(scheme, p1)
        messages = [scheme.group.random_gt(rng) for _ in range(4)]
        ciphertexts = scheme.encrypt_batch(generation.public_key, messages, rng)
        record = scheme.decrypt_batch(p1, p2, channel, ciphertexts)
        assert isinstance(record, MultiPeriodRecord)
        assert record.period == 0
        assert channel.current_period == 1
        # The whole batch cost exactly one share rotation.
        assert _p1_share(scheme, p1) != before1

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_shares_stay_healthy_across_batch_periods(
        self, small_params, scheme_cls, rng
    ):
        scheme, generation, p1, p2, channel, _ = _installed(
            small_params, scheme_cls
        )
        for period in range(3):
            messages = [scheme.group.random_gt(rng) for _ in range(2 + period)]
            ciphertexts = scheme.encrypt_batch(
                generation.public_key, messages, rng
            )
            record = scheme.decrypt_batch(p1, p2, channel, ciphertexts)
            assert list(record.plaintexts) == messages
            assert record.period == period

    def test_batch_of_one_matches_run_period(self, small_params, rng):
        scheme, generation, p1, p2, channel, _ = _installed(small_params, DLR)
        message = scheme.group.random_gt(rng)
        [ciphertext] = scheme.encrypt_batch(generation.public_key, [message], rng)
        record = scheme.decrypt_batch(p1, p2, channel, [ciphertext])
        assert record.plaintexts == [message]

    def test_reference_decrypt_agrees_after_batch(self, small_params, rng):
        """The rotated shares reconstruct the same secret key: reference
        decryption still works after a batch period."""
        scheme, generation, p1, p2, channel, _ = _installed(small_params, DLR)
        messages = [scheme.group.random_gt(rng) for _ in range(3)]
        ciphertexts = scheme.encrypt_batch(generation.public_key, messages, rng)
        scheme.decrypt_batch(p1, p2, channel, ciphertexts)
        probe = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generation.public_key, probe, rng)
        assert (
            scheme.reference_decrypt(
                scheme.share1_of(p1), scheme.share2_of(p2), ct
            )
            == probe
        )
