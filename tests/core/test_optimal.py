"""Tests for the optimal-leakage-rate variant (section 5.2 remarks)."""

import random

import pytest

from repro.core.optimal import ENC_SHARE_SLOT, SK_COMM_SLOT, OptimalDLR
from repro.protocol.channel import Channel
from repro.protocol.device import Device


@pytest.fixture()
def scheme(small_params):
    return OptimalDLR(small_params)


@pytest.fixture()
def generated(scheme):
    return scheme.generate(random.Random(1))


def fresh_devices(scheme, generated, seed=2):
    rng = random.Random(seed)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generated.share1, generated.share2)
    return p1, p2, Channel()


class TestInstall:
    def test_p1_secret_is_only_sk_comm(self, scheme, generated):
        p1, p2, _ = fresh_devices(scheme, generated)
        assert p1.secret.names() == [SK_COMM_SLOT]
        assert p1.secret.size_bits() == scheme.params.sk_comm_bits()

    def test_encrypted_share_in_public_memory(self, scheme, generated):
        p1, _, _ = fresh_devices(scheme, generated)
        encrypted = p1.public.read(ENC_SHARE_SLOT)
        assert len(encrypted) == scheme.params.ell + 1

    def test_encrypted_share_decrypts_to_sk1(self, scheme, generated):
        p1, _, _ = fresh_devices(scheme, generated)
        recovered = scheme.recover_share1(p1)
        assert recovered == generated.share1


class TestProtocols:
    def test_decrypt_roundtrip(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        assert scheme.decrypt_protocol(p1, p2, channel, ct) == message

    def test_refresh_then_decrypt(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        for _ in range(3):
            scheme.refresh_protocol(p1, p2, channel)
            assert scheme.decrypt_protocol(p1, p2, channel, ct) == message

    def test_refresh_changes_sk_comm_and_share(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        old_key = p1.secret.read(SK_COMM_SLOT)
        old_encrypted = p1.public.read(ENC_SHARE_SLOT)
        old_sk1 = scheme.recover_share1(p1)
        scheme.refresh_protocol(p1, p2, channel)
        assert p1.secret.read(SK_COMM_SLOT) != old_key
        assert p1.public.read(ENC_SHARE_SLOT) != old_encrypted
        assert scheme.recover_share1(p1) != old_sk1

    def test_refresh_preserves_msk(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)

        def msk(share1, share2):
            value = share1.phi
            for a_i, s_i in zip(share1.a, share2.s):
                value = value / (a_i ** s_i)
            return value

        before = msk(scheme.recover_share1(p1), scheme.share2_of(p2))
        scheme.refresh_protocol(p1, p2, channel)
        after = msk(scheme.recover_share1(p1), scheme.share2_of(p2))
        assert before == after

    def test_no_transient_secrets_left(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        scheme.refresh_protocol(p1, p2, channel)
        assert p1.secret.names() == [SK_COMM_SLOT]


class TestPaperAccounting:
    """The Theorem 4.1 memory sizes, measured."""

    def test_normal_snapshot_is_m1(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        record = scheme.run_period(p1, p2, channel, ct)
        assert record.snapshots[(1, "normal")].size_bits() == scheme.params.sk_comm_bits()

    def test_refresh_snapshot_is_2m1(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        record = scheme.run_period(p1, p2, channel, ct)
        assert record.snapshots[(1, "refresh")].size_bits() == 2 * scheme.params.sk_comm_bits()

    def test_p2_sizes(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        record = scheme.run_period(p1, p2, channel, ct)
        m2 = scheme.params.sk2_bits()
        assert record.snapshots[(2, "normal")].size_bits() == m2
        assert record.snapshots[(2, "refresh")].size_bits() == 2 * m2

    def test_measured_rates_match_theorem(self, scheme):
        """rho1 = b1/m1 -> 1 - o(1); rho1_ref = b1/2m1 -> 1/2 - o(1);
        rho2 = 1; rho2_ref = 1/2."""
        params = scheme.params
        b1, b2 = params.theorem_b1(), params.theorem_b2()
        m1, m2 = params.sk_comm_bits(), params.sk2_bits()
        lam, n = params.lam, params.n
        assert b1 / m1 == pytest.approx(lam / (lam + 3 * n), abs=1e-9)
        assert 0 < b1 / m1 < 1.0
        assert b1 / (2 * m1) < 0.5
        assert b2 / m2 == 1.0
        assert b2 / (2 * m2) == 0.5

    def test_run_period_correctness(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        for _ in range(2):
            message = scheme.group.random_gt(rng)
            ct = scheme.encrypt(generated.public_key, message, rng)
            assert scheme.run_period(p1, p2, channel, ct).plaintext == message


class TestDeviceAsymmetry:
    def test_p2_does_no_pairings(self, scheme, generated, rng):
        """The 'simple auxiliary device' property (section 1.1 item 4):
        P2 only samples scalars and computes products-of-powers."""
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        scheme.run_period(p1, p2, channel, ct)
        assert p2.ops.pairings == 0
        assert p2.ops.pairings_precomp == 0
        # P1 carries all pairing work (full or precomputed-schedule).
        assert p1.ops.pairings + p1.ops.pairings_precomp > 0

    def test_p2_samples_no_group_elements(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        scheme.run_period(p1, p2, channel, ct)
        assert p2.ops.g_samples == 0
        assert p2.ops.gt_samples == 0
