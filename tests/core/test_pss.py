"""Unit tests for Pi_ss, the secret-sharing symmetric encryption."""

import random

import pytest

from repro.core.pss import PSS

ELL = 5


@pytest.fixture()
def pss(small_group):
    return PSS(small_group, ELL)


class TestRoundtrip:
    def test_encrypt_decrypt(self, pss, small_group, rng):
        key = pss.keygen(rng)
        message = small_group.random_g(rng)
        assert pss.decrypt(key, pss.encrypt(key, message, rng)) == message

    def test_wrong_key_fails(self, pss, small_group, rng):
        key1, key2 = pss.keygen(rng), pss.keygen(rng)
        message = small_group.random_g(rng)
        assert pss.decrypt(key2, pss.encrypt(key1, message, rng)) != message

    def test_ciphertext_structure(self, pss, small_group, rng):
        """Ciphertext is (a_1..a_ell, m * prod a_i^{s_i})."""
        key = pss.keygen(rng)
        message = small_group.random_g(rng)
        ct = pss.encrypt(key, message, rng)
        assert len(ct.coins) == ELL
        mask = small_group.g_identity()
        for a_i, s_i in zip(ct.coins, key.sigma):
            mask = mask * (a_i ** s_i)
        assert ct.body == message * mask


class TestSharing:
    def test_share_reconstruct(self, pss, small_group, rng):
        secret = small_group.random_g(rng)
        share1, share2 = pss.share(secret, rng)
        assert pss.reconstruct(share1, share2) == secret

    def test_shares_are_distributed_sharing(self, pss, small_group, rng):
        """Neither share alone determines the secret: re-sharing the same
        secret gives completely different share values."""
        secret = small_group.random_g(rng)
        c1, k1 = pss.share(secret, rng)
        c2, k2 = pss.share(secret, rng)
        assert c1 != c2
        assert k1.sigma != k2.sigma
        # Cross-combining shares of different sharings garbles.
        assert pss.reconstruct(c1, k2) != secret

    def test_share_of_identity(self, pss, small_group, rng):
        secret = small_group.g_identity()
        share1, share2 = pss.share(secret, rng)
        assert pss.reconstruct(share1, share2) == secret


class TestLeakageResilienceMechanism:
    def test_mask_is_pairwise_independent_toy(self, toy_group):
        """The map s -> prod a_i^{s_i} over random a_i is the hash family
        whose pairwise independence the leftover hash lemma needs: for
        fixed distinct key vectors, the pair of masks is uniform over
        random coins.  Checked statistically on a toy group with ell=1:
        mask = a^s; for s != s', (a^s, a^{s'}) covers distinct pairs."""
        rng = random.Random(2)
        pss = PSS(toy_group, 1)
        s, s_prime = 3, 11
        pairs = set()
        for _ in range(300):
            a = toy_group.random_g(rng)
            pairs.add((a ** s, a ** s_prime))
        # Almost all sampled pairs distinct -> the pair is far from
        # degenerate (a constant map would give 1).
        assert len(pairs) > 290

    def test_residual_uncertainty_given_partial_key(self, toy_group):
        """Leak all but one scalar of sk_ss: the remaining scalar still
        ranges the mask over many values (the entropy Pi_ss's security
        rests on)."""
        rng = random.Random(3)
        pss = PSS(toy_group, 2)
        secret = toy_group.random_g(rng)
        ciphertext, key = pss.share(secret, rng)
        candidates = set()
        for guess in range(50):
            candidate_key = type(key)((key.sigma[0], guess), toy_group.p)
            candidates.add(pss.decrypt(candidate_key, ciphertext))
        assert len(candidates) == 50
