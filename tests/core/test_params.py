"""Unit tests for the DLR parameter schedule (section 5 preamble)."""

import pytest

from repro.core.params import DLRParams
from repro.errors import ParameterError


class TestSchedule:
    def test_kappa_formula(self, small_group):
        # kappa = 1 + ceil((lam + 2n)/log p); here n = log p = 32.
        params = DLRParams(group=small_group, lam=32)
        assert params.kappa == 1 + -(-(32 + 64) // 32)

    def test_ell_formula(self, small_group):
        params = DLRParams(group=small_group, lam=32)
        assert params.ell == 7 + 3 * params.kappa + -(-2 * 32 // 32)

    def test_kappa_grows_with_lambda(self, small_group):
        kappas = [DLRParams(group=small_group, lam=lam).kappa for lam in (32, 128, 512)]
        assert kappas == sorted(kappas)
        assert kappas[0] < kappas[-1]

    def test_lambda_positive_required(self, small_group):
        with pytest.raises(ParameterError):
            DLRParams(group=small_group, lam=0)

    def test_epsilon_is_2_to_minus_n(self, small_group):
        params = DLRParams(group=small_group, lam=32)
        assert params.epsilon_log2 == params.n


class TestDerivedSizes:
    def test_m1_is_kappa_log_p(self, small_params):
        assert small_params.sk_comm_bits() == small_params.kappa * small_params.log_p

    def test_m2_is_ell_log_p(self, small_params):
        assert small_params.sk2_bits() == small_params.ell * small_params.log_p

    def test_sk1_bits_counts_ell_plus_one_elements(self, small_params):
        assert small_params.sk1_bits() == (
            (small_params.ell + 1) * small_params.group.g_element_bits()
        )

    def test_sk_comm_size_near_lambda_plus_3n(self, small_group):
        """|sk_comm| = kappa log p ~ lambda + 3n (the Theorem 4.1 proof's
        parameters setting)."""
        for lam in (64, 128, 512):
            params = DLRParams(group=small_group, lam=lam)
            target = lam + 3 * params.n
            assert target <= params.sk_comm_bits() <= target + 2 * params.log_p


class TestTheoremBounds:
    def test_b1_below_m1(self, small_params):
        assert 0 < small_params.theorem_b1() < small_params.sk_comm_bits()

    def test_b1_fraction_matches_formula(self, small_group):
        params = DLRParams(group=small_group, lam=96)
        m1 = params.sk_comm_bits()
        expected = m1 * 96 // (96 + 3 * 32)
        assert params.theorem_b1() == expected

    def test_b2_is_full_share(self, small_params):
        assert small_params.theorem_b2() == small_params.sk2_bits()


class TestParameterAdvisor:
    def test_target_rate_achieved(self, small_group):
        for target in (0.5, 0.75, 0.9):
            params = DLRParams.for_target_rate(small_group, target)
            achieved = params.achieved_rho1()
            # Integer rounding of kappa only ever *adds* key material, so
            # the achieved rate can dip slightly below target; allow 10%.
            assert achieved >= target * 0.9

    def test_higher_target_higher_lambda(self, small_group):
        lams = [
            DLRParams.for_target_rate(small_group, t).lam
            for t in (0.25, 0.5, 0.75, 0.95)
        ]
        assert lams == sorted(lams)
        assert lams[0] < lams[-1]

    def test_formula(self, small_group):
        params = DLRParams.for_target_rate(small_group, 0.5)
        # lambda = 3n * 0.5/0.5 = 3n
        assert params.lam == 3 * small_group.params.n

    def test_invalid_target(self, small_group):
        with pytest.raises(ParameterError):
            DLRParams.for_target_rate(small_group, 1.0)
        with pytest.raises(ParameterError):
            DLRParams.for_target_rate(small_group, 0.0)

    def test_achieved_rho1_matches_theorem(self, small_params):
        assert small_params.achieved_rho1() == (
            small_params.theorem_b1() / small_params.sk_comm_bits()
        )
