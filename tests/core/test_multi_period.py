"""Tests for multiple decryptions per time period (section 3.3 extension)."""

import random

import pytest

from repro.core.dlr import DLR
from repro.protocol.channel import Channel
from repro.protocol.device import Device


@pytest.fixture()
def scheme(small_params):
    return DLR(small_params)


@pytest.fixture()
def setting(scheme):
    rng = random.Random(1)
    generation = scheme.generate(rng)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    return generation, p1, p2, Channel(), rng


class TestMultiDecryption:
    def test_all_plaintexts_correct(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        messages = [scheme.group.random_gt(rng) for _ in range(4)]
        ciphertexts = [scheme.encrypt(generation.public_key, m, rng) for m in messages]
        record = scheme.run_period_multi(p1, p2, channel, ciphertexts)
        assert record.plaintexts == messages

    def test_zero_decryptions_is_a_pure_refresh(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        old_share2 = scheme.share2_of(p2)
        record = scheme.run_period_multi(p1, p2, channel, [])
        assert record.plaintexts == []
        assert scheme.share2_of(p2) != old_share2
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        assert scheme.decrypt_protocol(p1, p2, channel, ciphertext) == message

    def test_single_matches_run_period(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        record = scheme.run_period_multi(p1, p2, channel, [ciphertext])
        assert record.plaintexts == [message]

    def test_snapshot_shape_unchanged(self, scheme, setting):
        """More decryptions per period do NOT grow the leakage input:
        the only secrets are the share and one sk_comm, regardless of
        how many ciphertexts were served."""
        generation, p1, p2, channel, rng = setting
        few = scheme.run_period_multi(
            p1, p2, channel,
            [scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)],
        )
        many = scheme.run_period_multi(
            p1, p2, channel,
            [scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
             for _ in range(4)],
        )
        for key in few.snapshots:
            assert few.snapshots[key].size_bits() == many.snapshots[key].size_bits()

    def test_refresh_still_happens(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        before1 = scheme.share1_of(p1)
        ciphertexts = [
            scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
            for _ in range(2)
        ]
        scheme.run_period_multi(p1, p2, channel, ciphertexts)
        assert scheme.share1_of(p1) != before1
        assert channel.current_period == 1

    def test_consecutive_multi_periods(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        for t in range(2):
            messages = [scheme.group.random_gt(rng) for _ in range(2)]
            ciphertexts = [scheme.encrypt(generation.public_key, m, rng) for m in messages]
            record = scheme.run_period_multi(p1, p2, channel, ciphertexts)
            assert record.plaintexts == messages
            assert record.period == t
