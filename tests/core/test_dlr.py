"""Unit and protocol tests for DLR (Construction 5.3)."""

import random

import pytest

from repro.core.dlr import DLR, SK1_SLOT, SK2_SLOT
from repro.core.keys import Ciphertext, Share1, Share2
from repro.errors import ProtocolError
from repro.protocol.channel import Channel
from repro.protocol.device import Device


@pytest.fixture()
def scheme(small_params):
    return DLR(small_params)


@pytest.fixture()
def generated(scheme):
    return scheme.generate(random.Random(1))


def fresh_devices(scheme, generated, seed=2):
    rng = random.Random(seed)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generated.share1, generated.share2)
    return p1, p2, Channel()


class TestGen:
    def test_share_shapes(self, scheme, generated):
        assert len(generated.share1.a) == scheme.params.ell
        assert len(generated.share2.s) == scheme.params.ell

    def test_public_key_consistency(self, scheme, generated):
        """pk carries z = e(g1, g2) = e(g, msk); the Pi_ss sharing hides
        exactly that msk = g2^alpha."""
        group = scheme.group
        msk = generated.share1.phi
        for a_i, s_i in zip(generated.share1.a, generated.share2.s):
            msk = msk / (a_i ** s_i)
        assert group.pair(group.g, msk) == generated.public_key.z

    def test_generation_randomness_recorded(self, generated):
        names = set(generated.randomness.names())
        assert {"alpha", "g2", "s", "a"} <= names

    def test_distinct_generations_distinct_keys(self, scheme):
        a = scheme.generate(random.Random(1))
        b = scheme.generate(random.Random(2))
        assert a.public_key.z != b.public_key.z


class TestEncDec:
    def test_ciphertext_is_two_group_elements(self, scheme, generated, rng):
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        assert ct.size_group_elements() == 2

    def test_reference_roundtrip(self, scheme, generated, rng):
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        assert scheme.reference_decrypt(generated.share1, generated.share2, ct) == message

    def test_protocol_roundtrip(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        assert scheme.decrypt_protocol(p1, p2, channel, ct) == message

    def test_protocol_matches_reference(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        for _ in range(3):
            ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
            assert scheme.decrypt_protocol(p1, p2, channel, ct) == \
                scheme.reference_decrypt(generated.share1, generated.share2, ct)

    def test_encryption_randomized(self, scheme, generated, rng):
        message = scheme.group.random_gt(rng)
        a = scheme.encrypt(generated.public_key, message, rng)
        b = scheme.encrypt(generated.public_key, message, rng)
        assert a != b

    def test_protocol_erases_sk_comm(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        scheme.decrypt_protocol(p1, p2, channel, ct)
        assert not p1.secret.has("dec.sk_comm")

    def test_two_messages_on_channel(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        scheme.decrypt_protocol(p1, p2, channel, ct)
        assert [m.label for m in channel.transcript()] == ["dec.d", "dec.c_prime"]


class TestRefresh:
    def test_decryption_still_works_after_refresh(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        scheme.refresh_protocol(p1, p2, channel)
        assert scheme.decrypt_protocol(p1, p2, channel, ct) == message

    def test_many_refreshes(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        for _ in range(5):
            scheme.refresh_protocol(p1, p2, channel)
        assert scheme.decrypt_protocol(p1, p2, channel, ct) == message

    def test_public_key_unchanged(self, scheme, generated, rng):
        """The refreshed shares still share the *same* msk: a post-refresh
        encryption under the original pk decrypts correctly."""
        p1, p2, channel = fresh_devices(scheme, generated)
        scheme.refresh_protocol(p1, p2, channel)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        assert scheme.decrypt_protocol(p1, p2, channel, ct) == message

    def test_shares_change(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        old1 = scheme.share1_of(p1)
        old2 = scheme.share2_of(p2)
        scheme.refresh_protocol(p1, p2, channel)
        assert scheme.share1_of(p1) != old1
        assert scheme.share2_of(p2) != old2

    def test_old_share_erased(self, scheme, generated, rng):
        """Definition 3.1: by termination the old share is erased -- the
        slot holds only the new value."""
        p1, p2, channel = fresh_devices(scheme, generated)
        old2 = scheme.share2_of(p2)
        scheme.refresh_protocol(p1, p2, channel)
        assert p2.secret.read(SK2_SLOT) != old2
        assert not p1.secret.has("ref.sk_comm")
        assert not p1.secret.has("ref.a_next")

    def test_new_shares_reconstruct_same_msk(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        group = scheme.group

        def msk_of(share1, share2):
            value = share1.phi
            for a_i, s_i in zip(share1.a, share2.s):
                value = value / (a_i ** s_i)
            return value

        before = msk_of(scheme.share1_of(p1), scheme.share2_of(p2))
        scheme.refresh_protocol(p1, p2, channel)
        after = msk_of(scheme.share1_of(p1), scheme.share2_of(p2))
        assert before == after


class TestRunPeriod:
    def test_period_output_correct(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        message = scheme.group.random_gt(rng)
        ct = scheme.encrypt(generated.public_key, message, rng)
        record = scheme.run_period(p1, p2, channel, ct)
        assert record.plaintext == message

    def test_period_advances(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        scheme.run_period(p1, p2, channel, ct)
        assert channel.current_period == 1

    def test_snapshots_present(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        record = scheme.run_period(p1, p2, channel, ct)
        assert set(record.snapshots) == {
            (1, "normal"), (1, "refresh"), (2, "normal"), (2, "refresh")
        }

    def test_p2_snapshot_sizes_match_paper(self, scheme, generated, rng):
        """P2's secret memory: m2 normally, 2 m2 during refresh."""
        p1, p2, channel = fresh_devices(scheme, generated)
        ct = scheme.encrypt(generated.public_key, scheme.group.random_gt(rng), rng)
        record = scheme.run_period(p1, p2, channel, ct)
        m2 = scheme.params.sk2_bits()
        assert record.snapshots[(2, "normal")].size_bits() == m2
        assert record.snapshots[(2, "refresh")].size_bits() == 2 * m2

    def test_consecutive_periods(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        for t in range(3):
            message = scheme.group.random_gt(rng)
            ct = scheme.encrypt(generated.public_key, message, rng)
            record = scheme.run_period(p1, p2, channel, ct)
            assert record.plaintext == message
            assert record.period == t


class TestInstallValidation:
    def test_missing_share_detected(self, scheme, small_group, rng):
        device = Device("P1", small_group, rng)
        with pytest.raises(ProtocolError):
            scheme.share1_of(device)

    def test_wrong_type_detected(self, scheme, small_group, rng):
        device = Device("P1", small_group, rng)
        device.secret.store(SK1_SLOT, "not a share")
        with pytest.raises(ProtocolError):
            scheme.share1_of(device)


class TestShareVerification:
    def test_healthy_shares_verify(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        assert scheme.verify_shares(generated.public_key, p1, p2, channel, rng)

    def test_verify_after_refresh(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        scheme.refresh_protocol(p1, p2, channel)
        assert scheme.verify_shares(generated.public_key, p1, p2, channel, rng)

    def test_mixed_generations_fail_verification(self, scheme, generated, rng):
        other = scheme.generate(random.Random(77))
        p1, p2, channel = fresh_devices(scheme, generated)
        p2.secret.store(SK2_SLOT, other.share2)
        assert not scheme.verify_shares(generated.public_key, p1, p2, channel, rng)

    def test_corrupt_share_fails_verification(self, scheme, generated, rng):
        p1, p2, channel = fresh_devices(scheme, generated)
        p1.secret.store(SK1_SLOT, "garbage")
        assert not scheme.verify_shares(generated.public_key, p1, p2, channel, rng)

    def test_wrong_public_key_fails_verification(self, scheme, generated, rng):
        other = scheme.generate(random.Random(88))
        p1, p2, channel = fresh_devices(scheme, generated)
        assert not scheme.verify_shares(other.public_key, p1, p2, channel, rng)
