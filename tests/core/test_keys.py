"""Unit tests for key/share/ciphertext value objects."""

import random

import pytest

from repro.core.keys import Ciphertext, PublicKey, Share1, Share2


class TestShare2:
    def test_reduction(self, small_group):
        p = small_group.p
        share = Share2((p + 1, 2 * p + 5), p)
        assert share.s == (1, 5)

    def test_fixed_width_encoding(self, small_group):
        p = small_group.p
        a = Share2((0, 1), p)
        b = Share2((p - 1, p - 2), p)
        assert a.size_bits() == b.size_bits() == 2 * small_group.scalar_bits()

    def test_equality(self, small_group):
        p = small_group.p
        assert Share2((1, 2), p) == Share2((1, 2), p)
        assert Share2((1, 2), p) != Share2((2, 1), p)


class TestShare1:
    def test_encoding_size(self, small_group, rng):
        elements = tuple(small_group.random_g(rng) for _ in range(3))
        phi = small_group.random_g(rng)
        share = Share1(a=elements, phi=phi)
        assert share.size_bits() == 4 * small_group.g_element_bits()

    def test_distinct_shares_distinct_encodings(self, small_group, rng):
        a = Share1(a=(small_group.random_g(rng),), phi=small_group.random_g(rng))
        b = Share1(a=(small_group.random_g(rng),), phi=small_group.random_g(rng))
        assert a.to_bits() != b.to_bits()


class TestCiphertext:
    def test_two_group_elements(self, small_group, rng):
        ct = Ciphertext(a=small_group.random_g(rng), b=small_group.random_gt(rng))
        assert ct.size_group_elements() == 2

    def test_encoding_size(self, small_group, rng):
        ct = Ciphertext(a=small_group.random_g(rng), b=small_group.random_gt(rng))
        assert len(ct.to_bits()) == (
            small_group.g_element_bits() + small_group.gt_element_bits()
        )


class TestPublicKey:
    def test_group_accessor(self, small_params, rng):
        z = small_params.group.random_gt(rng)
        pk = PublicKey(small_params, z)
        assert pk.group is small_params.group
        assert pk.to_bits() == z.to_bits()
