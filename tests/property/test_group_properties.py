"""Property-based tests: the pairing-group laws (hypothesis).

Uses the toy 16-bit group so each example costs microseconds.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.groups import preset_group

GROUP = preset_group(16)
P = GROUP.p

scalars = st.integers(min_value=0, max_value=P - 1)
seeds = st.integers(min_value=0, max_value=2**30)


def element(seed):
    return GROUP.random_g(random.Random(seed))


def gt_element(seed):
    return GROUP.random_gt(random.Random(seed))


COMMON = dict(max_examples=40, deadline=None)


class TestGroupLaws:
    @given(a=seeds, b=seeds)
    @settings(**COMMON)
    def test_commutativity(self, a, b):
        x, y = element(a), element(b)
        assert x * y == y * x

    @given(a=seeds, b=seeds, c=seeds)
    @settings(**COMMON)
    def test_associativity(self, a, b, c):
        x, y, z = element(a), element(b), element(c)
        assert (x * y) * z == x * (y * z)

    @given(a=seeds)
    @settings(**COMMON)
    def test_inverse(self, a):
        x = element(a)
        assert (x * x.inverse()).is_identity()

    @given(a=seeds, j=scalars, k=scalars)
    @settings(**COMMON)
    def test_exponent_addition(self, a, j, k):
        x = element(a)
        assert (x ** j) * (x ** k) == x ** ((j + k) % P)

    @given(a=seeds, j=scalars, k=scalars)
    @settings(**COMMON)
    def test_exponent_multiplication(self, a, j, k):
        x = element(a)
        assert (x ** j) ** k == x ** (j * k % P)

    @given(a=seeds)
    @settings(**COMMON)
    def test_order_divides_p(self, a):
        assert (element(a) ** P).is_identity()


class TestPairingProperties:
    @given(a=seeds, b=seeds, j=scalars)
    @settings(max_examples=20, deadline=None)
    def test_bilinearity_left(self, a, b, j):
        x, y = element(a), element(b)
        assert GROUP.pair(x ** j, y) == GROUP.pair(x, y) ** j

    @given(a=seeds, b=seeds, j=scalars)
    @settings(max_examples=20, deadline=None)
    def test_bilinearity_right(self, a, b, j):
        x, y = element(a), element(b)
        assert GROUP.pair(x, y ** j) == GROUP.pair(x, y) ** j

    @given(a=seeds, b=seeds)
    @settings(max_examples=20, deadline=None)
    def test_symmetry(self, a, b):
        x, y = element(a), element(b)
        assert GROUP.pair(x, y) == GROUP.pair(y, x)

    @given(a=seeds, b=seeds, c=seeds)
    @settings(max_examples=15, deadline=None)
    def test_left_multiplicativity(self, a, b, c):
        x1, x2, y = element(a), element(b), element(c)
        assert GROUP.pair(x1 * x2, y) == GROUP.pair(x1, y) * GROUP.pair(x2, y)


class TestGTLaws:
    @given(a=seeds, b=seeds)
    @settings(**COMMON)
    def test_commutativity(self, a, b):
        x, y = gt_element(a), gt_element(b)
        assert x * y == y * x

    @given(a=seeds)
    @settings(**COMMON)
    def test_inverse(self, a):
        x = gt_element(a)
        assert (x / x).is_identity()

    @given(a=seeds, j=scalars, k=scalars)
    @settings(**COMMON)
    def test_exponent_laws(self, a, j, k):
        x = gt_element(a)
        assert (x ** j) * (x ** k) == x ** ((j + k) % P)


class TestJacobianProperty:
    @given(a=seeds, k=scalars)
    @settings(max_examples=40, deadline=None)
    def test_jacobian_matches_affine(self, a, k):
        from repro.groups import curve

        point = element(a).point
        params = GROUP.params
        assert curve.scalar_mul(point, k, params.q) == \
            curve.scalar_mul_affine(point, k, params.q)
