"""Property-based tests: linear algebra over Z_p (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math import linalg

P = 97

matrices = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**30),
).map(lambda dims: linalg.random_matrix(dims[0], dims[1], P, random.Random(dims[2])))

COMMON = dict(max_examples=40, deadline=None)


class TestLinalgProperties:
    @given(a=matrices)
    @settings(**COMMON)
    def test_rank_bounded_by_dims(self, a):
        assert 0 <= linalg.rank(a, P) <= min(len(a), len(a[0]))

    @given(a=matrices)
    @settings(**COMMON)
    def test_rank_transpose_invariant(self, a):
        assert linalg.rank(a, P) == linalg.rank(linalg.transpose(a), P)

    @given(a=matrices)
    @settings(**COMMON)
    def test_rank_nullity(self, a):
        cols = len(a[0])
        assert linalg.rank(a, P) + len(linalg.kernel_basis(a, P)) == cols

    @given(a=matrices, seed=st.integers(min_value=0, max_value=2**30))
    @settings(**COMMON)
    def test_solve_consistent_systems(self, a, seed):
        rng = random.Random(seed)
        x = linalg.random_vector(len(a[0]), P, rng)
        b = linalg.mat_vec(a, x, P)
        solution = linalg.solve(a, b, P)
        assert linalg.mat_vec(a, solution, P) == b

    @given(a=matrices, seed=st.integers(min_value=0, max_value=2**30))
    @settings(**COMMON)
    def test_solve_uniform_consistent(self, a, seed):
        rng = random.Random(seed)
        x = linalg.random_vector(len(a[0]), P, rng)
        b = linalg.mat_vec(a, x, P)
        solution = linalg.solve_uniform(a, b, P, rng)
        assert linalg.mat_vec(a, solution, P) == b

    @given(a=matrices)
    @settings(**COMMON)
    def test_kernel_vectors_in_kernel(self, a):
        for v in linalg.kernel_basis(a, P):
            assert all(x == 0 for x in linalg.mat_vec(a, v, P))

    @given(seed=st.integers(min_value=0, max_value=2**30),
           n=st.integers(min_value=1, max_value=4))
    @settings(**COMMON)
    def test_inverse_roundtrip_when_invertible(self, seed, n):
        rng = random.Random(seed)
        a = linalg.random_matrix(n, n, P, rng)
        if linalg.rank(a, P) < n:
            return
        assert linalg.mat_mul(a, linalg.invert(a, P), P) == linalg.identity(n, P)

    @given(seed=st.integers(min_value=0, max_value=2**30),
           rank=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_random_matrix_of_rank(self, seed, rank):
        rng = random.Random(seed)
        a = linalg.random_matrix_of_rank(3, 4, rank, P, rng)
        assert linalg.rank(a, P) == rank
