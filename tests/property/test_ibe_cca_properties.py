"""Property-based tests: DIBE and CCA2 end-to-end invariants (toy group)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cca.dlr_cca import DLRCCA2
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.ibe.dlr_ibe import DLRIBE
from repro.protocol.channel import Channel
from repro.protocol.device import Device

GROUP = preset_group(16)
PARAMS = DLRParams(group=GROUP, lam=16)
N_ID = 4

seeds = st.integers(min_value=0, max_value=2**30)
identities = st.text(
    alphabet="abcdefghij0123456789", min_size=1, max_size=12
)


def dibe_setting(seed):
    scheme = DLRIBE(PARAMS, n_id=N_ID)
    rng = random.Random(seed)
    setup = scheme.setup(rng)
    p1 = Device("P1", GROUP, rng)
    p2 = Device("P2", GROUP, rng)
    scheme.install(p1, p2, setup.share1, setup.share2)
    return scheme, setup, p1, p2, Channel(), rng


class TestDIBEProperties:
    @given(seed=seeds, identity=identities)
    @settings(max_examples=8, deadline=None)
    def test_extract_decrypt_roundtrip(self, seed, identity):
        scheme, setup, p1, p2, channel, rng = dibe_setting(seed)
        scheme.extract_protocol(setup.public_params, p1, p2, channel, identity)
        message = GROUP.random_gt(rng)
        ciphertext = scheme.encrypt_to(setup.public_params, identity, message, rng)
        assert scheme.decrypt_protocol_id(p1, p2, channel, identity, ciphertext) == message

    @given(seed=seeds, identity=identities)
    @settings(max_examples=6, deadline=None)
    def test_refresh_preserves_identity_decryption(self, seed, identity):
        scheme, setup, p1, p2, channel, rng = dibe_setting(seed)
        scheme.extract_protocol(setup.public_params, p1, p2, channel, identity)
        message = GROUP.random_gt(rng)
        ciphertext = scheme.encrypt_to(setup.public_params, identity, message, rng)
        scheme.refresh_identity_protocol(setup.public_params, p1, p2, channel, identity)
        scheme.refresh_protocol(p1, p2, channel)
        assert scheme.decrypt_protocol_id(p1, p2, channel, identity, ciphertext) == message

    @given(seed=seeds, id_a=identities, id_b=identities)
    @settings(max_examples=6, deadline=None)
    def test_identity_separation(self, seed, id_a, id_b):
        """Different identities' shares never open each other's mail
        (unless the hashed identities collide, which we exclude)."""
        from repro.ibe.identity_hash import hash_identity

        if hash_identity(id_a, N_ID) == hash_identity(id_b, N_ID):
            return
        scheme, setup, p1, p2, channel, rng = dibe_setting(seed)
        scheme.extract_protocol(setup.public_params, p1, p2, channel, id_a)
        scheme.extract_protocol(setup.public_params, p1, p2, channel, id_b)
        message = GROUP.random_gt(rng)
        ciphertext = scheme.encrypt_to(setup.public_params, id_a, message, rng)
        assert scheme.decrypt_protocol_id(p1, p2, channel, id_b, ciphertext) != message


class TestCCA2Properties:
    @given(seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, seed):
        scheme = DLRCCA2(PARAMS, n_id=N_ID)
        rng = random.Random(seed)
        setup = scheme.setup(rng)
        p1 = Device("P1", GROUP, rng)
        p2 = Device("P2", GROUP, rng)
        scheme.install(p1, p2, setup.share1, setup.share2)
        message = GROUP.random_gt(rng)
        ciphertext = scheme.encrypt(setup, message, rng)
        assert scheme.decrypt_protocol(setup, p1, p2, Channel(), ciphertext) == message

    @given(seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_any_body_tampering_rejected(self, seed):
        from repro.cca.dlr_cca import CCACiphertext
        from repro.errors import DecryptionError
        from repro.ibe.boneh_boyen import IBECiphertext

        scheme = DLRCCA2(PARAMS, n_id=N_ID)
        rng = random.Random(seed)
        setup = scheme.setup(rng)
        p1 = Device("P1", GROUP, rng)
        p2 = Device("P2", GROUP, rng)
        scheme.install(p1, p2, setup.share1, setup.share2)
        ciphertext = scheme.encrypt(setup, GROUP.random_gt(rng), rng)
        mauled = CCACiphertext(
            ciphertext.verify_key,
            IBECiphertext(
                ciphertext.inner.a,
                ciphertext.inner.c,
                ciphertext.inner.b * GROUP.random_gt(rng),
            ),
            ciphertext.signature,
        )
        try:
            scheme.decrypt_protocol(setup, p1, p2, Channel(), mauled)
            raise AssertionError("tampered ciphertext accepted")
        except DecryptionError:
            pass
