"""Property-based tests: DLR scheme invariants end to end (hypothesis).

All on the 16-bit toy preset so every example is cheap.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlr import DLR
from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.protocol.channel import Channel
from repro.protocol.device import Device

GROUP = preset_group(16)
PARAMS = DLRParams(group=GROUP, lam=16)
SCHEME = DLR(PARAMS)
OPTIMAL = OptimalDLR(PARAMS)

seeds = st.integers(min_value=0, max_value=2**30)


def setup_devices(scheme, seed):
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1 = Device("P1", GROUP, rng)
    p2 = Device("P2", GROUP, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    return generation, p1, p2, rng


class TestDLRProperties:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_decrypt_of_encrypt_is_identity(self, seed):
        generation, p1, p2, rng = setup_devices(SCHEME, seed)
        message = GROUP.random_gt(rng)
        ciphertext = SCHEME.encrypt(generation.public_key, message, rng)
        assert SCHEME.decrypt_protocol(p1, p2, Channel(), ciphertext) == message

    @given(seed=seeds, refreshes=st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_decryption_invariant_under_refresh(self, seed, refreshes):
        generation, p1, p2, rng = setup_devices(SCHEME, seed)
        message = GROUP.random_gt(rng)
        ciphertext = SCHEME.encrypt(generation.public_key, message, rng)
        channel = Channel()
        for _ in range(refreshes):
            SCHEME.refresh_protocol(p1, p2, channel)
        assert SCHEME.decrypt_protocol(p1, p2, channel, ciphertext) == message

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_protocol_agrees_with_reference(self, seed):
        generation, p1, p2, rng = setup_devices(SCHEME, seed)
        ciphertext = SCHEME.encrypt(generation.public_key, GROUP.random_gt(rng), rng)
        assert SCHEME.decrypt_protocol(p1, p2, Channel(), ciphertext) == \
            SCHEME.reference_decrypt(generation.share1, generation.share2, ciphertext)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_optimal_variant_agrees_with_basic(self, seed):
        generation, p1, p2, rng = setup_devices(SCHEME, seed)
        o1 = Device("P1", GROUP, rng)
        o2 = Device("P2", GROUP, rng)
        OPTIMAL.install(o1, o2, generation.share1, generation.share2)
        message = GROUP.random_gt(rng)
        ciphertext = SCHEME.encrypt(generation.public_key, message, rng)
        assert SCHEME.decrypt_protocol(p1, p2, Channel(), ciphertext) == \
            OPTIMAL.decrypt_protocol(o1, o2, Channel(), ciphertext)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_msk_invariant_under_refresh(self, seed):
        generation, p1, p2, rng = setup_devices(SCHEME, seed)
        channel = Channel()

        def msk():
            share1, share2 = SCHEME.share1_of(p1), SCHEME.share2_of(p2)
            value = share1.phi
            for a_i, s_i in zip(share1.a, share2.s):
                value = value / (a_i ** s_i)
            return value

        before = msk()
        SCHEME.refresh_protocol(p1, p2, channel)
        assert msk() == before

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_homomorphic_rerandomization_of_ciphertexts(self, seed):
        """(A g^t', B z^t') decrypts to the same plaintext -- the storage
        refresh relies on this."""
        generation, p1, p2, rng = setup_devices(SCHEME, seed)
        message = GROUP.random_gt(rng)
        ciphertext = SCHEME.encrypt(generation.public_key, message, rng)
        t_prime = GROUP.random_scalar(rng)
        from repro.core.keys import Ciphertext

        rerandomized = Ciphertext(
            a=ciphertext.a * (GROUP.g ** t_prime),
            b=ciphertext.b * (generation.public_key.z ** t_prime),
        )
        assert SCHEME.decrypt_protocol(p1, p2, Channel(), rerandomized) == message
