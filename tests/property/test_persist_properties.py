"""Property-based tests: persistence and encoding roundtrips."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlr import DLR
from repro.core.keys import Share2
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.groups.encoding import decode_g1, decode_gt
from repro.utils import persist

GROUP = preset_group(16)
PARAMS = DLRParams(group=GROUP, lam=16)
SCHEME = DLR(PARAMS)

seeds = st.integers(min_value=0, max_value=2**30)

COMMON = dict(max_examples=20, deadline=None)


class TestEncodingProperties:
    @given(seed=seeds)
    @settings(**COMMON)
    def test_g1_encode_decode_identity(self, seed):
        element = GROUP.random_g(random.Random(seed))
        assert decode_g1(GROUP, element.to_bits()) == element

    @given(seed=seeds)
    @settings(**COMMON)
    def test_gt_encode_decode_identity(self, seed):
        element = GROUP.random_gt(random.Random(seed))
        assert decode_gt(GROUP, element.to_bits()) == element

    @given(seed=seeds, k=st.integers(min_value=0, max_value=2**16))
    @settings(**COMMON)
    def test_powers_roundtrip(self, seed, k):
        element = GROUP.random_g(random.Random(seed)) ** k
        assert decode_g1(GROUP, element.to_bits()) == element


class TestPersistProperties:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_share2_roundtrip(self, seed):
        rng = random.Random(seed)
        share = Share2(
            tuple(rng.randrange(GROUP.p) for _ in range(PARAMS.ell)), GROUP.p
        )
        restored = persist.loads(persist.dumps("share2", share), GROUP)
        assert restored == share

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_ciphertext_roundtrip_preserves_decryption(self, seed):
        rng = random.Random(seed)
        generation = SCHEME.generate(rng)
        message = GROUP.random_gt(rng)
        ciphertext = SCHEME.encrypt(generation.public_key, message, rng)
        restored = persist.loads(persist.dumps("ciphertext", ciphertext), GROUP)
        assert SCHEME.reference_decrypt(
            generation.share1, generation.share2, restored
        ) == message

    @given(seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_share1_roundtrip_preserves_msk(self, seed):
        rng = random.Random(seed)
        generation = SCHEME.generate(rng)
        restored = persist.loads(
            persist.dumps("share1", generation.share1), GROUP
        )
        msk_original = generation.share1.phi
        msk_restored = restored.phi
        for (a, s), ra in zip(
            zip(generation.share1.a, generation.share2.s), restored.a
        ):
            msk_original = msk_original / (a ** s)
            msk_restored = msk_restored / (ra ** s)
        assert msk_original == msk_restored


class TestOTSProperties:
    @given(seed=seeds, message=st.binary(max_size=128))
    @settings(max_examples=10, deadline=None)
    def test_sign_verify_roundtrip(self, seed, message):
        from repro.cca.ots import LamportOTS

        ots = LamportOTS()
        keypair = ots.keygen(random.Random(seed))
        signature = ots.sign(keypair, message)
        assert ots.verify(keypair.verify_key, message, signature)

    @given(seed=seeds, message=st.binary(min_size=1, max_size=64),
           other=st.binary(min_size=1, max_size=64))
    @settings(max_examples=10, deadline=None)
    def test_wrong_message_rejected(self, seed, message, other):
        from repro.cca.ots import LamportOTS

        if message == other:
            return
        ots = LamportOTS()
        keypair = ots.keygen(random.Random(seed))
        signature = ots.sign(keypair, message)
        assert not ots.verify(keypair.verify_key, other, signature)


class TestPSSProperties:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_share_reconstruct_identity(self, seed):
        from repro.core.pss import PSS

        rng = random.Random(seed)
        pss = PSS(GROUP, 4)
        secret = GROUP.random_g(rng)
        share1, share2 = pss.share(secret, rng)
        assert pss.reconstruct(share1, share2) == secret

    @given(seed=seeds, s=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_homomorphic_sharing(self, seed, s):
        """Sharing respects the group structure: Enc(m)^s shares m^s
        under scaled... verified via HPSKE scalar homomorphism on the
        PSS-shaped scheme."""
        from repro.core.hpske import HPSKE

        rng = random.Random(seed)
        scheme = HPSKE(GROUP, 4, "G")
        key = scheme.keygen(rng)
        m = GROUP.random_g(rng)
        assert scheme.decrypt(key, scheme.encrypt(key, m, rng) ** s) == m ** s
