"""Property-based tests: HPSKE homomorphisms and scheme invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hpske import HPSKE
from repro.groups import preset_group

GROUP = preset_group(16)
P = GROUP.p
KAPPA = 2
SCHEME_G = HPSKE(GROUP, KAPPA, "G")
SCHEME_GT = HPSKE(GROUP, KAPPA, "GT")

seeds = st.integers(min_value=0, max_value=2**30)
scalars = st.integers(min_value=0, max_value=P - 1)

COMMON = dict(max_examples=25, deadline=None)


class TestHPSKEProperties:
    @given(seed=seeds)
    @settings(**COMMON)
    def test_roundtrip(self, seed):
        rng = random.Random(seed)
        key = SCHEME_G.keygen(rng)
        message = GROUP.random_g(rng)
        assert SCHEME_G.decrypt(key, SCHEME_G.encrypt(key, message, rng)) == message

    @given(seed=seeds)
    @settings(**COMMON)
    def test_product_homomorphism(self, seed):
        rng = random.Random(seed)
        key = SCHEME_G.keygen(rng)
        m0, m1 = GROUP.random_g(rng), GROUP.random_g(rng)
        c0 = SCHEME_G.encrypt(key, m0, rng)
        c1 = SCHEME_G.encrypt(key, m1, rng)
        assert SCHEME_G.decrypt(key, c0 * c1) == m0 * m1

    @given(seed=seeds, s=scalars)
    @settings(**COMMON)
    def test_scalar_homomorphism(self, seed, s):
        rng = random.Random(seed)
        key = SCHEME_G.keygen(rng)
        m = GROUP.random_g(rng)
        assert SCHEME_G.decrypt(key, SCHEME_G.encrypt(key, m, rng) ** s) == m ** s

    @given(seed=seeds)
    @settings(**COMMON)
    def test_pairing_transport(self, seed):
        rng = random.Random(seed)
        key = SCHEME_G.keygen(rng)
        m = GROUP.random_g(rng)
        a_point = GROUP.random_g(rng)
        d = SCHEME_G.encrypt(key, m, rng).pair_with(a_point)
        assert SCHEME_GT.decrypt(key, d) == GROUP.pair(a_point, m)

    @given(seed=seeds, s0=scalars, s1=scalars)
    @settings(**COMMON)
    def test_combined_homomorphism(self, seed, s0, s1):
        """Dec(c0^{s0} c1^{s1} / c2) = m0^{s0} m1^{s1} / m2: the combined
        product/power/quotient shape every protocol message uses."""
        rng = random.Random(seed)
        key = SCHEME_G.keygen(rng)
        messages = [GROUP.random_g(rng) for _ in range(3)]
        cts = [SCHEME_G.encrypt(key, m, rng) for m in messages]
        combined = (cts[0] ** s0) * (cts[1] ** s1) / cts[2]
        expected = (messages[0] ** s0) * (messages[1] ** s1) / messages[2]
        assert SCHEME_G.decrypt(key, combined) == expected
