"""Property-based tests: field axioms of F_q and F_{q^2} (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.fields import Fq, Fq2

Q = 1019  # 1019 = 3 mod 4, prime

fq_elements = st.integers(min_value=0, max_value=Q - 1).map(lambda v: Fq(v, Q))
fq2_elements = st.tuples(
    st.integers(min_value=0, max_value=Q - 1),
    st.integers(min_value=0, max_value=Q - 1),
).map(lambda ab: Fq2(ab[0], ab[1], Q))

COMMON = dict(max_examples=50, deadline=None)


class TestFqAxioms:
    @given(a=fq_elements, b=fq_elements)
    @settings(**COMMON)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(a=fq_elements, b=fq_elements, c=fq_elements)
    @settings(**COMMON)
    def test_multiplication_associative(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(a=fq_elements, b=fq_elements, c=fq_elements)
    @settings(**COMMON)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(a=fq_elements)
    @settings(**COMMON)
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero()

    @given(a=fq_elements)
    @settings(**COMMON)
    def test_multiplicative_inverse(self, a):
        if not a.is_zero():
            assert (a * a.inverse()).value == 1

    @given(a=fq_elements)
    @settings(**COMMON)
    def test_fermat(self, a):
        assert (a ** Q) == a

    @given(a=fq_elements)
    @settings(**COMMON)
    def test_sqrt_of_square(self, a):
        square = a * a
        if square.is_zero():
            return
        root = square.sqrt()
        assert root * root == square


class TestFq2Axioms:
    @given(x=fq2_elements, y=fq2_elements)
    @settings(**COMMON)
    def test_multiplication_commutative(self, x, y):
        assert x * y == y * x

    @given(x=fq2_elements, y=fq2_elements, z=fq2_elements)
    @settings(**COMMON)
    def test_multiplication_associative(self, x, y, z):
        assert (x * y) * z == x * (y * z)

    @given(x=fq2_elements, y=fq2_elements, z=fq2_elements)
    @settings(**COMMON)
    def test_distributivity(self, x, y, z):
        assert x * (y + z) == x * y + x * z

    @given(x=fq2_elements)
    @settings(**COMMON)
    def test_square_matches_self_mul(self, x):
        assert x.square() == x * x

    @given(x=fq2_elements)
    @settings(**COMMON)
    def test_inverse(self, x):
        if not x.is_zero():
            assert (x * x.inverse()).is_one()

    @given(x=fq2_elements, y=fq2_elements)
    @settings(**COMMON)
    def test_norm_multiplicative(self, x, y):
        assert (x * y).norm() == x.norm() * y.norm() % Q

    @given(x=fq2_elements)
    @settings(**COMMON)
    def test_conjugation_is_automorphism(self, x):
        assert (x * x.conjugate()).b == 0  # norm is in the base field

    @given(x=fq2_elements, k=st.integers(min_value=0, max_value=200))
    @settings(**COMMON)
    def test_pow_matches_repeated_mul(self, x, k):
        if k > 8:
            k %= 8
        expected = Fq2.one(Q)
        for _ in range(k):
            expected = expected * x
        assert x ** k == expected
