"""Property-based tests: BitString invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import BitString, concat_all

bitstrings = st.builds(
    lambda bits: BitString.from_bits(bits),
    st.lists(st.integers(min_value=0, max_value=1), max_size=64),
)

COMMON = dict(max_examples=60, deadline=None)


class TestBitStringProperties:
    @given(b=bitstrings)
    @settings(**COMMON)
    def test_roundtrip_through_bits(self, b):
        assert BitString.from_bits(list(b)) == b

    @given(a=bitstrings, b=bitstrings)
    @settings(**COMMON)
    def test_concat_length(self, a, b):
        assert len(a + b) == len(a) + len(b)

    @given(a=bitstrings, b=bitstrings)
    @settings(**COMMON)
    def test_concat_content(self, a, b):
        assert list(a + b) == list(a) + list(b)

    @given(a=bitstrings, b=bitstrings, c=bitstrings)
    @settings(**COMMON)
    def test_concat_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(b=bitstrings)
    @settings(**COMMON)
    def test_xor_self_is_zero(self, b):
        assert b.xor(b).hamming_weight() == 0

    @given(a=bitstrings)
    @settings(**COMMON)
    def test_xor_identity(self, a):
        zero = BitString(0, len(a))
        assert a.xor(zero) == a

    @given(b=bitstrings)
    @settings(**COMMON)
    def test_hamming_weight_counts_ones(self, b):
        assert b.hamming_weight() == sum(b)

    @given(b=bitstrings, cut=st.integers(min_value=0, max_value=64))
    @settings(**COMMON)
    def test_slicing_partition(self, b, cut):
        cut = min(cut, len(b))
        left, right = b[:cut], b[cut:]
        assert left + right == b

    @given(b=bitstrings)
    @settings(**COMMON)
    def test_bytes_roundtrip_preserves_value(self, b):
        restored = BitString.from_bytes(b.to_bytes())
        # to_bytes pads to a byte boundary; the value survives.
        assert int(restored) == int(b)

    @given(pieces=st.lists(bitstrings, max_size=8))
    @settings(**COMMON)
    def test_concat_all_matches_fold(self, pieces):
        folded = BitString.empty()
        for piece in pieces:
            folded = folded + piece
        assert concat_all(pieces) == folded
