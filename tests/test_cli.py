"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def keydir(tmp_path):
    out = tmp_path / "keys"
    assert main(["keygen", "-n", "32", "--lam", "32", "--seed", "1",
                 "--out-dir", str(out)]) == 0
    return out


class TestKeygen:
    def test_files_created(self, keydir):
        for name in ("public_key.json", "share1.json", "share2.json"):
            assert (keydir / name).exists()

    def test_public_key_parses(self, keydir):
        envelope = json.loads((keydir / "public_key.json").read_text())
        assert envelope["kind"] == "public_key"
        assert envelope["data"]["params"]["lam"] == 32

    def test_deterministic_with_seed(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        main(["keygen", "-n", "32", "--lam", "32", "--seed", "7", "--out-dir", str(a)])
        main(["keygen", "-n", "32", "--lam", "32", "--seed", "7", "--out-dir", str(b)])
        assert (a / "public_key.json").read_text() == (b / "public_key.json").read_text()


class TestEncryptDecrypt:
    def test_roundtrip(self, keydir, tmp_path, capsys):
        pk = str(keydir / "public_key.json")
        assert main(["random-message", "--pk", pk, "--seed", "2"]) == 0
        message_hex = capsys.readouterr().out.strip()

        ct = tmp_path / "ct.json"
        assert main(["encrypt", "--pk", pk, "--message", message_hex,
                     "--out", str(ct), "--seed", "3"]) == 0
        capsys.readouterr()

        assert main(["decrypt", "--pk", pk,
                     "--share1", str(keydir / "share1.json"),
                     "--share2", str(keydir / "share2.json"),
                     "--ciphertext", str(ct), "--seed", "4"]) == 0
        assert capsys.readouterr().out.strip() == message_hex

    def test_refresh_then_decrypt(self, keydir, tmp_path, capsys):
        pk = str(keydir / "public_key.json")
        main(["random-message", "--pk", pk, "--seed", "5"])
        message_hex = capsys.readouterr().out.strip()
        ct = tmp_path / "ct.json"
        main(["encrypt", "--pk", pk, "--message", message_hex, "--out", str(ct)])
        capsys.readouterr()

        share1_before = (keydir / "share1.json").read_text()
        assert main(["refresh", "--pk", pk,
                     "--share1", str(keydir / "share1.json"),
                     "--share2", str(keydir / "share2.json"),
                     "--in-place"]) == 0
        capsys.readouterr()
        assert (keydir / "share1.json").read_text() != share1_before

        main(["decrypt", "--pk", pk,
              "--share1", str(keydir / "share1.json"),
              "--share2", str(keydir / "share2.json"),
              "--ciphertext", str(ct)])
        assert capsys.readouterr().out.strip() == message_hex

    def test_refresh_to_new_files(self, keydir, capsys):
        pk = str(keydir / "public_key.json")
        assert main(["refresh", "--pk", pk,
                     "--share1", str(keydir / "share1.json"),
                     "--share2", str(keydir / "share2.json")]) == 0
        capsys.readouterr()
        assert (keydir / "share1.json.refreshed").exists()
        assert (keydir / "share2.json.refreshed").exists()


class TestObservability:
    @pytest.fixture()
    def supervised(self, keydir, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        log = tmp_path / "session.json"
        assert main(["supervise",
                     "--pk", str(keydir / "public_key.json"),
                     "--share1", str(keydir / "share1.json"),
                     "--share2", str(keydir / "share2.json"),
                     "--periods", "2", "--seed", "9",
                     "--trace", str(trace), "--log", str(log),
                     "--budget"]) == 0
        out = capsys.readouterr().out
        return trace, log, out

    def test_supervise_writes_a_valid_trace(self, supervised):
        from repro.telemetry import validate_trace_file

        trace, _, out = supervised
        assert f"wrote {trace}" in out
        spans = validate_trace_file(trace)
        assert {"period", "attempt", "step.send"} <= {s["name"] for s in spans}

    def test_supervise_prints_the_budget_dashboard(self, supervised):
        _, _, out = supervised
        assert "P1 (b1)" in out and "P2 (b2)" in out

    def test_trace_subcommand_digests_the_file(self, supervised, capsys):
        trace, _, _ = supervised
        assert main(["trace", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "hottest" in out and "step.send" in out

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"record": "span"}\n')
        assert main(["trace", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_metrics_subcommand_renders_period_snapshots(self, supervised, capsys):
        _, log, _ = supervised
        assert main(["metrics", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "period 0" in out and "period 1" in out
        assert "dec.d" in out and "ref.f" in out
        assert "P1 (b1)" in out  # embedded budget rows

    def test_metrics_subcommand_json_mode(self, supervised, capsys):
        _, log, _ = supervised
        assert main(["metrics", "--log", str(log), "--json"]) == 0
        snapshots = json.loads(capsys.readouterr().out)
        assert len(snapshots) == 2
        assert all("bits_by_label" in snap for snap in snapshots)
        assert all(snap["budget"]["period"] == i for i, snap in enumerate(snapshots))


class TestInfo:
    def test_reports_parameters(self, keydir, capsys):
        assert main(["info", "--pk", str(keydir / "public_key.json")]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["security_parameter_n"] == 32
        assert info["lambda"] == 32
        assert info["kappa"] >= 2
        assert info["b2_bits_per_period"] == info["m2_bits"]
