"""Tests for the application facades (section 1.1 scenarios)."""

import random

import pytest

from repro.applications.messaging import DecryptionService, SharedKeySession
from repro.errors import ProtocolError


class TestSharedKeySession:
    @pytest.fixture()
    def session(self, small_params):
        return SharedKeySession(small_params, random.Random(1))

    def test_element_roundtrip(self, session, rng):
        message = session.group.random_gt(rng)
        assert session.decrypt(session.encrypt(message)) == message

    def test_bytes_roundtrip(self, session):
        payload = b"meet at the old mill at noon"
        encapsulation, masked = session.encrypt_bytes(payload)
        assert masked != payload
        assert session.decrypt_bytes(encapsulation, masked) == payload

    def test_third_party_can_encrypt(self, session, small_params, rng):
        """Anyone with pk encrypts; only the processor pair decrypts."""
        from repro.core.dlr import DLR

        outsider = DLR(small_params)
        message = session.group.random_gt(rng)
        ciphertext = outsider.encrypt(session.public_key, message, rng)
        assert session.decrypt(ciphertext) == message

    def test_rekey_preserves_old_traffic(self, session, rng):
        message = session.group.random_gt(rng)
        ciphertext = session.encrypt(message)
        for _ in range(3):
            session.rekey_period()
        assert session.decrypt(ciphertext) == message

    def test_rekey_changes_shares(self, session):
        before = session.scheme.share2_of(session.processor_b)
        session.rekey_period()
        assert session.scheme.share2_of(session.processor_b) != before

    def test_message_counter(self, session, rng):
        message = session.group.random_gt(rng)
        session.decrypt(session.encrypt(message))
        session.decrypt(session.encrypt(message))
        assert session.messages_exchanged == 2


class TestDecryptionService:
    def test_serves_and_refreshes_on_schedule(self, small_params, rng):
        service = DecryptionService(small_params, random.Random(2), refresh_every=2)
        from repro.core.dlr import DLR

        scheme = DLR(small_params)
        for i in range(4):
            message = service.group.random_gt(rng)
            ciphertext = scheme.encrypt(service.public_key, message, rng)
            assert service.decrypt(ciphertext) == message
        assert service.decryptions_served == 4
        assert service.refreshes_performed == 2
        assert len(service.period_records) == 2

    def test_refresh_every_1_runs_period_per_decryption(self, small_params, rng):
        service = DecryptionService(small_params, random.Random(3), refresh_every=1)
        message = service.group.random_gt(rng)
        from repro.core.dlr import DLR

        ciphertext = DLR(small_params).encrypt(service.public_key, message, rng)
        assert service.decrypt(ciphertext) == message
        assert service.refreshes_performed == 1

    def test_leakage_surface_is_paper_sized(self, small_params):
        """The optimal variant keeps P1's surface at m1 bits."""
        service = DecryptionService(small_params, random.Random(4))
        surface = service.leakage_surface_bits()
        assert surface["main_processor"] == small_params.sk_comm_bits()
        assert surface["auxiliary"] == small_params.sk2_bits()

    def test_basic_variant_supported(self, small_params, rng):
        service = DecryptionService(
            small_params, random.Random(5), refresh_every=3, optimal=False
        )
        from repro.core.dlr import DLR

        message = service.group.random_gt(rng)
        ciphertext = DLR(small_params).encrypt(service.public_key, message, rng)
        assert service.decrypt(ciphertext) == message

    def test_invalid_schedule_rejected(self, small_params):
        with pytest.raises(ProtocolError):
            DecryptionService(small_params, random.Random(6), refresh_every=0)

    def test_period_records_carry_snapshots(self, small_params, rng):
        service = DecryptionService(small_params, random.Random(7), refresh_every=1)
        from repro.core.dlr import DLR

        ciphertext = DLR(small_params).encrypt(
            service.public_key, service.group.random_gt(rng), rng
        )
        service.decrypt(ciphertext)
        record = service.period_records[0]
        assert record.snapshots[(1, "normal")].size_bits() == small_params.sk_comm_bits()
