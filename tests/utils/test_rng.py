"""Unit tests for RNG plumbing."""

import random

from repro.utils.rng import default_rng, fork_rng, seed_default_rng


class TestDefaultRng:
    def test_returns_random_instance(self):
        assert isinstance(default_rng(), random.Random)

    def test_reseeding_reproduces(self):
        seed_default_rng(123)
        a = default_rng().getrandbits(64)
        seed_default_rng(123)
        b = default_rng().getrandbits(64)
        assert a == b


class TestForkRng:
    def test_deterministic_from_parent(self):
        a = fork_rng(random.Random(1), "x").getrandbits(64)
        b = fork_rng(random.Random(1), "x").getrandbits(64)
        assert a == b

    def test_label_separates_streams(self):
        parent = random.Random(1)
        child_a = fork_rng(parent, "a")
        parent = random.Random(1)
        child_b = fork_rng(parent, "b")
        assert child_a.getrandbits(64) != child_b.getrandbits(64)

    def test_children_independent_of_parent_consumption(self):
        parent = random.Random(5)
        child = fork_rng(parent, "c")
        first = child.getrandbits(64)
        # Forking again from the same parent state yields a new stream.
        sibling = fork_rng(parent, "c")
        assert sibling.getrandbits(64) != first

    def test_none_parent_uses_default(self):
        child = fork_rng(None, "z")
        assert isinstance(child, random.Random)
