"""Tests for JSON persistence of key material and ciphertexts."""

import json
import random

import pytest

from repro.core.dlr import DLR
from repro.errors import ParameterError
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.utils import persist


@pytest.fixture(scope="module")
def material(small_params):
    scheme = DLR(small_params)
    generation = scheme.generate(random.Random(1))
    message = small_params.group.random_gt(random.Random(2))
    ciphertext = scheme.encrypt(generation.public_key, message, random.Random(3))
    return scheme, generation, message, ciphertext


class TestRoundtrips:
    def test_public_key_self_contained(self, material):
        scheme, generation, message, _ = material
        text = persist.dumps("public_key", generation.public_key)
        restored = persist.loads(text)  # no group needed
        assert restored.z == generation.public_key.z
        assert restored.params.lam == scheme.params.lam
        assert restored.params.group.p == scheme.group.p

    def test_restored_public_key_encrypts_decryptably(self, material):
        """A public key restored on another 'machine' (fresh group object)
        produces ciphertexts the original shares decrypt."""
        scheme, generation, message, _ = material
        restored_pk = persist.loads(persist.dumps("public_key", generation.public_key))
        fresh_scheme = DLR(restored_pk.params)
        ciphertext = fresh_scheme.encrypt(
            restored_pk, _transplant_gt(restored_pk.params.group, message), random.Random(4)
        )
        # Move the ciphertext back into the original group's world.
        moved = persist.loads(
            persist.dumps("ciphertext", ciphertext), scheme.group
        )
        plaintext = scheme.reference_decrypt(generation.share1, generation.share2, moved)
        assert plaintext == message

    def test_share1_roundtrip(self, material):
        scheme, generation, _, _ = material
        text = persist.dumps("share1", generation.share1)
        restored = persist.loads(text, scheme.group)
        assert restored == generation.share1

    def test_share2_roundtrip(self, material):
        scheme, generation, _, _ = material
        text = persist.dumps("share2", generation.share2)
        restored = persist.loads(text, scheme.group)
        assert restored == generation.share2

    def test_ciphertext_roundtrip(self, material):
        scheme, generation, message, ciphertext = material
        restored = persist.loads(
            persist.dumps("ciphertext", ciphertext), scheme.group
        )
        assert restored == ciphertext
        assert scheme.reference_decrypt(generation.share1, generation.share2, restored) == message

    def test_restored_shares_run_protocols(self, material):
        scheme, generation, message, ciphertext = material
        share1 = persist.loads(persist.dumps("share1", generation.share1), scheme.group)
        share2 = persist.loads(persist.dumps("share2", generation.share2), scheme.group)
        rng = random.Random(5)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, share1, share2)
        channel = Channel()
        assert scheme.decrypt_protocol(p1, p2, channel, ciphertext) == message
        scheme.refresh_protocol(p1, p2, channel)
        assert scheme.decrypt_protocol(p1, p2, channel, ciphertext) == message


class TestValidation:
    def test_unknown_kind_rejected(self, material):
        with pytest.raises(ParameterError):
            persist.dumps("master_key", object())

    def test_loads_unknown_kind_rejected(self, material):
        scheme, *_ = material
        with pytest.raises(ParameterError):
            persist.loads(json.dumps({"kind": "junk", "data": {}}), scheme.group)

    def test_share_needs_group(self, material):
        _, generation, _, _ = material
        text = persist.dumps("share2", generation.share2)
        with pytest.raises(ParameterError):
            persist.loads(text)

    def test_version_check(self, material):
        _, generation, _, _ = material
        envelope = json.loads(persist.dumps("public_key", generation.public_key))
        envelope["data"]["params"]["version"] = 99
        with pytest.raises(ParameterError):
            persist.loads(json.dumps(envelope))

    def test_corrupt_element_rejected(self, material):
        from repro.errors import GroupError

        scheme, generation, _, ciphertext = material
        envelope = json.loads(persist.dumps("ciphertext", ciphertext))
        # Flip the x coordinate to garbage.
        length, _, payload = envelope["data"]["a"].partition(":")
        corrupted = hex(int.from_bytes(bytes.fromhex(payload), "big") ^ 0b1100)[2:]
        envelope["data"]["a"] = f"{length}:{corrupted.zfill(len(payload))}"
        with pytest.raises(GroupError):
            persist.loads(json.dumps(envelope), scheme.group)


def _transplant_gt(group, element):
    """Re-create a GT element inside a different group object with the
    same parameters (simulating a second process)."""
    from repro.groups.encoding import decode_gt

    return decode_gt(group, element.to_bits())
