"""Unit tests for BitString."""

import pytest

from repro.errors import ParameterError
from repro.utils.bits import BitString, concat_all


class TestConstruction:
    def test_from_int(self):
        b = BitString.from_int(0b101, 3)
        assert len(b) == 3
        assert list(b) == [1, 0, 1]

    def test_leading_zeros_preserved(self):
        b = BitString.from_int(1, 8)
        assert list(b) == [0] * 7 + [1]

    def test_value_too_large(self):
        with pytest.raises(ParameterError):
            BitString(8, 3)

    def test_negative_value(self):
        with pytest.raises(ParameterError):
            BitString(-1, 4)

    def test_from_bits(self):
        assert BitString.from_bits([1, 1, 0]) == BitString(0b110, 3)

    def test_from_bits_invalid(self):
        with pytest.raises(ParameterError):
            BitString.from_bits([0, 2])

    def test_from_bytes_roundtrip(self):
        data = b"\x01\xff\x42"
        assert BitString.from_bytes(data).to_bytes() == data

    def test_empty(self):
        assert len(BitString.empty()) == 0


class TestAccess:
    def test_bit_indexing_msb_first(self):
        b = BitString(0b1001, 4)
        assert b.bit(0) == 1
        assert b.bit(1) == 0
        assert b.bit(3) == 1

    def test_getitem_negative(self):
        b = BitString(0b1001, 4)
        assert b[-1] == 1
        assert b[-2] == 0

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            BitString(0, 3).bit(3)

    def test_slice(self):
        b = BitString(0b110101, 6)
        piece = b[1:4]
        assert isinstance(piece, BitString)
        assert list(piece) == [1, 0, 1]

    def test_slice_with_step_rejected(self):
        with pytest.raises(ParameterError):
            BitString(0b1111, 4)[::2]

    def test_iteration(self):
        assert list(BitString(0b0110, 4)) == [0, 1, 1, 0]


class TestOps:
    def test_concat(self):
        a = BitString(0b10, 2)
        b = BitString(0b011, 3)
        assert a + b == BitString(0b10011, 5)

    def test_concat_all(self):
        pieces = [BitString(1, 1), BitString(0, 1), BitString(0b11, 2)]
        assert concat_all(pieces) == BitString(0b1011, 4)

    def test_concat_with_empty(self):
        a = BitString(0b101, 3)
        assert a + BitString.empty() == a
        assert BitString.empty() + a == a

    def test_xor(self):
        a = BitString(0b1100, 4)
        b = BitString(0b1010, 4)
        assert a.xor(b) == BitString(0b0110, 4)

    def test_xor_length_mismatch(self):
        with pytest.raises(ParameterError):
            BitString(1, 1).xor(BitString(1, 2))

    def test_hamming_weight(self):
        assert BitString(0b1011, 4).hamming_weight() == 3
        assert BitString(0, 16).hamming_weight() == 0

    def test_project(self):
        b = BitString(0b10110, 5)
        assert list(b.project([0, 2, 4])) == [1, 1, 0]

    def test_equality_includes_length(self):
        assert BitString(1, 1) != BitString(1, 2)

    def test_hashable(self):
        assert len({BitString(1, 1), BitString(1, 1), BitString(1, 2)}) == 2

    def test_int_conversion(self):
        assert int(BitString(0b1101, 4)) == 13
