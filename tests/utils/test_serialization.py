"""Unit tests for canonical encoding."""

import pytest

from repro.errors import ParameterError
from repro.utils.bits import BitString
from repro.utils.serialization import encode_any, encode_mod, encode_sequence, int_width


class TestIntWidth:
    def test_powers_of_two(self):
        assert int_width(2) == 1
        assert int_width(3) == 2
        assert int_width(256) == 8
        assert int_width(257) == 9

    def test_minimum_one(self):
        assert int_width(1) == 1


class TestEncodeMod:
    def test_fixed_width(self):
        p = 101
        for v in (0, 1, 50, 100):
            assert len(encode_mod(v, p)) == 7

    def test_reduction(self):
        assert encode_mod(105, 101) == encode_mod(4, 101)

    def test_distinct_values_distinct_encodings(self):
        p = 101
        encodings = {encode_mod(v, p) for v in range(p)}
        assert len(encodings) == p


class TestEncodeAny:
    def test_bitstring_passthrough(self):
        b = BitString(0b101, 3)
        assert encode_any(b) is b

    def test_bool(self):
        assert encode_any(True) == BitString(1, 1)
        assert encode_any(False) == BitString(0, 1)

    def test_int(self):
        encoded = encode_any(5)
        assert int(encoded) == 5

    def test_negative_int_raises(self):
        with pytest.raises(ParameterError):
            encode_any(-1)

    def test_nested_sequences(self):
        encoded = encode_any([BitString(1, 1), (BitString(0, 1), BitString(1, 1))])
        assert list(encoded) == [1, 0, 1]

    def test_bytes(self):
        assert encode_any(b"\xff") == BitString(0xFF, 8)

    def test_object_with_to_bits(self):
        class Custom:
            def to_bits(self):
                return BitString(0b11, 2)

        assert encode_any(Custom()) == BitString(0b11, 2)

    def test_unknown_type_raises(self):
        with pytest.raises(ParameterError):
            encode_any(3.14)

    def test_encode_sequence(self):
        out = encode_sequence([BitString(1, 1), BitString(1, 1)])
        assert out == BitString(0b11, 2)


class TestGroupElementEncodings:
    def test_g1_roundtrip_distinct(self, small_group, rng):
        elements = [small_group.random_g(rng) for _ in range(10)]
        encodings = {e.to_bits() for e in elements}
        assert len(encodings) == len(set(elements))

    def test_g1_fixed_width(self, small_group, rng):
        sizes = {len(small_group.random_g(rng).to_bits()) for _ in range(5)}
        assert sizes == {small_group.g_element_bits()}

    def test_gt_fixed_width(self, small_group, rng):
        sizes = {len(small_group.random_gt(rng).to_bits()) for _ in range(5)}
        assert sizes == {small_group.gt_element_bits()}

    def test_identity_encoding_distinct(self, small_group, rng):
        identity = small_group.g_identity()
        other = small_group.random_g(rng)
        assert identity.to_bits() != other.to_bits()
