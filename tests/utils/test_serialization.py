"""Unit tests for canonical encoding."""

import pytest

from repro.errors import ParameterError
from repro.utils.bits import BitString
from repro.utils.serialization import encode_any, encode_mod, encode_sequence, int_width


class TestIntWidth:
    def test_powers_of_two(self):
        assert int_width(2) == 1
        assert int_width(3) == 2
        assert int_width(256) == 8
        assert int_width(257) == 9

    def test_minimum_one(self):
        assert int_width(1) == 1


class TestEncodeMod:
    def test_fixed_width(self):
        p = 101
        for v in (0, 1, 50, 100):
            assert len(encode_mod(v, p)) == 7

    def test_reduction(self):
        assert encode_mod(105, 101) == encode_mod(4, 101)

    def test_distinct_values_distinct_encodings(self):
        p = 101
        encodings = {encode_mod(v, p) for v in range(p)}
        assert len(encodings) == p


class TestEncodeAny:
    def test_bitstring_passthrough(self):
        b = BitString(0b101, 3)
        assert encode_any(b) is b

    def test_bool(self):
        assert encode_any(True) == BitString(1, 1)
        assert encode_any(False) == BitString(0, 1)

    def test_int(self):
        encoded = encode_any(5)
        assert int(encoded) == 5

    def test_negative_int_raises(self):
        with pytest.raises(ParameterError):
            encode_any(-1)

    def test_nested_sequences(self):
        encoded = encode_any([BitString(1, 1), (BitString(0, 1), BitString(1, 1))])
        assert list(encoded) == [1, 0, 1]

    def test_bytes(self):
        assert encode_any(b"\xff") == BitString(0xFF, 8)

    def test_object_with_to_bits(self):
        class Custom:
            def to_bits(self):
                return BitString(0b11, 2)

        assert encode_any(Custom()) == BitString(0b11, 2)

    def test_unknown_type_raises(self):
        with pytest.raises(ParameterError):
            encode_any(3.14)

    def test_encode_sequence(self):
        out = encode_sequence([BitString(1, 1), BitString(1, 1)])
        assert out == BitString(0b11, 2)


class TestGroupElementEncodings:
    def test_g1_roundtrip_distinct(self, small_group, rng):
        elements = [small_group.random_g(rng) for _ in range(10)]
        encodings = {e.to_bits() for e in elements}
        assert len(encodings) == len(set(elements))

    def test_g1_fixed_width(self, small_group, rng):
        sizes = {len(small_group.random_g(rng).to_bits()) for _ in range(5)}
        assert sizes == {small_group.g_element_bits()}

    def test_gt_fixed_width(self, small_group, rng):
        sizes = {len(small_group.random_gt(rng).to_bits()) for _ in range(5)}
        assert sizes == {small_group.gt_element_bits()}

    def test_identity_encoding_distinct(self, small_group, rng):
        identity = small_group.g_identity()
        other = small_group.random_g(rng)
        assert identity.to_bits() != other.to_bits()


class TestWireCodec:
    """Round-trip property: every payload type the protocols put on the
    wire decodes back bit-exactly, into fresh objects."""

    def _codec(self, small_group):
        from repro.utils.serialization import WireCodec

        return WireCodec(small_group, check_subgroup=True)

    def roundtrip(self, codec, payload):
        wire = codec.encode(payload)
        assert isinstance(wire, bytes)
        decoded = codec.decode(wire)
        # Bit-exact: re-encoding the decoded value reproduces the wire
        # bytes, so nothing was lost or canonicalized differently.
        assert codec.encode(decoded) == wire
        return decoded

    def test_plain_values(self, small_group):
        codec = self._codec(small_group)
        for payload in (None, True, False, 0, 1, 2**70, "", "alice", b"", b"\x00\xff"):
            assert self.roundtrip(codec, payload) == payload

    def test_bitstrings_bit_exact(self, small_group):
        codec = self._codec(small_group)
        for value, width in ((0, 0), (1, 1), (0b101, 3), (0, 9), (0b10110111, 8)):
            payload = BitString(value, width)
            decoded = self.roundtrip(codec, payload)
            assert decoded == payload
            assert len(decoded) == width

    def test_group_elements_fresh_and_equal(self, small_group, rng):
        codec = self._codec(small_group)
        for sample in (small_group.random_g, small_group.random_gt):
            element = sample(rng)
            decoded = self.roundtrip(codec, element)
            assert decoded == element
            assert decoded is not element
            assert decoded.to_bits() == element.to_bits()

    def test_identity_elements(self, small_group):
        codec = self._codec(small_group)
        assert self.roundtrip(codec, small_group.g_identity()) == small_group.g_identity()
        assert self.roundtrip(codec, small_group.gt_identity()) == small_group.gt_identity()

    def test_scalars(self, small_group):
        from repro.protocol.device import _ScalarInMemory

        codec = self._codec(small_group)
        scalar = _ScalarInMemory(12345, small_group.p)
        decoded = self.roundtrip(codec, scalar)
        assert decoded == scalar
        assert decoded.to_bits() == scalar.to_bits()

    def test_hpske_ciphertexts_both_spaces(self, small_group, rng):
        import random as _random

        from repro.core.hpske import HPSKE

        codec = self._codec(small_group)
        for space, sample in (("G", small_group.random_g), ("GT", small_group.random_gt)):
            hpske = HPSKE(small_group, kappa=3, space=space)
            key = hpske.keygen(_random.Random(8))
            ct = hpske.encrypt(key, sample(rng), _random.Random(9))
            decoded = self.roundtrip(codec, ct)
            assert decoded.kappa == ct.kappa
            assert decoded.coins == ct.coins
            assert decoded.body == ct.body
            assert hpske.decrypt(key, decoded) == hpske.decrypt(key, ct)

    def test_nested_protocol_shaped_payload(self, small_group, rng):
        """The shape the schemes actually send: tuples of tuples of
        HPSKE ciphertexts, plus a trailing single ciphertext."""
        import random as _random

        from repro.core.hpske import HPSKE

        codec = self._codec(small_group)
        hpske = HPSKE(small_group, kappa=2, space="G")
        key = hpske.keygen(_random.Random(1))
        cts = [hpske.encrypt(key, small_group.random_g(rng), _random.Random(i)) for i in range(5)]
        payload = (((cts[0], cts[1]), (cts[2], cts[3])), cts[4])
        decoded = self.roundtrip(codec, payload)
        assert isinstance(decoded, tuple) and isinstance(decoded[0], tuple)
        assert decoded[0][1][0].body == cts[2].body

    def test_random_payload_property(self, small_group):
        """Property test: randomized nested payloads drawn from the full
        wire grammar round-trip bit-exactly."""
        import random as _random

        codec = self._codec(small_group)

        def build(rnd, depth):
            kinds = ["none", "bool", "int", "str", "bytes", "bits", "g", "gt", "scalar"]
            if depth > 0:
                kinds += ["tuple", "list"] * 2
            kind = rnd.choice(kinds)
            if kind == "none":
                return None
            if kind == "bool":
                return rnd.random() < 0.5
            if kind == "int":
                return rnd.randrange(0, 2**40)
            if kind == "str":
                return "".join(rnd.choice("abcXYZ.09 é") for _ in range(rnd.randrange(6)))
            if kind == "bytes":
                return bytes(rnd.randrange(256) for _ in range(rnd.randrange(6)))
            if kind == "bits":
                width = rnd.randrange(0, 24)
                return BitString(rnd.randrange(1 << width) if width else 0, width)
            if kind == "g":
                return small_group.random_g(rnd)
            if kind == "gt":
                return small_group.random_gt(rnd)
            if kind == "scalar":
                from repro.protocol.device import _ScalarInMemory

                return _ScalarInMemory(rnd.randrange(small_group.p), small_group.p)
            items = [build(rnd, depth - 1) for _ in range(rnd.randrange(4))]
            return tuple(items) if kind == "tuple" else items

        for seed in range(40):
            rnd = _random.Random(seed)
            payload = build(rnd, depth=3)
            wire = codec.encode(payload)
            assert codec.encode(codec.decode(wire)) == wire

    def test_unencodable_type_raises(self, small_group):
        from repro.errors import WireFormatError

        with pytest.raises(WireFormatError):
            self._codec(small_group).encode(3.14)

    def test_trailing_bytes_rejected(self, small_group):
        from repro.errors import WireFormatError

        codec = self._codec(small_group)
        with pytest.raises(WireFormatError):
            codec.decode(codec.encode(True) + b"\x00")

    def test_truncated_payload_rejected(self, small_group, rng):
        from repro.errors import WireFormatError

        codec = self._codec(small_group)
        wire = codec.encode(small_group.random_g(rng))
        with pytest.raises(WireFormatError):
            codec.decode(wire[:-1])

    def test_unknown_tag_rejected(self, small_group):
        from repro.errors import WireFormatError

        with pytest.raises(WireFormatError):
            self._codec(small_group).decode(b"\x7f")

    def test_group_elements_need_bound_group(self, small_group, rng):
        from repro.errors import WireFormatError
        from repro.utils.serialization import WireCodec

        wire = self._codec(small_group).encode(small_group.random_g(rng))
        with pytest.raises(WireFormatError):
            WireCodec(group=None).decode(wire)

    def test_sniff_group_finds_nested_elements(self, small_group, rng):
        from repro.utils.serialization import sniff_group

        element = small_group.random_gt(rng)
        assert sniff_group(((None, [element]),)) is small_group
        assert sniff_group([1, "x", None]) is None
