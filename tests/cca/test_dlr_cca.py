"""Tests for DLRCCA2: the BCHK transform and its rejection paths."""

import random

import pytest

from repro.cca.dlr_cca import CCACiphertext, DLRCCA2
from repro.cca.ots import Signature
from repro.errors import DecryptionError
from repro.ibe.boneh_boyen import IBECiphertext
from repro.protocol.channel import Channel
from repro.protocol.device import Device

N_ID = 4


@pytest.fixture()
def cca(small_params):
    return DLRCCA2(small_params, n_id=N_ID)


@pytest.fixture()
def setup(cca):
    return cca.setup(random.Random(1))


def fresh_devices(cca, setup, seed=2):
    rng = random.Random(seed)
    group = cca.params.group
    p1 = Device("P1", group, rng)
    p2 = Device("P2", group, rng)
    cca.install(p1, p2, setup.share1, setup.share2)
    return p1, p2, Channel()


class TestRoundtrip:
    def test_encrypt_decrypt(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        message = cca.params.group.random_gt(rng)
        ct = cca.encrypt(setup, message, rng)
        assert cca.decrypt_protocol(setup, p1, p2, channel, ct) == message

    def test_fresh_identity_per_encryption(self, cca, setup, rng):
        message = cca.params.group.random_gt(rng)
        a = cca.encrypt(setup, message, rng)
        b = cca.encrypt(setup, message, rng)
        assert a.identity() != b.identity()

    def test_identity_shares_erased_after_decryption(self, cca, setup, rng):
        from repro.ibe.dlr_ibe import _id_slot

        p1, p2, channel = fresh_devices(cca, setup)
        ct = cca.encrypt(setup, cca.params.group.random_gt(rng), rng)
        cca.decrypt_protocol(setup, p1, p2, channel, ct)
        assert not p1.secret.has(_id_slot(1, ct.identity()))
        assert not p2.secret.has(_id_slot(2, ct.identity()))

    def test_multiple_decryptions(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        group = cca.params.group
        for _ in range(3):
            message = group.random_gt(rng)
            ct = cca.encrypt(setup, message, rng)
            assert cca.decrypt_protocol(setup, p1, p2, channel, ct) == message

    def test_decryption_after_master_refresh(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        message = cca.params.group.random_gt(rng)
        ct = cca.encrypt(setup, message, rng)
        cca.ibe.refresh_protocol(p1, p2, channel)
        assert cca.decrypt_protocol(setup, p1, p2, channel, ct) == message


class TestRejection:
    """The CCA2 mauling defenses."""

    def test_tampered_body_rejected(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        group = cca.params.group
        ct = cca.encrypt(setup, group.random_gt(rng), rng)
        mauled_inner = IBECiphertext(ct.inner.a, ct.inner.c, ct.inner.b * group.random_gt(rng))
        mauled = CCACiphertext(ct.verify_key, mauled_inner, ct.signature)
        with pytest.raises(DecryptionError):
            cca.decrypt_protocol(setup, p1, p2, channel, mauled)

    def test_swapped_signature_rejected(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        group = cca.params.group
        ct1 = cca.encrypt(setup, group.random_gt(rng), rng)
        ct2 = cca.encrypt(setup, group.random_gt(rng), rng)
        frankenstein = CCACiphertext(ct1.verify_key, ct1.inner, ct2.signature)
        with pytest.raises(DecryptionError):
            cca.decrypt_protocol(setup, p1, p2, channel, frankenstein)

    def test_rewrapped_vk_changes_plaintext(self, cca, setup, rng):
        """Re-signing a stolen inner ciphertext under the attacker's own
        vk passes the signature check but decrypts under a *different*
        identity, yielding garbage -- the BCHK argument in action."""
        p1, p2, channel = fresh_devices(cca, setup)
        group = cca.params.group
        message = group.random_gt(rng)
        ct = cca.encrypt(setup, message, rng)
        attacker_keys = cca.ots.keygen(rng)
        new_sig = cca.ots.sign(attacker_keys, ct.inner.to_bits().to_bytes())
        rewrapped = CCACiphertext(attacker_keys.verify_key, ct.inner, new_sig)
        result = cca.decrypt_protocol(setup, p1, p2, channel, rewrapped)
        assert result != message

    def test_malformed_vk_rejected(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        ct = cca.encrypt(setup, cca.params.group.random_gt(rng), rng)
        broken = CCACiphertext(((b"bad",), (b"key",)), ct.inner, ct.signature)
        with pytest.raises(DecryptionError):
            cca.decrypt_protocol(setup, p1, p2, channel, broken)

    def test_truncated_signature_rejected(self, cca, setup, rng):
        p1, p2, channel = fresh_devices(cca, setup)
        ct = cca.encrypt(setup, cca.params.group.random_gt(rng), rng)
        broken = CCACiphertext(ct.verify_key, ct.inner, Signature(ct.signature.preimages[:10]))
        with pytest.raises(DecryptionError):
            cca.decrypt_protocol(setup, p1, p2, channel, broken)
