"""Unit tests for Lamport one-time signatures."""

import random

import pytest

from repro.cca.ots import DIGEST_BITS, LamportOTS, Signature, fingerprint_of_verify_key
from repro.errors import ParameterError


@pytest.fixture()
def ots():
    return LamportOTS()


@pytest.fixture()
def keypair(ots):
    return ots.keygen(random.Random(1))


class TestSignVerify:
    def test_roundtrip(self, ots, keypair):
        sig = ots.sign(keypair, b"hello")
        assert ots.verify(keypair.verify_key, b"hello", sig)

    def test_wrong_message_rejected(self, ots, keypair):
        sig = ots.sign(keypair, b"hello")
        assert not ots.verify(keypair.verify_key, b"goodbye", sig)

    def test_wrong_key_rejected(self, ots, keypair):
        other = ots.keygen(random.Random(2))
        sig = ots.sign(keypair, b"hello")
        assert not ots.verify(other.verify_key, b"hello", sig)

    def test_tampered_signature_rejected(self, ots, keypair):
        sig = ots.sign(keypair, b"hello")
        tampered = Signature((b"\x00" * 32,) + sig.preimages[1:])
        assert not ots.verify(keypair.verify_key, b"hello", tampered)

    def test_truncated_signature_rejected(self, ots, keypair):
        sig = ots.sign(keypair, b"hello")
        assert not ots.verify(keypair.verify_key, b"hello", Signature(sig.preimages[:-1]))

    def test_empty_message(self, ots, keypair):
        sig = ots.sign(keypair, b"")
        assert ots.verify(keypair.verify_key, b"", sig)

    def test_signature_length(self, ots, keypair):
        assert len(ots.sign(keypair, b"x").preimages) == DIGEST_BITS


class TestKeygen:
    def test_deterministic_with_seed(self, ots):
        a = ots.keygen(random.Random(3))
        b = ots.keygen(random.Random(3))
        assert a.verify_key == b.verify_key

    def test_distinct_seeds_distinct_keys(self, ots):
        a = ots.keygen(random.Random(4))
        b = ots.keygen(random.Random(5))
        assert a.verify_key != b.verify_key


class TestFingerprint:
    def test_stable(self, keypair):
        assert keypair.vk_fingerprint() == fingerprint_of_verify_key(keypair.verify_key)

    def test_distinct_keys_distinct_fingerprints(self, ots):
        a = ots.keygen(random.Random(6)).vk_fingerprint()
        b = ots.keygen(random.Random(7)).vk_fingerprint()
        assert a != b

    def test_malformed_key_rejected(self):
        with pytest.raises(ParameterError):
            fingerprint_of_verify_key(((b"x",), (b"y",)))
