"""Unit tests for leakage functions."""

import pytest

from repro.errors import ParameterError
from repro.leakage.functions import (
    BitProjection,
    HammingWeight,
    HashLeakage,
    InnerProductBits,
    LeakageInput,
    NullLeakage,
    PrefixBits,
    PythonLeakage,
)
from repro.protocol.memory import MemoryRegion
from repro.utils.bits import BitString


def make_input(bits: BitString) -> LeakageInput:
    mem = MemoryRegion("m")
    snap = mem.open_phase("t")
    mem.store("secret", bits)
    mem.close_phase()
    return LeakageInput(snap, [])


class TestPrefixBits:
    def test_takes_prefix(self):
        out = PrefixBits(3)(make_input(BitString(0b10110, 5)))
        assert out == BitString(0b101, 3)

    def test_shorter_memory_truncates(self):
        out = PrefixBits(10)(make_input(BitString(0b11, 2)))
        assert out == BitString(0b11, 2)

    def test_zero_length(self):
        assert len(PrefixBits(0)(make_input(BitString(0b1, 1)))) == 0


class TestBitProjection:
    def test_projects(self):
        out = BitProjection([0, 2, 4])(make_input(BitString(0b10101, 5)))
        assert list(out) == [1, 1, 1]

    def test_out_of_range_indices_read_zero(self):
        # Total: indices past the end of memory read 0, so the output
        # always has the declared length (the oracle charges it in full).
        out = BitProjection([0, 99])(make_input(BitString(0b1, 1)))
        assert list(out) == [1, 0]

    def test_declared_length(self):
        fn = BitProjection([1, 2, 3])
        assert fn.output_length == 3


class TestHammingWeight:
    def test_weight(self):
        fn = HammingWeight(memory_bits=8)
        out = fn(make_input(BitString(0b10110100, 8)))
        assert int(out) == 4

    def test_output_length_logarithmic(self):
        assert HammingWeight(memory_bits=1024).output_length == 11


class TestInnerProduct:
    def test_parity_of_selected_bits(self):
        masks = [BitString(0b111, 3), BitString(0b100, 3)]
        out = InnerProductBits(masks)(make_input(BitString(0b110, 3)))
        assert list(out) == [0, 1]  # parity(1,1,0)=0; bit0=1

    def test_length_is_mask_count(self):
        fn = InnerProductBits([BitString(1, 1)] * 5)
        assert fn.output_length == 5


class TestNullAndHash:
    def test_null(self):
        out = NullLeakage()(make_input(BitString(0b1, 1)))
        assert len(out) == 0

    def test_hash_deterministic(self):
        fn = HashLeakage(16)
        x = make_input(BitString(0b1011, 4))
        assert fn(x) == fn(x)

    def test_hash_distinguishes_inputs(self):
        fn = HashLeakage(32)
        a = fn(make_input(BitString(0b1011, 4)))
        b = fn(make_input(BitString(0b1010, 4)))
        assert a != b


class TestPythonLeakage:
    def test_wraps_callable(self):
        fn = PythonLeakage(lambda inp: inp.secret_bits()[:2], 2)
        assert fn(make_input(BitString(0b111, 3))) == BitString(0b11, 2)

    def test_length_cap_enforced(self):
        cheat = PythonLeakage(lambda inp: inp.secret_bits(), 1)
        with pytest.raises(ParameterError):
            cheat(make_input(BitString(0b1111, 4)))

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            PythonLeakage(lambda inp: BitString.empty(), -1)


class TestLeakageInput:
    def test_secret_value_access(self):
        mem = MemoryRegion("m")
        snap = mem.open_phase("t")
        mem.store("named", BitString(0b1, 1))
        mem.close_phase()
        inp = LeakageInput(snap, [])
        assert inp.secret_value("named") == BitString(0b1, 1)


class TestNoisyBits:
    def _make(self, bits):
        return make_input(bits)

    def test_no_noise_matches_projection(self):
        from repro.leakage.functions import NoisyBits

        secret = BitString(0b10110, 5)
        clean = NoisyBits([0, 2, 4], flip_prob=0.0)(make_input(secret))
        assert clean == BitProjection([0, 2, 4])(make_input(secret))

    def test_full_noise_flips_everything(self):
        from repro.leakage.functions import NoisyBits

        secret = BitString(0b11111, 5)
        flipped = NoisyBits([0, 1, 2], flip_prob=1.0)(make_input(secret))
        assert list(flipped) == [0, 0, 0]

    def test_deterministic_given_seed(self):
        from repro.leakage.functions import NoisyBits

        secret = BitString(0b10101010, 8)
        fn = NoisyBits(list(range(8)), flip_prob=0.5, seed=7)
        assert fn(make_input(secret)) == fn(make_input(secret))

    def test_invalid_probability(self):
        from repro.leakage.functions import NoisyBits

        with pytest.raises(ParameterError):
            NoisyBits([0], flip_prob=1.5)

    def test_length_bounded(self):
        from repro.leakage.functions import NoisyBits

        fn = NoisyBits([0, 1, 2, 3], flip_prob=0.3)
        assert fn.output_length == 4


class TestWordHammingWeights:
    def test_weights_per_word(self):
        from repro.leakage.functions import WordHammingWeights

        secret = BitString(0b11110000_10101010, 16)
        out = WordHammingWeights(words=2, word_bits=8)(make_input(secret))
        # widths: 8.bit_length() = 4 bits per weight
        first = out[:4]
        second = out[4:]
        assert int(first) == 4
        assert int(second) == 4

    def test_short_memory_truncates(self):
        from repro.leakage.functions import WordHammingWeights

        out = WordHammingWeights(words=4, word_bits=8)(make_input(BitString(0b111, 3)))
        assert int(out) == 3  # single partial word

    def test_invalid_args(self):
        from repro.leakage.functions import WordHammingWeights

        with pytest.raises(ParameterError):
            WordHammingWeights(words=0)

    def test_output_length(self):
        from repro.leakage.functions import WordHammingWeights

        fn = WordHammingWeights(words=3, word_bits=8)
        assert fn.output_length == 3 * 4
