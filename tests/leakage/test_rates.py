"""Unit tests for leakage-rate computation (section 3.2 / Theorem 4.1)."""

import pytest

from repro.errors import ParameterError
from repro.leakage.oracle import LeakageBudget
from repro.leakage.rates import LeakageRates, MemoryProfile, compute_rates, theoretical_b1


class TestMemoryProfile:
    def test_sizes(self):
        profile = MemoryProfile(share_bits=100, normal_randomness_bits=20, refresh_randomness_bits=120)
        assert profile.normal_bits == 120
        assert profile.refresh_bits == 220


class TestComputeRates:
    def test_basic(self):
        budget = LeakageBudget(b0=4, b1=50, b2=100)
        p1 = MemoryProfile(share_bits=100, normal_randomness_bits=0, refresh_randomness_bits=100)
        p2 = MemoryProfile(share_bits=100, normal_randomness_bits=0, refresh_randomness_bits=100)
        rates = compute_rates(budget, generation_randomness_bits=40, profile1=p1, profile2=p2)
        assert rates.rho_gen == pytest.approx(0.1)
        assert rates.rho1 == pytest.approx(0.5)
        assert rates.rho2 == pytest.approx(1.0)
        assert rates.rho1_refresh == pytest.approx(0.25)
        assert rates.rho2_refresh == pytest.approx(0.5)

    def test_zero_denominator_rejected(self):
        budget = LeakageBudget(0, 0, 0)
        bad = MemoryProfile(0, 0, 0)
        with pytest.raises(ParameterError):
            compute_rates(budget, 1, bad, bad)

    def test_as_tuple_ordering(self):
        rates = LeakageRates(0.1, 0.2, 0.3, 0.4, 0.5)
        assert rates.as_tuple() == (0.1, 0.2, 0.3, 0.4, 0.5)


class TestTheoremB1:
    def test_formula(self):
        # b1 = m1 * lam / (lam + c n)
        assert theoretical_b1(m1_bits=120, n=10, lam=30, c=3) == 120 * 30 // 60

    def test_approaches_m1_as_lambda_grows(self):
        m1, n = 1000, 16
        values = [theoretical_b1(m1, n, lam) for lam in (16, 64, 256, 4096)]
        assert values == sorted(values)
        assert values[-1] > 0.98 * m1

    def test_invalid_rejected(self):
        with pytest.raises(ParameterError):
            theoretical_b1(0, 1, 1)
        with pytest.raises(ParameterError):
            theoretical_b1(10, 0, 1)


class TestDLRRatesMatchPaper:
    """The headline numbers after Theorem 4.1, computed from DLRParams."""

    def test_rho1_approaches_one(self, small_group):
        from repro.core.params import DLRParams

        previous = 0.0
        for lam in (32, 128, 512, 2048):
            params = DLRParams(group=small_group, lam=lam)
            rho1 = params.theorem_b1() / params.sk_comm_bits()
            assert rho1 >= previous
            previous = rho1
        assert previous > 0.9  # 1 - o(1)

    def test_rho2_is_one(self, small_params):
        assert small_params.theorem_b2() == small_params.sk2_bits()

    def test_refresh_rates_half(self, small_params):
        """During refresh the secret memory doubles, so the same budget is
        a (1/2 - o(1))-fraction."""
        budget = LeakageBudget(
            0, small_params.theorem_b1(), small_params.theorem_b2()
        )
        m1, m2 = small_params.sk_comm_bits(), small_params.sk2_bits()
        p1 = MemoryProfile(m1, 0, m1)  # refresh adds another key
        p2 = MemoryProfile(m2, 0, m2)
        rates = compute_rates(budget, 64, p1, p2)
        assert rates.rho1_refresh < 0.5
        assert rates.rho2_refresh == pytest.approx(0.5)
        assert rates.rho1 == pytest.approx(rates.rho1_refresh * 2)
