"""Tests for entropy-shrinking leakage accounting (footnote 1)."""

import pytest

from repro.errors import LeakageBudgetExceeded, ParameterError
from repro.leakage.entropy_oracle import (
    EntropyLeakageOracle,
    entropy_loss,
    uniform_secrets,
)
from repro.utils.bits import BitString


def low_bit(secret: int) -> BitString:
    return BitString(secret & 1, 1)


def full_value(secret: int) -> BitString:
    return BitString(secret, 8)


def constant(secret: int) -> BitString:
    return BitString(0b1010, 4)


def long_but_cheap(secret: int) -> BitString:
    """1000 output bits that depend only on one key bit."""
    return BitString((secret & 1) * ((1 << 1000) - 1), 1000)


class TestEntropyLoss:
    def test_one_bit_leak_costs_one_bit(self):
        secrets = uniform_secrets(range(256))
        assert entropy_loss(secrets, low_bit) == pytest.approx(1.0)

    def test_full_leak_costs_everything(self):
        secrets = uniform_secrets(range(256))
        assert entropy_loss(secrets, full_value) == pytest.approx(8.0)

    def test_constant_leak_is_free(self):
        secrets = uniform_secrets(range(256))
        assert entropy_loss(secrets, constant) == pytest.approx(0.0)

    def test_long_output_can_be_cheap(self):
        """The key point of entropy accounting: output length is not the
        cost."""
        secrets = uniform_secrets(range(256))
        assert entropy_loss(secrets, long_but_cheap) == pytest.approx(1.0)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ParameterError):
            entropy_loss({}, low_bit)


class TestEntropyOracle:
    def test_within_budget(self):
        oracle = EntropyLeakageOracle(2.0)
        secrets = uniform_secrets(range(256))
        out = oracle.leak(secrets, low_bit, 7)
        assert out == BitString(1, 1)
        assert oracle.remaining() == pytest.approx(1.0)

    def test_long_cheap_leak_allowed(self):
        """A 1000-bit output with 1 bit of entropy cost passes a 2-bit
        entropy budget -- the length oracle would refuse it."""
        oracle = EntropyLeakageOracle(2.0)
        secrets = uniform_secrets(range(256))
        out = oracle.leak(secrets, long_but_cheap, 3)
        assert len(out) == 1000

    def test_over_budget_refused(self):
        oracle = EntropyLeakageOracle(4.0)
        secrets = uniform_secrets(range(256))
        with pytest.raises(LeakageBudgetExceeded):
            oracle.leak(secrets, full_value, 5)

    def test_cumulative_accounting(self):
        oracle = EntropyLeakageOracle(1.5)
        secrets = uniform_secrets(range(256))
        oracle.leak(secrets, low_bit, 9)
        with pytest.raises(LeakageBudgetExceeded):
            oracle.leak(secrets, low_bit, 9)

    def test_period_replenishes(self):
        oracle = EntropyLeakageOracle(1.0)
        secrets = uniform_secrets(range(256))
        oracle.leak(secrets, low_bit, 1)
        oracle.end_period()
        oracle.leak(secrets, low_bit, 1)  # fresh budget, no raise
        assert oracle.period == 1

    def test_secret_outside_distribution_rejected(self):
        oracle = EntropyLeakageOracle(8.0)
        with pytest.raises(ParameterError):
            oracle.leak(uniform_secrets(range(4)), low_bit, 77)

    def test_negative_budget_rejected(self):
        with pytest.raises(ParameterError):
            EntropyLeakageOracle(-1.0)

    def test_length_vs_entropy_comparison(self):
        """Footnote 1's point, as a contrast: the length-based oracle
        refuses what the entropy-based oracle correctly allows."""
        from repro.leakage.functions import LeakageInput, PythonLeakage
        from repro.leakage.oracle import LeakageBudget, LeakageOracle
        from repro.protocol.memory import MemoryRegion

        mem = MemoryRegion("m")
        snap = mem.open_phase("t")
        mem.store("secret", BitString(0b10110101, 8))
        mem.close_phase()
        length_oracle = LeakageOracle(LeakageBudget(0, 2, 2))
        long_fn = PythonLeakage(
            lambda inp: BitString(inp.secret_bits().bit(7) * ((1 << 1000) - 1), 1000),
            1000,
        )
        with pytest.raises(LeakageBudgetExceeded):
            length_oracle.leak(1, long_fn, LeakageInput(snap, []))
        entropy_oracle = EntropyLeakageOracle(2.0)
        entropy_oracle.leak(uniform_secrets(range(256)), long_but_cheap, 3)
