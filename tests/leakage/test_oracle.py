"""Unit tests for the Definition 3.2 leakage accounting."""

import pytest

from repro.errors import LeakageBudgetExceeded, ParameterError
from repro.leakage.functions import LeakageInput, PrefixBits
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.memory import MemoryRegion
from repro.utils.bits import BitString


def snapshot_of(bits: BitString):
    mem = MemoryRegion("m")
    snap = mem.open_phase("t")
    mem.store("secret", bits)
    mem.close_phase()
    return snap


def leak_input(width: int = 64) -> LeakageInput:
    return LeakageInput(snapshot_of(BitString((1 << width) - 1, width)), [])


class TestBudget:
    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            LeakageBudget(-1, 0, 0)

    def test_for_device(self):
        budget = LeakageBudget(1, 2, 3)
        assert budget.for_device(1) == 2
        assert budget.for_device(2) == 3

    def test_for_device_invalid(self):
        with pytest.raises(ParameterError):
            LeakageBudget(0, 0, 0).for_device(3)


class TestGenerationLeakage:
    def test_within_budget(self):
        oracle = LeakageOracle(LeakageBudget(8, 0, 0))
        out = oracle.leak_generation(PrefixBits(8), leak_input())
        assert len(out) == 8

    def test_cumulative_bound(self):
        oracle = LeakageOracle(LeakageBudget(8, 0, 0))
        oracle.leak_generation(PrefixBits(5), leak_input())
        with pytest.raises(LeakageBudgetExceeded):
            oracle.leak_generation(PrefixBits(4), leak_input())

    def test_rejected_after_periods_start(self):
        oracle = LeakageOracle(LeakageBudget(8, 8, 8))
        oracle.leak(1, PrefixBits(1), leak_input())
        with pytest.raises(ParameterError):
            oracle.leak_generation(PrefixBits(1), leak_input())


class TestPeriodAccounting:
    def test_normal_within_budget(self):
        oracle = LeakageOracle(LeakageBudget(0, 10, 10))
        out = oracle.leak(1, PrefixBits(10), leak_input())
        assert len(out) == 10

    def test_over_budget_aborts(self):
        oracle = LeakageOracle(LeakageBudget(0, 10, 10))
        with pytest.raises(LeakageBudgetExceeded):
            oracle.leak(1, PrefixBits(11), leak_input())

    def test_normal_plus_refresh_share_budget(self):
        """The Def 3.2 check is L + |l| + |l_ref| <= b."""
        oracle = LeakageOracle(LeakageBudget(0, 10, 10))
        oracle.leak(1, PrefixBits(6), leak_input())
        oracle.leak_refresh(1, PrefixBits(4), leak_input())
        with pytest.raises(LeakageBudgetExceeded):
            oracle.leak(1, PrefixBits(1), leak_input())

    def test_devices_independent(self):
        oracle = LeakageOracle(LeakageBudget(0, 4, 10))
        oracle.leak(1, PrefixBits(4), leak_input())
        out = oracle.leak(2, PrefixBits(10), leak_input())
        assert len(out) == 10

    def test_refresh_leakage_carries_to_next_period(self):
        """Bits leaked during refresh count against the share they
        created: L_i^{t+1} = |l_i^{t,Ref}|."""
        oracle = LeakageOracle(LeakageBudget(0, 10, 10))
        oracle.leak_refresh(1, PrefixBits(7), leak_input())
        oracle.end_period()
        assert oracle.carried(1) == 7
        assert oracle.remaining(1) == 3
        with pytest.raises(LeakageBudgetExceeded):
            oracle.leak(1, PrefixBits(4), leak_input())

    def test_budget_replenishes_after_period_without_refresh_leakage(self):
        oracle = LeakageOracle(LeakageBudget(0, 10, 10))
        oracle.leak(1, PrefixBits(10), leak_input())
        oracle.end_period()
        out = oracle.leak(1, PrefixBits(10), leak_input())
        assert len(out) == 10

    def test_total_leakage_unbounded_over_time(self):
        """The defining feature of the continual model: per-period bounds,
        unbounded total."""
        oracle = LeakageOracle(LeakageBudget(0, 8, 8))
        for _ in range(25):
            oracle.leak(1, PrefixBits(8), leak_input())
            oracle.end_period()
        assert oracle.total_leaked_bits[1] == 200

    def test_period_counter(self):
        oracle = LeakageOracle(LeakageBudget(0, 1, 1))
        assert oracle.period == 0
        oracle.end_period()
        oracle.end_period()
        assert oracle.period == 2

    def test_remaining_never_negative(self):
        oracle = LeakageOracle(LeakageBudget(0, 5, 5))
        oracle.leak(1, PrefixBits(5), leak_input())
        assert oracle.remaining(1) == 0
