"""Unit tests for the budget dashboard and trace digests: every number
must reconcile exactly with the oracle/registry it views."""

import pytest

from repro.leakage.functions import LeakageInput, PrefixBits
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.memory import PhaseSnapshot
from repro.telemetry.dashboard import (
    budget_dashboard,
    hottest_spans,
    render_budget_dashboard,
    render_period_metrics,
    render_trace_report,
    span_summary,
)
from repro.utils.bits import BitString


def _leak_input(bits=64):
    snapshot = PhaseSnapshot("test")
    snapshot.record("state", BitString((1 << bits) - 1, bits))
    return LeakageInput(snapshot, [])


class TestBudgetDashboard:
    def test_fresh_oracle_all_budget_remaining(self):
        oracle = LeakageOracle(LeakageBudget(8, 16, 32))
        dash = budget_dashboard(oracle)
        assert dash["period"] == 0
        assert dash["generation"] == {"b0": 8, "used": 0, "remaining": 8}
        assert dash["devices"]["P1"]["remaining"] == 16
        assert dash["devices"]["P2"]["remaining"] == 32
        assert dash["devices"]["P1"]["freeze_proximity"] == 0.0

    def test_rows_reconcile_with_oracle_after_charges(self):
        oracle = LeakageOracle(LeakageBudget(8, 16, 32))
        oracle.leak(1, PrefixBits(3), _leak_input())
        oracle.charge_retry(1, 5)
        oracle.charge_retry(2, 5)
        dash = budget_dashboard(oracle)
        p1 = dash["devices"]["P1"]
        # normal = 3 leaked + 5 retry-charged; remaining mirrors the oracle.
        assert p1["normal"] == 8
        assert p1["retry_bits"] == 5
        assert p1["remaining"] == oracle.remaining(1) == 8
        assert p1["freeze_proximity"] == pytest.approx(8 / 16)
        assert dash["devices"]["P2"]["retry_bits"] == 5

    def test_retry_bits_split_by_period(self):
        oracle = LeakageOracle(LeakageBudget(0, 100, 100))
        oracle.charge_retry(1, 4)
        oracle.end_period()
        oracle.charge_retry(1, 6)
        dash = budget_dashboard(oracle)
        assert dash["period"] == 1
        assert dash["devices"]["P1"]["retry_bits"] == 6  # current period only
        assert dash["devices"]["P1"]["retry_bits_total"] == 10

    def test_carry_over_appears_after_roll(self):
        oracle = LeakageOracle(LeakageBudget(0, 16, 16))
        oracle.leak_refresh(1, PrefixBits(2), _leak_input())
        oracle.end_period()
        dash = budget_dashboard(oracle)
        assert dash["devices"]["P1"]["carried"] == 2
        assert dash["devices"]["P1"]["remaining"] == 14

    def test_render_contains_the_numbers(self):
        oracle = LeakageOracle(LeakageBudget(8, 16, 32))
        oracle.charge_retry(1, 3)
        text = render_budget_dashboard(budget_dashboard(oracle))
        assert "Gen (b0)" in text and "P1 (b1)" in text and "P2 (b2)" in text
        assert "13" in text  # P1 remaining


class TestRenderPeriodMetrics:
    def test_renders_embedded_snapshots(self):
        log_dict = {
            "scheme": "dlr",
            "seed": 7,
            "periods": [
                {
                    "period": 0,
                    "attempts": 2,
                    "bits_on_wire": 100,
                    "transcript_sha256": "ab",
                    "metrics": {
                        "bits_by_label": {"dec.d": 80, "ref.f": 20},
                        "retry_charged_bits": {"P1": 4, "P2": 4},
                    },
                }
            ],
        }
        text = render_period_metrics(log_dict)
        assert "dec.d" in text and "80" in text
        assert "retry charges: P1=4, P2=4" in text
        assert "total: 1 periods, 100 bits on wire" in text

    def test_tolerates_logs_without_metrics(self):
        log_dict = {
            "scheme": "dlr",
            "periods": [
                {"period": 0, "attempts": 1, "bits_on_wire": 10, "transcript_sha256": "x"}
            ],
        }
        assert "period 0" in render_period_metrics(log_dict)

    def test_empty_log(self):
        assert "(no committed periods)" in render_period_metrics({"scheme": "dlr"})


def _span(span_id, name, start, end, parent=None, **attrs):
    return {
        "record": "span",
        "id": span_id,
        "parent": parent,
        "name": name,
        "start": start,
        "end": end,
        "attrs": attrs,
    }


class TestTraceDigests:
    def test_hottest_spans_sorted_by_duration_then_id(self):
        spans = [
            _span(0, "a", 0.0, 1.0),
            _span(1, "b", 0.0, 3.0),
            _span(2, "c", 0.0, 1.0),
        ]
        hottest = hottest_spans(spans, top=2)
        assert [s["id"] for s in hottest] == [1, 0]  # tie 0-vs-2 broken by id

    def test_summary_aggregates_counts_durations_bits(self):
        spans = [
            _span(0, "step.send", 0.0, 1.0, bits=8),
            _span(1, "step.send", 0.0, 2.0, bits=4),
            _span(2, "step.recv", 0.0, 0.5),
        ]
        summary = span_summary(spans)
        assert summary["step.send"]["count"] == 2
        assert summary["step.send"]["bits"] == 12
        assert summary["step.send"]["max_seconds"] == pytest.approx(2.0)
        assert summary["step.recv"]["bits"] == 0

    def test_report_renders(self):
        spans = [_span(0, "step.send", 0.0, 1.0, bits=8)]
        text = render_trace_report(spans, top=1)
        assert "1 spans" in text and "step.send" in text and "hottest" in text
