"""Unit tests for the span tracer: nesting, determinism, JSONL schema,
the no-op fast path, and the ``@traced`` method decorator."""

import json
import threading
import time

import pytest

from repro.telemetry.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    active_tracer,
    install_tracer,
    traced,
    tracing,
    uninstall_tracer,
    validate_trace,
    validate_trace_file,
)


class TestSpans:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_ids_are_sequential_and_deterministic(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.span_id for s in tracer.finished] == [1, 0, 2]  # finish order
        assert sorted(s.span_id for s in tracer.finished) == [0, 1, 2]

    def test_finish_order_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.finished] == ["child", "parent"]

    def test_annotate_merges_attrs(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as span:
            span.annotate(extra="x")
        assert span.attrs == {"fixed": 1, "extra": "x"}

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.attrs["error"] == "ValueError"

    def test_monotonic_interval(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        (span,) = tracer.finished
        assert span.end >= span.start
        assert span.duration == span.end - span.start

    def test_record_synthesizes_interval(self):
        tracer = Tracer()
        span = tracer.record("measured", 0.25, bits=8)
        assert span.duration == pytest.approx(0.25)
        assert span.attrs == {"bits": 8}
        assert tracer.finished == [span]

    def test_explicit_parent_crosses_threads(self):
        """The thread-local stack does not leak across threads, but an
        explicit parent= attaches a worker's span to the driver's."""
        tracer = Tracer()
        seen = {}

        with tracer.span("driver") as driver:

            def worker():
                seen["implicit"] = tracer.current()
                with tracer.span("step", parent=driver):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()

        assert seen["implicit"] is None  # no cross-thread implicit nesting
        (step,) = tracer.spans_named("step")
        assert step.parent_id == driver.span_id
        assert tracer.children_of(driver) == [step]

    def test_attached_counter_records_ops_delta(self, small_group, rng):
        tracer = Tracer()
        tracer.attach_counter(small_group.counter)
        u = small_group.random_g(rng)
        with tracer.span("exp"):
            _ = u ** 7
        (span,) = tracer.finished
        assert span.attrs["ops"]["g_exp"] >= 1


class TestExportAndSchema:
    def test_jsonl_roundtrip_validates(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", bits=3):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        spans = validate_trace_file(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "record": "trace-header",
            "version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
        }

    def test_missing_header_rejected(self):
        line = json.dumps(
            {"record": "span", "id": 0, "parent": None, "name": "x",
             "start": 0.0, "end": 1.0, "attrs": {}}
        )
        with pytest.raises(ValueError, match="trace-header"):
            validate_trace([line])

    def test_wrong_version_rejected(self):
        header = json.dumps({"record": "trace-header", "version": 999, "clock": "perf_counter"})
        with pytest.raises(ValueError, match="version"):
            validate_trace([header])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_trace([])

    def _header(self):
        return json.dumps(
            {"record": "trace-header", "version": TRACE_SCHEMA_VERSION, "clock": "perf_counter"}
        )

    def _span(self, **overrides):
        record = {"record": "span", "id": 0, "parent": None, "name": "x",
                  "start": 0.0, "end": 1.0, "attrs": {}}
        record.update(overrides)
        return json.dumps(record)

    def test_missing_key_rejected(self):
        broken = {"record": "span", "id": 0, "parent": None, "name": "x",
                  "start": 0.0, "attrs": {}}  # no "end"
        with pytest.raises(ValueError, match="missing 'end'"):
            validate_trace([self._header(), json.dumps(broken)])

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            validate_trace([self._header(), self._span(start=2.0, end=1.0)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_trace([self._header(), self._span(id=0), self._span(id=0)])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            validate_trace([self._header(), self._span(parent=42)])

    def test_parent_may_appear_later_in_file(self):
        """Finish-order export puts children first; integrity is checked
        over the whole file."""
        lines = [
            self._header(),
            self._span(id=1, parent=0, name="child"),
            self._span(id=0, parent=None, name="parent"),
        ]
        assert [s["id"] for s in validate_trace(lines)] == [1, 0]


class TestActiveTracer:
    def test_null_tracer_by_default(self):
        assert active_tracer() is NULL_TRACER
        assert not active_tracer().enabled

    def test_null_tracer_hands_out_the_shared_span(self):
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert NULL_TRACER.record("anything", 1.0) is NULL_SPAN
        with NULL_SPAN as span:
            assert span.annotate(x=1) is NULL_SPAN
        assert NULL_SPAN.duration == 0.0

    def test_tracing_scope_installs_and_restores(self):
        with tracing() as tracer:
            assert active_tracer() is tracer
            assert tracer.enabled
        assert active_tracer() is NULL_TRACER

    def test_install_returns_previous(self):
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert active_tracer() is tracer
        finally:
            uninstall_tracer()
        assert active_tracer() is NULL_TRACER


class _Operand:
    span_kind = "toy"

    @traced("op")
    def op(self, x):
        return x + 1

    def plain(self, x):
        return x + 1


class TestTracedDecorator:
    def test_span_named_by_kind_and_operation(self):
        with tracing() as tracer:
            assert _Operand().op(1) == 2
        (span,) = tracer.finished
        assert span.name == "toy.op"

    def test_no_span_without_tracer(self):
        instance = _Operand()
        assert instance.op(1) == 2  # NULL_TRACER installed: no spans exist

    def test_disabled_overhead_is_bounded(self):
        """The bench guard for "off-by-default-cheap": with the no-op
        tracer installed, a traced method costs at most a few times a
        plain call (one global read + one attribute check), never a
        span allocation.  The bound is deliberately loose -- it catches
        accidental span construction on the disabled path (an order of
        magnitude), not micro-regressions."""
        instance = _Operand()
        rounds = 20_000

        def time_calls(fn):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for i in range(rounds):
                    fn(i)
                best = min(best, time.perf_counter() - start)
            return best

        plain = time_calls(instance.plain)
        traced_off = time_calls(instance.op)
        assert traced_off < plain * 10
