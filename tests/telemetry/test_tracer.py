"""Unit tests for the span tracer: nesting, determinism, JSONL schema,
the no-op fast path, and the ``@traced`` method decorator."""

import json
import threading
import time

import pytest

from repro.telemetry.tracer import (
    MAX_TRACE_FIELD_LENGTH,
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    SpanContext,
    Tracer,
    active_tracer,
    install_tracer,
    merge_trace_files,
    merge_traces,
    new_trace_id,
    traced,
    tracing,
    uninstall_tracer,
    validate_trace,
    validate_trace_file,
)


class TestSpans:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_ids_are_sequential_and_deterministic(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.span_id for s in tracer.finished] == [1, 0, 2]  # finish order
        assert sorted(s.span_id for s in tracer.finished) == [0, 1, 2]

    def test_finish_order_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.finished] == ["child", "parent"]

    def test_annotate_merges_attrs(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as span:
            span.annotate(extra="x")
        assert span.attrs == {"fixed": 1, "extra": "x"}

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.attrs["error"] == "ValueError"

    def test_monotonic_interval(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        (span,) = tracer.finished
        assert span.end >= span.start
        assert span.duration == span.end - span.start

    def test_record_synthesizes_interval(self):
        tracer = Tracer()
        span = tracer.record("measured", 0.25, bits=8)
        assert span.duration == pytest.approx(0.25)
        assert span.attrs == {"bits": 8}
        assert tracer.finished == [span]

    def test_explicit_parent_crosses_threads(self):
        """The thread-local stack does not leak across threads, but an
        explicit parent= attaches a worker's span to the driver's."""
        tracer = Tracer()
        seen = {}

        with tracer.span("driver") as driver:

            def worker():
                seen["implicit"] = tracer.current()
                with tracer.span("step", parent=driver):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()

        assert seen["implicit"] is None  # no cross-thread implicit nesting
        (step,) = tracer.spans_named("step")
        assert step.parent_id == driver.span_id
        assert tracer.children_of(driver) == [step]

    def test_attached_counter_records_ops_delta(self, small_group, rng):
        tracer = Tracer()
        tracer.attach_counter(small_group.counter)
        u = small_group.random_g(rng)
        with tracer.span("exp"):
            _ = u ** 7
        (span,) = tracer.finished
        assert span.attrs["ops"]["g_exp"] >= 1


class TestExportAndSchema:
    def test_jsonl_roundtrip_validates(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", bits=3):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        spans = validate_trace_file(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "record": "trace-header",
            "version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
        }

    def test_missing_header_rejected(self):
        line = json.dumps(
            {"record": "span", "id": 0, "parent": None, "name": "x",
             "start": 0.0, "end": 1.0, "attrs": {}}
        )
        with pytest.raises(ValueError, match="trace-header"):
            validate_trace([line])

    def test_wrong_version_rejected(self):
        header = json.dumps({"record": "trace-header", "version": 999, "clock": "perf_counter"})
        with pytest.raises(ValueError, match="version"):
            validate_trace([header])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_trace([])

    def _header(self):
        return json.dumps(
            {"record": "trace-header", "version": TRACE_SCHEMA_VERSION, "clock": "perf_counter"}
        )

    def _span(self, **overrides):
        record = {"record": "span", "id": 0, "parent": None, "name": "x",
                  "start": 0.0, "end": 1.0, "attrs": {}}
        record.update(overrides)
        return json.dumps(record)

    def test_missing_key_rejected(self):
        broken = {"record": "span", "id": 0, "parent": None, "name": "x",
                  "start": 0.0, "attrs": {}}  # no "end"
        with pytest.raises(ValueError, match="missing 'end'"):
            validate_trace([self._header(), json.dumps(broken)])

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            validate_trace([self._header(), self._span(start=2.0, end=1.0)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_trace([self._header(), self._span(id=0), self._span(id=0)])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            validate_trace([self._header(), self._span(parent=42)])

    def test_parent_may_appear_later_in_file(self):
        """Finish-order export puts children first; integrity is checked
        over the whole file."""
        lines = [
            self._header(),
            self._span(id=1, parent=0, name="child"),
            self._span(id=0, parent=None, name="parent"),
        ]
        assert [s["id"] for s in validate_trace(lines)] == [1, 0]


class TestActiveTracer:
    def test_null_tracer_by_default(self):
        assert active_tracer() is NULL_TRACER
        assert not active_tracer().enabled

    def test_null_tracer_hands_out_the_shared_span(self):
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert NULL_TRACER.record("anything", 1.0) is NULL_SPAN
        with NULL_SPAN as span:
            assert span.annotate(x=1) is NULL_SPAN
        assert NULL_SPAN.duration == 0.0

    def test_tracing_scope_installs_and_restores(self):
        with tracing() as tracer:
            assert active_tracer() is tracer
            assert tracer.enabled
        assert active_tracer() is NULL_TRACER

    def test_install_returns_previous(self):
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert active_tracer() is tracer
        finally:
            uninstall_tracer()
        assert active_tracer() is NULL_TRACER


class _Operand:
    span_kind = "toy"

    @traced("op")
    def op(self, x):
        return x + 1

    def plain(self, x):
        return x + 1


class TestTracedDecorator:
    def test_span_named_by_kind_and_operation(self):
        with tracing() as tracer:
            assert _Operand().op(1) == 2
        (span,) = tracer.finished
        assert span.name == "toy.op"

    def test_no_span_without_tracer(self):
        instance = _Operand()
        assert instance.op(1) == 2  # NULL_TRACER installed: no spans exist

    def test_disabled_overhead_is_bounded(self):
        """The bench guard for "off-by-default-cheap": with the no-op
        tracer installed, a traced method costs at most a few times a
        plain call (one global read + one attribute check), never a
        span allocation.  The bound is deliberately loose -- it catches
        accidental span construction on the disabled path (an order of
        magnitude), not micro-regressions."""
        instance = _Operand()
        rounds = 20_000

        def time_calls(fn):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for i in range(rounds):
                    fn(i)
                best = min(best, time.perf_counter() - start)
            return best

        plain = time_calls(instance.plain)
        traced_off = time_calls(instance.op)
        assert traced_off < plain * 10


class TestSpanContext:
    def test_header_roundtrip(self):
        tracer = Tracer(actor="client")
        with tracer.span("call") as span:
            context = span.context()
        fields = context.header_fields()
        assert fields["parent_span"] == span.ref
        assert fields["trace_id"] == tracer.trace_id
        recovered = SpanContext.from_header(fields)
        assert recovered == context

    def test_anonymous_tracer_refs_are_ints(self):
        tracer = Tracer()
        with tracer.span("call") as span:
            context = span.context()
        assert isinstance(context.span_ref, int)
        # The trace id is still minted lazily so the wire context always
        # identifies a trace.
        assert context.trace_id == tracer.trace_id is not None

    def test_absent_fields_mean_no_context(self):
        assert SpanContext.from_header({}) is None
        assert SpanContext.from_header({"op": "decrypt"}) is None

    @pytest.mark.parametrize(
        "ref",
        [None, True, False, 1.5, "", [], {}, "x" * (MAX_TRACE_FIELD_LENGTH + 1)],
    )
    def test_malformed_parent_degrades_to_none(self, ref):
        assert SpanContext.from_header({"parent_span": ref}) is None

    def test_malformed_trace_id_kept_as_anonymous_context(self):
        # A bad trace id must not poison the parent ref: tracing context
        # is advisory, so the usable half survives.
        context = SpanContext.from_header({"parent_span": 7, "trace_id": 9})
        assert context is not None
        assert context.span_ref == 7
        assert context.trace_id is None

    def test_remote_parent_span_records_flag_and_inherits_trace(self):
        remote = SpanContext(trace_id="feedbeefcafe0001", span_ref="client:3")
        tracer = Tracer(actor="server")
        with tracer.span("service.request", parent=remote) as span:
            pass
        record = span.to_record()
        assert record["parent"] == "client:3"
        assert record["remote_parent"] is True
        assert record["trace"] == "feedbeefcafe0001"
        assert str(record["id"]).startswith("server:")

    def test_remote_parent_exempt_from_validation(self):
        remote = SpanContext(trace_id=None, span_ref="client:3")
        tracer = Tracer(actor="server")
        with tracer.span("service.request", parent=remote):
            pass
        # The remote parent is not in this file, yet the trace is valid.
        spans = validate_trace(tracer.to_jsonl().splitlines())
        assert len(spans) == 1

    def test_local_unknown_parent_still_rejected(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        lines = [json.dumps(tracer.header())]
        record = tracer.finished[0].to_record()
        record["parent"] = 999  # forged, and not flagged remote
        lines.append(json.dumps(record))
        with pytest.raises(ValueError, match="unknown parent"):
            validate_trace(lines)


class TestActorAndTraceIds:
    def test_actor_qualifies_exported_ids(self):
        tracer = Tracer(actor="server")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = [s.to_record() for s in tracer.finished]
        assert all(str(r["id"]).startswith("server:") for r in records)
        inner = next(r for r in records if r["name"] == "inner")
        outer = next(r for r in records if r["name"] == "outer")
        assert inner["parent"] == outer["id"]

    def test_children_inherit_trace_id(self):
        tracer = Tracer(trace_id="aa" * 8)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert all(s.trace_id == "aa" * 8 for s in tracer.finished)
        assert all(s.to_record()["trace"] == "aa" * 8 for s in tracer.finished)

    def test_untraced_header_shape_is_classic(self):
        # No actor, no trace id: the header has exactly the v1 keys plus
        # the bumped version, so old tooling sees nothing unfamiliar.
        tracer = Tracer()
        assert tracer.header() == {
            "record": "trace-header",
            "version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
        }

    def test_new_trace_id_deterministic_under_rng(self):
        import random

        first = new_trace_id(random.Random(7))
        second = new_trace_id(random.Random(7))
        assert first == second
        assert len(first) == 16
        int(first, 16)  # hex

    def test_ensure_trace_id_mints_once(self):
        tracer = Tracer()
        assert tracer.trace_id is None
        minted = tracer.ensure_trace_id()
        assert tracer.ensure_trace_id() == minted == tracer.trace_id


class TestMergeTraces:
    def _pair(self):
        client = Tracer(actor="client", trace_id="cc" * 8)
        with client.span("service.call") as call:
            context = call.context()
        server = Tracer(actor="server")
        with server.span("service.request", parent=context):
            pass
        return client, server

    def test_merge_resolves_remote_parent(self, tmp_path):
        client, server = self._pair()
        merged = merge_traces([client.to_records(), server.to_records()])
        spans = validate_trace(json.dumps(r) for r in merged)
        request = next(s for s in spans if s["name"] == "service.request")
        call = next(s for s in spans if s["name"] == "service.call")
        assert request["parent"] == call["id"]
        assert "remote_parent" not in request  # resolved: exemption dropped
        assert request["trace"] == call["trace"] == "cc" * 8

    def test_merge_files_writes_valid_jsonl(self, tmp_path):
        client, server = self._pair()
        client_path, server_path = tmp_path / "c.jsonl", tmp_path / "s.jsonl"
        client.export_jsonl(client_path)
        server.export_jsonl(server_path)
        merged_path = tmp_path / "m.jsonl"
        spans = merge_trace_files([client_path, server_path], output=merged_path)
        assert {s["name"] for s in spans} == {"service.call", "service.request"}
        assert validate_trace_file(merged_path) == spans

    def test_merge_rejects_colliding_ids(self):
        first, second = Tracer(), Tracer()  # both anonymous: ids collide
        with first.span("a"):
            pass
        with second.span("b"):
            pass
        with pytest.raises(ValueError, match="colliding"):
            merge_traces([first.to_records(), second.to_records()])

    def test_unresolved_remote_parent_keeps_exemption(self):
        _, server = self._pair()
        merged = merge_traces([server.to_records()])  # client side absent
        request = next(r for r in merged if r.get("record") == "span")
        assert request["remote_parent"] is True
        validate_trace(json.dumps(r) for r in merged)
