"""Unit tests for the metrics registry: instrument identity, histogram
bucketing, deterministic snapshots, and the active-registry scope."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    active_registry,
    label_text,
    metering,
)


class TestCounters:
    def test_same_identity_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", route="x")
        b = registry.counter("hits", route="x")
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.counter_value("hits", route="x") == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("bits", label="d", party="1").inc(5)
        assert registry.counter_value("bits", party="1", label="d") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_counters_named_is_label_sorted(self):
        registry = MetricsRegistry()
        registry.counter("retry", period="1", device="2").inc(4)
        registry.counter("retry", period="0", device="1").inc(2)
        pairs = registry.counters_named("retry")
        assert [labels for labels, _ in pairs] == [
            {"device": "1", "period": "0"},
            {"device": "2", "period": "1"},
        ]
        assert [c.value for _, c in pairs] == [2, 4]


class TestGauges:
    def test_set_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2


class TestHistograms:
    def test_bucket_placement_and_overflow(self):
        histogram = Histogram(boundaries=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1.0, <=10.0, overflow
        assert histogram.count == 4
        assert histogram.total == pytest.approx(106.5)

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=())

    def test_default_buckets_are_fixed_and_increasing(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(set(DEFAULT_SECONDS_BUCKETS))

    def test_registry_keeps_first_boundaries(self):
        registry = MetricsRegistry()
        first = registry.histogram("t", buckets=(1.0, 2.0))
        again = registry.histogram("t", buckets=(9.0,))
        assert again is first and first.boundaries == (1.0, 2.0)


class TestSnapshot:
    def test_snapshot_is_deterministically_ordered(self):
        """Two registries fed the same observations in different orders
        serialize byte-identically."""
        one, two = MetricsRegistry(), MetricsRegistry()
        for registry, order in ((one, (1, 2)), (two, (2, 1))):
            for party in order:
                registry.counter("ops", party=str(party)).inc(party)
            registry.gauge("period").set(3)
            registry.histogram("wall", buckets=(1.0,)).observe(0.5)
        assert one.snapshot_json() == two.snapshot_json()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("bits", label="dec.d").inc(8)
        snap = registry.snapshot()
        assert snap["counters"] == {"bits{label=dec.d}": 8}
        assert snap["gauges"] == {} and snap["histograms"] == {}

    def test_label_text_spelling(self):
        assert label_text(("plain", ())) == "plain"
        assert (
            label_text(("n", (("a", 1), ("b", "x")))) == "n{a=1,b=x}"
        )


class TestActiveRegistry:
    def test_off_by_default(self):
        assert active_registry() is None

    def test_metering_scope(self):
        with metering() as registry:
            assert active_registry() is registry
            registry.counter("in_scope").inc()
        assert active_registry() is None
        assert registry.counter_value("in_scope") == 1

    def test_metering_accepts_shared_registry(self):
        shared = MetricsRegistry()
        with metering(shared) as registry:
            assert registry is shared
