"""Unit tests for the metrics registry: instrument identity, histogram
bucketing, deterministic snapshots, and the active-registry scope."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    active_registry,
    label_text,
    metering,
)


class TestCounters:
    def test_same_identity_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", route="x")
        b = registry.counter("hits", route="x")
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.counter_value("hits", route="x") == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("bits", label="d", party="1").inc(5)
        assert registry.counter_value("bits", party="1", label="d") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_counters_named_is_label_sorted(self):
        registry = MetricsRegistry()
        registry.counter("retry", period="1", device="2").inc(4)
        registry.counter("retry", period="0", device="1").inc(2)
        pairs = registry.counters_named("retry")
        assert [labels for labels, _ in pairs] == [
            {"device": "1", "period": "0"},
            {"device": "2", "period": "1"},
        ]
        assert [c.value for _, c in pairs] == [2, 4]


class TestGauges:
    def test_set_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2


class TestHistograms:
    def test_bucket_placement_and_overflow(self):
        histogram = Histogram(boundaries=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1.0, <=10.0, overflow
        assert histogram.count == 4
        assert histogram.total == pytest.approx(106.5)

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=())

    def test_default_buckets_are_fixed_and_increasing(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(set(DEFAULT_SECONDS_BUCKETS))

    def test_registry_keeps_first_boundaries(self):
        registry = MetricsRegistry()
        first = registry.histogram("t", buckets=(1.0, 2.0))
        again = registry.histogram("t", buckets=(9.0,))
        assert again is first and first.boundaries == (1.0, 2.0)


class TestSnapshot:
    def test_snapshot_is_deterministically_ordered(self):
        """Two registries fed the same observations in different orders
        serialize byte-identically."""
        one, two = MetricsRegistry(), MetricsRegistry()
        for registry, order in ((one, (1, 2)), (two, (2, 1))):
            for party in order:
                registry.counter("ops", party=str(party)).inc(party)
            registry.gauge("period").set(3)
            registry.histogram("wall", buckets=(1.0,)).observe(0.5)
        assert one.snapshot_json() == two.snapshot_json()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("bits", label="dec.d").inc(8)
        snap = registry.snapshot()
        assert snap["counters"] == {"bits{label=dec.d}": 8}
        assert snap["gauges"] == {} and snap["histograms"] == {}

    def test_label_text_spelling(self):
        assert label_text(("plain", ())) == "plain"
        assert (
            label_text(("n", (("a", 1), ("b", "x")))) == "n{a=1,b=x}"
        )


class TestActiveRegistry:
    def test_off_by_default(self):
        assert active_registry() is None

    def test_metering_scope(self):
        with metering() as registry:
            assert active_registry() is registry
            registry.counter("in_scope").inc()
        assert active_registry() is None
        assert registry.counter_value("in_scope") == 1

    def test_metering_accepts_shared_registry(self):
        shared = MetricsRegistry()
        with metering(shared) as registry:
            assert registry is shared


class TestLabeledQueries:
    """Subset-sum reads and cross-series histogram merging: the query
    surface the tenant-dimensional service metrics rely on."""

    def test_counter_value_sums_over_label_supersets(self):
        registry = MetricsRegistry()
        registry.counter("req", op="decrypt", tenant="acme").inc(2)
        registry.counter("req", op="decrypt", tenant="globex").inc(3)
        registry.counter("req", op="open", tenant="acme").inc(1)
        assert registry.counter_value("req", op="decrypt") == 5
        assert registry.counter_value("req", tenant="acme") == 3
        assert registry.counter_value("req") == 6
        # An exact label set still reads exactly.
        assert registry.counter_value("req", op="open", tenant="acme") == 1
        assert registry.counter_value("req", op="open", tenant="none") == 0

    def test_merged_histogram_combines_matching_series(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0), op="d", tenant="a").observe(0.5)
        registry.histogram("lat", buckets=(1.0, 2.0), op="d", tenant="b").observe(1.5)
        registry.histogram("lat", buckets=(1.0, 2.0), op="o", tenant="a").observe(0.5)
        merged = registry.merged_histogram("lat", op="d")
        assert merged.to_dict()["count"] == 2
        assert merged.to_dict()["sum"] == pytest.approx(2.0)
        assert registry.merged_histogram("lat").to_dict()["count"] == 3

    def test_merged_histogram_returns_none_without_matches(self):
        registry = MetricsRegistry()
        assert registry.merged_histogram("lat", op="d") is None
        registry.histogram("lat", buckets=(1.0,), op="other").observe(0.5)
        assert registry.merged_histogram("lat", op="d") is None
        # Crucially it never mints a phantom instrument as a side effect.
        assert registry.merged_histogram("lat", op="d") is None

    def test_merged_histogram_rejects_mismatched_boundaries(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,), op="a").observe(0.5)
        registry.histogram("lat", buckets=(2.0,), op="b").observe(0.5)
        with pytest.raises(ValueError, match="boundaries"):
            registry.merged_histogram("lat")


class TestExemplars:
    def test_observe_attaches_exemplar_to_bucket(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.5, exemplar={"trace_id": "ab" * 8, "span": "server:4"})
        snapshot = hist.to_dict()
        (index, exemplar), = snapshot["exemplars"].items()
        assert index == "1"  # the (1.0, 2.0] bucket
        assert exemplar["labels"]["trace_id"] == "ab" * 8
        assert exemplar["value"] == pytest.approx(1.5)

    def test_later_exemplar_replaces_earlier_in_same_bucket(self):
        hist = Histogram((1.0,))
        hist.observe(0.2, exemplar={"labels_only": "first"})
        hist.observe(0.3, exemplar={"labels_only": "second"})
        snapshot = hist.to_dict()
        assert snapshot["exemplars"]["0"]["labels"] == {"labels_only": "second"}
        assert snapshot["count"] == 2

    def test_untraced_observations_keep_classic_snapshot_shape(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        hist.observe(0.5, exemplar=None)
        assert "exemplars" not in hist.to_dict()

    def test_export_state_covers_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c", op="x").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        state = registry.export_state()
        assert ("c", (("op", "x"),), 2) in [
            (name, tuple(sorted(labels.items())), value)
            for name, labels, value in state["counters"]
        ]
        assert [(name, value) for name, _labels, value in state["gauges"]] == [("g", 7)]
        ((name, _labels, snapshot),) = state["histograms"]
        assert name == "h" and snapshot["count"] == 1
