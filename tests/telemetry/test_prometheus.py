"""The Prometheus text-format renderer: shape, escaping, exemplars.

Includes a small stdlib-only parser for the exposition format (also
exercised by the live scrape test in
``tests/service/test_trace_propagation.py``): if our own parser can
round-trip the renderer's output, a real scraper can too.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus

_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ #]+)"
    r"(?P<exemplar> # \{[^}]*\} .+)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text format into ``{series: value}`` plus types.

    Stdlib-only, strict: every non-comment line must match the series
    grammar, every ``# TYPE`` must precede its family's samples.
    """
    types: dict[str, str] = {}
    series: dict[tuple[str, tuple], float] = {}
    exemplars: dict[tuple[str, tuple], dict] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SERIES_RE.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        labels = tuple(sorted(_LABEL_RE.findall(match.group("labels") or "")))
        value = float(match.group("value"))
        key = (match.group("name"), labels)
        assert key not in series, f"duplicate series {key}"
        series[key] = value
        if match.group("exemplar"):
            ex_labels, _, ex_value = match.group("exemplar")[3:].partition("} ")
            exemplars[key] = {
                "labels": dict(_LABEL_RE.findall(ex_labels)),
                "value": float(ex_value),
            }
        # The family of a histogram sample is its base name.
        family = re.sub(r"_(bucket|sum|count|total)$", "", match.group("name"))
        assert family in types or match.group("name") in types, (
            f"sample {match.group('name')} has no TYPE line"
        )
    return {"types": types, "series": series, "exemplars": exemplars}


class TestRenderer:
    def test_counter_gets_total_suffix_and_type(self):
        registry = MetricsRegistry()
        registry.counter("service.requests", op="decrypt", outcome="ok").inc(3)
        parsed = parse_exposition(render_prometheus(registry))
        assert parsed["types"]["service_requests_total"] == "counter"
        key = ("service_requests_total", (("op", "decrypt"), ("outcome", "ok")))
        assert parsed["series"][key] == 3

    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("service.busy_workers").set(2)
        parsed = parse_exposition(render_prometheus(registry))
        assert parsed["types"]["service_busy_workers"] == "gauge"
        assert parsed["series"][("service_busy_workers", ())] == 2

    def test_histogram_cumulative_buckets_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0), op="x")
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        parsed = parse_exposition(render_prometheus(registry))
        assert parsed["types"]["lat"] == "histogram"
        series = parsed["series"]
        assert series[("lat_bucket", (("le", "0.1"), ("op", "x")))] == 1
        assert series[("lat_bucket", (("le", "1.0"), ("op", "x")))] == 3
        assert series[("lat_bucket", (("le", "+Inf"), ("op", "x")))] == 4
        assert series[("lat_count", (("op", "x"),))] == 4
        assert series[("lat_sum", (("op", "x"),))] == pytest.approx(6.05)

    def test_bucket_exemplar_renders_openmetrics_style(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.5, exemplar={"trace_id": "abcd1234", "span": "server:7"})
        parsed = parse_exposition(render_prometheus(registry))
        key = ("lat_bucket", (("le", "1.0"),))
        assert parsed["exemplars"][key]["labels"]["trace_id"] == "abcd1234"
        assert parsed["exemplars"][key]["value"] == pytest.approx(0.5)

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", why='quote " backslash \\ newline \n end').inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_exposition(text)
        assert parsed["series"][
            ("c_total", (("why", 'quote \\" backslash \\\\ newline \\n end'),))
        ] == 1

    def test_output_is_deterministic_and_newline_terminated(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b", z="1").inc()
            registry.counter("a").inc(2)
            registry.gauge("g").set(5)
            registry.histogram("h", buckets=(1.0,)).observe(0.5)
            return render_prometheus(registry)

        first, second = build(), build()
        assert first == second
        assert first.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_content_type_names_text_format(self):
        assert "text/plain" in PROMETHEUS_CONTENT_TYPE
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_non_finite_values(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(float("inf"))
        parsed = parse_exposition(render_prometheus(registry))
        assert math.isinf(parsed["series"][("weird", ())])


class TestBackendInfoMetric:
    def test_backend_active_gauge_survives_rendering(self):
        from repro.telemetry import mark_backend

        registry = MetricsRegistry()
        name = mark_backend(registry)
        parsed = parse_exposition(render_prometheus(registry))
        assert parsed["series"][("backend_active", (("backend", name),))] == 1
