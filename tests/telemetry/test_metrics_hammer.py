"""Concurrency hammer for the metrics instruments.

The registry ``_lock`` only ever guarded get-or-create; instrument
*mutation* used to be bare ``self.value += amount`` / triple-field
histogram updates.  Those read-modify-writes are atomic only by
accident of the interpreter's preemption points: on CPython 3.10 (which
checks the eval breaker per instruction) and on free-threaded builds
the unlocked code loses counter increments and tears
``counts``/``total``/``count``; 3.11+ GIL builds merely happen not to
preempt inside a straight-line statement.  These tests pin the
*contract* -- exact balance and coherent snapshots under maximal
contention -- so the fix can never regress to interpreter-dependent
luck.  The gauge read-modify-write (``set(value + delta)``) loses
updates on every interpreter; :meth:`Gauge.add` is the atomic form.
"""

import sys
import threading

import pytest

from repro.telemetry.metrics import Histogram, MetricsRegistry

THREADS = 8
ITERATIONS = 20_000


@pytest.fixture()
def contended():
    """Maximize preemption for the duration of one test."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def hammer(worker) -> None:
    barrier = threading.Barrier(THREADS)

    def run():
        barrier.wait()
        for i in range(ITERATIONS):
            worker(i)

    threads = [threading.Thread(target=run) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCounterHammer:
    def test_no_lost_increments(self, contended):
        registry = MetricsRegistry()
        counter = registry.counter("hammer.requests")
        hammer(lambda i: counter.inc(1 if i % 2 else 3))
        assert counter.value == THREADS * (ITERATIONS // 2) * 4

    def test_shared_get_or_create_aggregates(self, contended):
        """Every thread resolves the instrument itself: the (name,
        labels) identity must hand all of them the same counter."""
        registry = MetricsRegistry()
        hammer(lambda i: registry.counter("hammer.by_label", op="dec").inc())
        assert registry.counter_value("hammer.by_label", op="dec") == THREADS * ITERATIONS


class TestGaugeHammer:
    def test_add_is_atomic(self, contended):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammer.level")
        hammer(lambda i: gauge.add(1 if i % 2 == 0 else -1))
        assert gauge.value == 0


class TestHistogramHammer:
    def test_no_lost_observations(self, contended):
        histogram = Histogram(boundaries=(1.0, 2.0, 4.0))
        hammer(lambda i: histogram.observe(float(i % 5)))
        assert histogram.count == THREADS * ITERATIONS
        assert sum(histogram.counts) == histogram.count
        # Exact float arithmetic: every observed value is a small integer.
        assert histogram.total == THREADS * sum(range(5)) * (ITERATIONS // 5)

    def test_snapshot_never_tears(self, contended):
        """A reader polling ``to_dict`` concurrently with writers must
        always see counts, sum, and count mutually consistent -- the
        three fields change under one lock or not at all."""
        histogram = Histogram(boundaries=(1.0, 2.0))
        stop = threading.Event()
        torn = []

        def read():
            while not stop.is_set():
                seen = histogram.to_dict()
                if sum(seen["counts"]) != seen["count"]:
                    torn.append(seen)
                    return
                # Every observation is exactly 1.0: sum tracks count.
                if seen["sum"] != float(seen["count"]):
                    torn.append(seen)
                    return

        reader = threading.Thread(target=read)
        reader.start()
        try:
            hammer(lambda i: histogram.observe(1.0))
        finally:
            stop.set()
            reader.join()
        assert not torn
        assert histogram.count == THREADS * ITERATIONS
