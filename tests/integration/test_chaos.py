"""Chaos harness: seeded fault soaks and a real kill -9 / resume drill.

Two layers:

* **Soak** -- every scheme on every wire runs a multi-period lifecycle
  under seeded probabilistic fault injection.  The run must either
  complete or abort through a *classified* fatal fault -- never hang,
  never silently skip a period -- and the leakage ledger must balance:
  every retried attempt's wire bits charged to the period it retried
  in, on both devices.

  ``CHAOS_PERIODS`` (env) overrides the period count so CI can run a
  reduced smoke; ``CHAOS_LOG_DIR`` (env) makes each soak drop its
  session-log JSON there as a build artifact.

* **Kill drill** -- a supervisor subprocess drives a socket-wire
  session and is SIGKILLed mid-lifecycle; two independent resumes from
  the surviving checkpoint (the real file and a byte copy) must replay
  identically and finish with shares that still decrypt.
"""

import json
import os
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro.core.dlr import DLR
from repro.core.keys import PublicKey
from repro.core.optimal import OptimalDLR
from repro.ibe.dlr_ibe import DLRIBE
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.faults import DROP, FaultRule, FaultyTransport
from repro.protocol.transport import InMemoryTransport, SocketTransport
from repro.runtime import (
    RETRY,
    TRANSIENT,
    RetryPolicy,
    SessionSupervisor,
    load_checkpoint,
)
from repro.utils import persist

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

CHAOS_PERIODS = int(os.environ.get("CHAOS_PERIODS", "20"))
CHAOS_LOG_DIR = os.environ.get("CHAOS_LOG_DIR")

#: Transient faults a soak is allowed to see (and recover from).
#: ``RefreshAborted`` is the transparent rollback wrapper -- it appears
#: as the recorded fault name when an injected fault lands mid-refresh,
#: while classification walks through it to the transient cause.
TRANSIENT_FAULTS = {
    "FaultInjected",
    "TransportTimeout",
    "PeerDisconnected",
    "RefreshAborted",
}


def _wire(kind):
    if kind == "socket":
        return SocketTransport(timeout=10.0)
    return InMemoryTransport()


def _dump_log(result, name):
    if CHAOS_LOG_DIR:
        directory = pathlib.Path(CHAOS_LOG_DIR)
        directory.mkdir(parents=True, exist_ok=True)
        persist.atomic_write_text(directory / f"{name}.json", result.log.to_json())


class TestChaosSoak:
    """Seeded probabilistic faults over whole lifecycles.

    Every send is a 5% drop candidate (seeded coin, unlimited repeats),
    so most periods see at least one aborted attempt across the soak.
    ``max_attempts=8`` makes the chance of exhausting a period
    negligible -- and the seeds are fixed, so a pass is reproducible,
    not lucky.
    """

    PARAMS = [
        (scheme, wire)
        for scheme in ("dlr", "optimal", "dlribe")
        for wire in ("memory", "socket")
    ]

    @pytest.mark.parametrize("scheme_kind,wire_kind", PARAMS)
    def test_soak_completes_with_balanced_ledger(
        self, small_params, scheme_kind, wire_kind
    ):
        rng = random.Random(f"chaos/{scheme_kind}/{wire_kind}")
        fault_seed = rng.randrange(2**32)
        faulty = FaultyTransport(inner=_wire(wire_kind), seed=fault_seed)
        faulty.add_rule(FaultRule(mode=DROP, probability=0.05, repeat=None))
        # One guaranteed drop in period 0, so even a very short smoke
        # (CHAOS_PERIODS in CI) exercises the retry/ledger path.
        faulty.add_rule(FaultRule(mode=DROP, occurrence=2, period=0))

        oracle = LeakageOracle(LeakageBudget(0, 10**7, 10**7))
        policy = RetryPolicy(max_attempts=8, base_backoff=0.0, jitter=0.0)
        kwargs = {}
        if scheme_kind == "dlribe":
            scheme = DLRIBE(small_params)
            setup = scheme.setup(random.Random(3))
            pk = PublicKey(small_params, setup.public_params.z)
            share1, share2 = setup.share1, setup.share2
            kwargs = {"public_params": setup.public_params, "identity": "chaos"}
        else:
            cls = OptimalDLR if scheme_kind == "optimal" else DLR
            scheme = cls(small_params)
            generation = scheme.generate(random.Random(3))
            pk = generation.public_key
            share1, share2 = generation.share1, generation.share2

        supervisor = SessionSupervisor.start(
            scheme,
            faulty,
            public_key=pk,
            share1=share1,
            share2=share2,
            periods=CHAOS_PERIODS,
            seed=rng.randrange(2**32),
            policy=policy,
            oracle=oracle,
            **kwargs,
        )
        result = supervisor.run()
        _dump_log(result, f"chaos-{scheme_kind}-{wire_kind}")

        assert result.periods_completed == CHAOS_PERIODS
        assert result.state.complete

        log = result.log
        # Only classified-transient faults appear; nothing unknown slipped
        # through the taxonomy, nothing fatal was retried.
        assert set(log.faults_by_classification()) <= {TRANSIENT}
        for attempt in log.retried():
            assert attempt.outcome == RETRY
            assert attempt.fault in TRANSIENT_FAULTS

        # Ledger balance: the oracle's per-period retry charges are
        # exactly the log's (each retry charges BOTH devices the
        # attempt's wire bits, so the log total is the two-device sum).
        charged = log.charged_by_period()
        assert set(oracle.retry_ledger) == set(charged)
        for period, per_device in oracle.retry_ledger.items():
            assert per_device[1] == per_device[2]  # symmetric charge
            assert per_device[1] + per_device[2] == charged[period]
        # ...and each period's charge is the sum of its retried attempts.
        for period in charged:
            expected = sum(
                a.bits_on_wire * 2 for a in log.attempts_for(period) if a.outcome == RETRY
            )
            assert charged[period] == expected

        # The soak is pointless if the coin never landed: the fixed
        # seeds above do produce retries.
        assert len(log.retried()) >= 1, "chaos soak saw no faults; seed is too tame"


class TestKillResumeDrill:
    """SIGKILL a supervisor subprocess mid-lifecycle, resume twice."""

    PERIODS = 6
    SEED = 21

    def _spawn(self, args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "supervise", *args],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def _wait_for_period(self, checkpoint, minimum, deadline=120.0):
        """Poll the (atomically written) checkpoint until it has committed
        at least ``minimum`` periods."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if checkpoint.exists():
                state = json.loads(checkpoint.read_text())
                if state["next_period"] >= minimum:
                    return state["next_period"]
            time.sleep(0.02)
        raise AssertionError(f"checkpoint never reached period {minimum}")

    def test_kill_dash_nine_then_resume(self, small_params, tmp_path):
        scheme = DLR(small_params)
        generation = scheme.generate(random.Random(6))
        pk_path = tmp_path / "pk.json"
        s1_path = tmp_path / "share1.json"
        s2_path = tmp_path / "share2.json"
        pk_path.write_text(persist.dumps("public_key", generation.public_key))
        s1_path.write_text(persist.dumps("share1", generation.share1))
        s2_path.write_text(persist.dumps("share2", generation.share2))
        checkpoint = tmp_path / "session.ckpt.json"
        checkpoint_copy = tmp_path / "session.ckpt.copy.json"

        # The victim: socket wire, paced so the kill window between
        # commits is wide and the SIGKILL lands mid-lifecycle.
        victim = self._spawn(
            [
                "--pk", str(pk_path),
                "--share1", str(s1_path),
                "--share2", str(s2_path),
                "--periods", str(self.PERIODS),
                "--seed", str(self.SEED),
                "--wire", "socket",
                "--pace", "0.25",
                "--checkpoint", str(checkpoint),
            ]
        )
        try:
            self._wait_for_period(checkpoint, 2)
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=30)

        killed_at = json.loads(checkpoint.read_text())["next_period"]
        assert 2 <= killed_at < self.PERIODS, "process finished before the kill"
        shutil.copy(checkpoint, checkpoint_copy)

        # Resume twice: from the surviving checkpoint and from its byte
        # copy.  Both must finish, and -- the determinism contract --
        # replay the remaining periods identically.
        logs = {}
        for name, ckpt in (("resumed", checkpoint), ("replayed", checkpoint_copy)):
            log_path = tmp_path / f"{name}.log.json"
            proc = self._spawn(
                [
                    "--resume",
                    "--checkpoint", str(ckpt),
                    "--wire", "socket",
                    "--log", str(log_path),
                ]
            )
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, f"{name} run failed:\n{out}\n{err}"
            logs[name] = json.loads(log_path.read_text())

        resumed = logs["resumed"]["periods"]
        replayed = logs["replayed"]["periods"]
        assert [p["period"] for p in resumed] == list(range(killed_at, self.PERIODS))
        assert [p["transcript_sha256"] for p in resumed] == [
            p["transcript_sha256"] for p in replayed
        ]

        # Both final checkpoints hold the same committed shares...
        final = load_checkpoint(checkpoint)
        final_copy = load_checkpoint(checkpoint_copy)
        assert final.complete and final_copy.complete
        assert final.share2.s == final_copy.share2.s
        assert final.share1.phi.to_bits() == final_copy.share1.phi.to_bits()

        # ...and those shares still decrypt under the original key.
        check = DLR(final.public_key.params)
        rng = random.Random(1)
        message = check.group.random_gt(rng)
        ciphertext = check.encrypt(final.public_key, message, rng)
        assert check.reference_decrypt(final.share1, final.share2, ciphertext) == message
