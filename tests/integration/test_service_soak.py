"""Chaos-proxy soak: the service resilience layer's acceptance bar.

Seeded socket-level chaos (latency spikes, connection resets, mid-frame
truncation, slow-loris dribble) between retrying clients and a live
:class:`~repro.service.server.KeyService` must yield **100% eventual
completion** with correct plaintexts, exact leakage/period accounting,
and -- for the live ``repro-dlr serve`` process -- a clean SIGTERM
drain with zero corrupted checkpoints.

Scale knobs (all optional, for the CI ``chaos-proxy-soak`` job):

* ``SOAK_STREAMS``  -- concurrent client streams / keys (default 3)
* ``SOAK_REQUESTS`` -- requests per stream (default 3)
* ``SOAK_SEED``     -- chaos seed (default 2012)
* ``SOAK_LOG_DIR``  -- write metrics + summary artifacts here
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.runtime.checkpoint import load_checkpoint
from repro.runtime.policy import RetryPolicy
from repro.service import (
    ChaosProxy,
    KeyService,
    ProxyRule,
    ServiceClient,
    SessionKey,
    SessionRegistry,
)

STREAMS = int(os.environ.get("SOAK_STREAMS", "3"))
REQUESTS = int(os.environ.get("SOAK_REQUESTS", "3"))
SEED = int(os.environ.get("SOAK_SEED", "2012"))
LOG_DIR = os.environ.get("SOAK_LOG_DIR")

#: The full chaos menu, probabilities tuned so a handful of requests
#: sees faults without making 10 retries likely to all fail.
SOAK_RULES = [
    ProxyRule(mode="delay", probability=0.2, repeat=None, delay_seconds=0.02),
    ProxyRule(mode="reset", probability=0.04, repeat=None),
    ProxyRule(mode="truncate", probability=0.04, repeat=None, keep_bytes=24),
    ProxyRule(
        mode="dribble",
        probability=0.1,
        repeat=None,
        dribble_bytes=512,
        dribble_delay=0.003,
    ),
]

#: Retries absorb the chaos: generous attempts, short seeded backoff.
SOAK_POLICY = RetryPolicy(
    max_attempts=10, base_backoff=0.02, multiplier=1.5, max_backoff=0.2, jitter=0.1
)


def _artifact(name: str, text: str) -> None:
    if LOG_DIR:
        directory = pathlib.Path(LOG_DIR)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(text)


def _soak_streams(proxy_address, keys, *, seed, on_failure):
    """Run one thread of sequential encrypt/decrypt per key through the
    proxy; returns ``results[stream] = list of (message, recovered)``."""
    results: dict[int, list] = {index: [] for index in range(len(keys))}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def stream(index, tenant, key):
        rng = random.Random(f"{seed}/stream/{index}")
        try:
            with ServiceClient(
                proxy_address,
                timeout=5.0,
                retry=SOAK_POLICY,
                retry_seed=f"{seed}/{index}",
            ) as client:
                public_key = client.public_key(tenant, key)
                for _ in range(REQUESTS):
                    message = public_key.group.random_gt(rng)
                    recovered, _period = client.encrypt_and_decrypt(
                        tenant, key, message, rng
                    )
                    with lock:
                        results[index].append((message, recovered))
        except BaseException as exc:  # noqa: BLE001 - the assert reads these
            with lock:
                errors.append(exc)
            on_failure(exc)

    threads = [
        threading.Thread(target=stream, args=(index, tenant, key))
        for index, (tenant, key) in enumerate(keys)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not any(thread.is_alive() for thread in threads), "soak stream hung"
    return results, errors


class TestInProcessSoak:
    def test_soak_completes_with_balanced_ledgers(self, tmp_path):
        registry = SessionRegistry(tmp_path / "state", capacity=16)
        service = KeyService(registry, workers=4, client_timeout=5.0).start()
        keys = [("soak", f"k{index}") for index in range(STREAMS)]
        try:
            with ServiceClient(service.address, timeout=5.0) as setup:
                for index, (tenant, key) in enumerate(keys):
                    setup.open_key(tenant, key, seed=index)

            with ChaosProxy(service.address, SOAK_RULES, seed=SEED) as proxy:
                results, errors = _soak_streams(
                    proxy.address, keys, seed=SEED, on_failure=lambda _exc: None
                )
                injected = list(proxy.injected)

            # 100% eventual completion, every plaintext correct.
            assert errors == [], f"soak streams failed: {errors!r}"
            for index in range(len(keys)):
                assert len(results[index]) == REQUESTS
                for message, recovered in results[index]:
                    assert recovered == message

            # Exact accounting: every served decrypt is either a fresh
            # committed period or a replay of one -- nothing vanishes,
            # nothing double-counts.
            total_requests = STREAMS * REQUESTS
            total_periods = 0
            for tenant, key in keys:
                session = registry.get(tenant, key)
                total_periods += session.next_period
                assert not session.frozen
                supervisor = session.supervisor
                # Ledger balance per key: the oracle's retry charges
                # mirror the protocol log exactly (no wire faults run
                # server-side, so both sides must be empty AND agree).
                log = supervisor.log
                charged = log.charged_by_period()
                if supervisor.oracle is not None:
                    assert set(supervisor.oracle.retry_ledger) == set(charged)
                    for period, per_device in supervisor.oracle.retry_ledger.items():
                        assert per_device[1] + per_device[2] == charged[period]
            ok_count = service.metrics.counter_value(
                "service.requests", op="decrypt", outcome="ok"
            )
            replays = service.metrics.counter_value("service.replayed_decrypts")
            assert ok_count == total_periods + replays
            # Every request burned at least its one period; a rare race
            # (retry outrunning the replay-cache fill) may burn one
            # extra, never lose one.
            assert total_periods >= total_requests

            _artifact(
                "soak-inprocess-metrics.json", service.metrics.snapshot_json()
            )
            _artifact(
                "soak-inprocess-summary.json",
                json.dumps(
                    {
                        "streams": STREAMS,
                        "requests_per_stream": REQUESTS,
                        "seed": SEED,
                        "periods_committed": total_periods,
                        "replayed_decrypts": replays,
                        "faults_injected": len(injected),
                        "fault_modes": sorted(
                            {rule.mode for rule, _ in injected}
                        ),
                    },
                    indent=2,
                ),
            )
        finally:
            service.stop(drain_deadline=5.0)
        assert service.drain_failures == []


class TestLiveServeSigtermSoak:
    def test_sigterm_mid_soak_drains_cleanly(self, tmp_path):
        if not hasattr(signal, "SIGTERM") or os.name == "nt":
            pytest.skip("POSIX signals required")
        state_dir = tmp_path / "state"
        announce = tmp_path / "addr.txt"
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--checkpoint-dir", str(state_dir),
                "--announce", str(announce),
                "--workers", "4",
                "--timeout", "5",
                "--drain-deadline", "10",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not announce.exists():
                assert process.poll() is None, "serve died before announcing"
                assert time.monotonic() < deadline, "serve never announced"
                time.sleep(0.05)
            host, port = announce.read_text().split()
            address = (host, int(port))

            keys = [("soak", f"sig{index}") for index in range(STREAMS)]
            with ServiceClient(address, timeout=5.0) as setup:
                for index, (tenant, key) in enumerate(keys):
                    setup.open_key(tenant, key, seed=100 + index)

            # Streams run until the drain kills their requests; every
            # failure must be a typed ServiceError (never a raw socket
            # error), collected here for the post-drain assert.
            observed: list[BaseException] = []
            first_success = threading.Event()
            lock = threading.Lock()
            successes = [0]

            def stream(index, tenant, key):
                rng = random.Random(f"sig/{index}")
                try:
                    with ChaosProxy(
                        address, SOAK_RULES, seed=SEED + index
                    ) as proxy:
                        with ServiceClient(
                            proxy.address,
                            timeout=5.0,
                            retry=SOAK_POLICY,
                            retry_seed=f"sig/{index}",
                        ) as client:
                            public_key = client.public_key(tenant, key)
                            while True:
                                message = public_key.group.random_gt(rng)
                                recovered, _ = client.encrypt_and_decrypt(
                                    tenant, key, message, rng
                                )
                                assert recovered == message
                                with lock:
                                    successes[0] += 1
                                first_success.set()
                except BaseException as exc:  # noqa: BLE001
                    with lock:
                        observed.append(exc)

            threads = [
                threading.Thread(target=stream, args=(index, tenant, key))
                for index, (tenant, key) in enumerate(keys)
            ]
            for thread in threads:
                thread.start()
            assert first_success.wait(60.0), "soak never completed a decrypt"
            process.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            stdout, stderr = process.communicate(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

        _artifact("soak-live-stdout.txt", stdout)
        _artifact("soak-live-stderr.txt", stderr)

        # Clean exit: the drain finished and proved durability.
        assert process.returncode == 0, f"serve exited {process.returncode}: {stderr}"
        summary = json.loads(stdout[stdout.index("{"):])
        assert summary["drain_failures"] == []
        assert summary["requests_handled"] > 0

        # Mid-drain failures the clients saw were all typed.
        assert successes[0] >= 1
        for exc in observed:
            assert isinstance(exc, ServiceError), f"untyped failure: {exc!r}"

        # Zero corrupted checkpoints: every key's durable state loads.
        checkpoints = sorted(state_dir.glob("*/*.ckpt.json"))
        assert len(checkpoints) == len(keys)
        for tenant, key in keys:
            state = load_checkpoint(
                SessionRegistry(state_dir, capacity=4).checkpoint_path(
                    SessionKey(tenant, key)
                )
            )
            assert state.next_period >= 0
