"""Definition 3.1's distributional requirement on refresh:

    SD((sk_1^0, sk_2^0), (sk_1^t, sk_2^t)) = 0

i.e. refreshed shares are distributed exactly like fresh ones.  We
verify the checkable consequences statistically on toy groups:

* P2's refreshed scalars are uniform on Z_p (like Gen's);
* P1's refreshed a-vector components are uniform on G;
* the invariant msk is preserved exactly (tested elsewhere);
* refresh output is independent of the *old* share values.
"""

import random

import pytest

from repro.analysis.stattests import chi_squared_two_sample, chi_squared_uniform
from repro.core.dlr import DLR
from repro.protocol.channel import Channel
from repro.protocol.device import Device


@pytest.fixture(scope="module")
def harvest(toy_params):
    """Run many independent generate+refresh cycles on the toy group and
    collect fresh vs refreshed share samples."""
    scheme = DLR(toy_params)
    fresh_scalars, refreshed_scalars = [], []
    fresh_points, refreshed_points = [], []
    for seed in range(40):
        rng = random.Random(seed)
        generation = scheme.generate(rng)
        fresh_scalars.extend(generation.share2.s[:4])
        fresh_points.extend(generation.share1.a[:2])
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        scheme.refresh_protocol(p1, p2, Channel())
        refreshed_scalars.extend(scheme.share2_of(p2).s[:4])
        refreshed_points.extend(scheme.share1_of(p1).a[:2])
    return fresh_scalars, refreshed_scalars, fresh_points, refreshed_points


class TestShareDistributions:
    def test_refreshed_scalars_match_fresh(self, harvest):
        fresh, refreshed, _, _ = harvest
        # Bucket mod 8 for a manageable chi-squared support.
        result = chi_squared_two_sample(
            [s % 8 for s in fresh], [s % 8 for s in refreshed]
        )
        assert not result.rejects_at(0.001)

    def test_refreshed_scalars_uniform(self, harvest):
        _, refreshed, _, _ = harvest
        result = chi_squared_uniform([s % 8 for s in refreshed], 8)
        assert not result.rejects_at(0.001)

    def test_refreshed_points_look_fresh(self, harvest):
        """Compare a 3-bit digest of point encodings fresh vs refreshed."""
        _, _, fresh, refreshed = harvest
        digest = lambda e: int(e.to_bits()[:3])
        result = chi_squared_two_sample(
            [digest(e) for e in fresh], [digest(e) for e in refreshed]
        )
        assert not result.rejects_at(0.001)

    def test_refresh_independent_of_old_share(self, toy_params):
        """Two devices with *identical* shares refreshed with different
        randomness produce unrelated new shares."""
        scheme = DLR(toy_params)
        generation = scheme.generate(random.Random(1))
        outcomes = []
        for seed in (10, 11):
            rng = random.Random(seed)
            p1 = Device("P1", scheme.group, rng)
            p2 = Device("P2", scheme.group, rng)
            scheme.install(p1, p2, generation.share1, generation.share2)
            scheme.refresh_protocol(p1, p2, Channel())
            outcomes.append((scheme.share1_of(p1), scheme.share2_of(p2)))
        (s1a, s2a), (s1b, s2b) = outcomes
        assert s1a != s1b
        assert s2a != s2b

    def test_msk_exactly_invariant_across_many_refreshes(self, toy_params):
        scheme = DLR(toy_params)
        rng = random.Random(2)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()

        def msk():
            share1, share2 = scheme.share1_of(p1), scheme.share2_of(p2)
            value = share1.phi
            for a_i, s_i in zip(share1.a, share2.s):
                value = value / (a_i ** s_i)
            return value

        initial = msk()
        for _ in range(8):
            scheme.refresh_protocol(p1, p2, channel)
            assert msk() == initial
