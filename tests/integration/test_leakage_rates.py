"""Measured leakage rates vs Theorem 4.1 -- the integration version of
experiment T3: run real periods, measure real snapshot sizes, compute
the five rates, compare against the paper's formulas."""

import random

import pytest

from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.leakage.oracle import LeakageBudget
from repro.leakage.rates import MemoryProfile, compute_rates
from repro.protocol.channel import Channel
from repro.protocol.device import Device


def measure_profiles(params, seed=1):
    """Run one period of the optimal scheme; return measured memory sizes."""
    rng = random.Random(seed)
    scheme = OptimalDLR(params)
    generation = scheme.generate(rng)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    channel = Channel()
    scheme.install(p1, p2, generation.share1, generation.share2)
    ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
    record = scheme.run_period(p1, p2, channel, ciphertext)
    sizes = {key: snap.size_bits() for key, snap in record.snapshots.items()}
    gen_bits = generation.randomness.size_bits()
    profile1 = MemoryProfile(
        share_bits=sizes[(1, "normal")],
        normal_randomness_bits=0,
        refresh_randomness_bits=sizes[(1, "refresh")] - sizes[(1, "normal")],
    )
    profile2 = MemoryProfile(
        share_bits=sizes[(2, "normal")],
        normal_randomness_bits=0,
        refresh_randomness_bits=sizes[(2, "refresh")] - sizes[(2, "normal")],
    )
    return gen_bits, profile1, profile2


class TestMeasuredRates:
    def test_rates_match_theorem_formulas(self, small_params):
        gen_bits, profile1, profile2 = measure_profiles(small_params)
        params = small_params
        budget = LeakageBudget(0, params.theorem_b1(), params.theorem_b2())
        rates = compute_rates(budget, gen_bits, profile1, profile2)
        lam, n = params.lam, params.n
        assert rates.rho1 == pytest.approx(lam / (lam + 3 * n), rel=0.02)
        assert rates.rho2 == pytest.approx(1.0)
        assert rates.rho1_refresh == pytest.approx(rates.rho1 / 2, rel=0.02)
        assert rates.rho2_refresh == pytest.approx(0.5)

    def test_rho1_grows_toward_one_with_lambda(self, small_group):
        previous = 0.0
        for lam in (32, 128, 512):
            params = DLRParams(group=small_group, lam=lam)
            gen_bits, profile1, profile2 = measure_profiles(params, seed=lam)
            budget = LeakageBudget(0, params.theorem_b1(), params.theorem_b2())
            rates = compute_rates(budget, gen_bits, profile1, profile2)
            assert rates.rho1 > previous
            previous = rates.rho1
        assert previous > 0.8

    def test_refresh_memory_exactly_doubles(self, small_params):
        _, profile1, profile2 = measure_profiles(small_params)
        assert profile1.refresh_bits == 2 * profile1.normal_bits
        assert profile2.refresh_bits == 2 * profile2.normal_bits

    def test_generation_randomness_dominates_b0(self, small_params):
        """rho_Gen = b0 / |r_Gen| is o(1): b0 = O(log n) while |r_Gen| is
        hundreds of bits."""
        gen_bits, _, _ = measure_profiles(small_params)
        b0 = small_params.n.bit_length()  # Omega(log n) bits
        assert b0 / gen_bits < 0.05
