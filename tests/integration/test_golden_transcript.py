"""Golden-transcript regression tests.

Every hash below was produced by the pre-engine implementation of the
protocol flows.  The engine rewrite must be byte-for-byte
transcript-compatible: same messages, same payloads, same phase
snapshots, for fixed seeds.  A mismatch here means the adversary's view
changed -- which invalidates every leakage number in the paper tables.
"""

import hashlib
import random

import pytest

from repro.core.dlr import DLR
from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.ibe.dlr_ibe import DLRIBE
from repro.math.backend import available_backends, use_backend
from repro.protocol.channel import Channel
from repro.protocol.device import Device


def _digest(bits):
    return hashlib.sha256(bits.to_bytes()).hexdigest()


def _setup(scheme_cls, seed):
    group = preset_group(32)
    params = DLRParams(group=group, lam=32)
    scheme = scheme_cls(params)
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1 = Device("P1", group, rng)
    p2 = Device("P2", group, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    channel = Channel()
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(generation.public_key, message, rng)
    return scheme, rng, generation, p1, p2, channel, message, ciphertext


class TestDLRGolden:
    def test_run_period_transcript_and_snapshots(self):
        scheme, rng, generation, p1, p2, channel, message, ciphertext = _setup(
            DLR, 1234
        )
        record = scheme.run_period(p1, p2, channel, ciphertext)
        assert record.plaintext == message

        bits = channel.transcript_bits(0)
        assert len(bits) == 17535
        assert _digest(bits) == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        )

        expected_snapshots = {
            (1, "normal"): (
                986,
                "c3ce399442ff986a7ab8c4defb24936d59a3d56af1c4c0fd146faf407bfafde1",
            ),
            (2, "normal"): (
                672,
                "46a6e096ad1d5cb505867684edb570d7e2ad172ddb0d3ecb7f7858c48d6267d8",
            ),
            (1, "refresh"): (
                1844,
                "86e74ec5919d9948c9a484c838d57b96231eb150566162dbf15cfbb617d2d249",
            ),
            (2, "refresh"): (
                1344,
                "86f2992f983ea64e96e9433cc0bfc8fd21466b29046015e7aaab62421e7516e2",
            ),
        }
        assert list(record.snapshots) == list(expected_snapshots)
        for key, (length, digest) in expected_snapshots.items():
            snapshot_bits = record.snapshots[key].to_bits()
            assert len(snapshot_bits) == length, key
            assert _digest(snapshot_bits) == digest, key

        # A second period continues the same RNG stream deterministically.
        ciphertext2 = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        scheme.run_period(p1, p2, channel, ciphertext2)
        total = channel.transcript_bits()
        assert len(total) == 35070
        assert _digest(total) == (
            "c0c8085779fd5e3ad087213f7c45c68cc7bcb12d95c1f0542dd279fcc4f145ae"
        )

    def test_decrypt_then_refresh_protocols(self):
        scheme, rng, generation, p1, p2, channel, message, ciphertext = _setup(
            DLR, 99
        )
        assert scheme.decrypt_protocol(p1, p2, channel, ciphertext) == message
        scheme.refresh_protocol(p1, p2, channel)
        bits = channel.transcript_bits()
        assert len(bits) == 17461
        assert _digest(bits) == (
            "a9b5b93051560806a47ff6d4fd59f0f4dd58303e2b75000cdc2970a0e6cde62b"
        )

    def test_run_period_multi(self):
        group = preset_group(32)
        params = DLRParams(group=group, lam=32)
        scheme = DLR(params)
        rng = random.Random(7)
        generation = scheme.generate(rng)
        p1 = Device("P1", group, rng)
        p2 = Device("P2", group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()
        messages = [group.random_gt(rng) for _ in range(3)]
        ciphertexts = [
            scheme.encrypt(generation.public_key, m, rng) for m in messages
        ]
        record = scheme.run_period_multi(p1, p2, channel, ciphertexts)
        assert list(record.plaintexts) == messages
        bits = channel.transcript_bits()
        assert len(bits) == 35443
        assert _digest(bits) == (
            "fbc478ee956cda4ffefc4b9df58dd0ed9c0d6ec5660039af4d25e3974ce6d4a1"
        )


class TestOptimalGolden:
    def test_run_period_transcript_and_snapshots(self):
        scheme, rng, generation, p1, p2, channel, message, ciphertext = _setup(
            OptimalDLR, 55
        )
        record = scheme.run_period(p1, p2, channel, ciphertext)
        assert record.plaintext == message

        bits = channel.transcript_bits(0)
        assert len(bits) == 17535
        assert _digest(bits) == (
            "1766d61b387994c20d8fec410d45539931ebcf9f482b80355f89bfd2a7212d48"
        )

        expected_snapshots = {
            (1, "normal"): (
                128,
                "70b75a9eaf709b948ff577ec9de175bf27f871ea3ab7501d3738134cbeb02bf4",
            ),
            (2, "normal"): (
                672,
                "fbba2bd967a40f2bbd7d5c1f40419c958b549a2617a016d65cdd547d1e1747cd",
            ),
            (1, "refresh"): (
                256,
                "970c8d8c909de49b3c06313b7a0dc705bf0f639010403c65f37f32f982b2bf6d",
            ),
            (2, "refresh"): (
                1344,
                "c3497d0d4fef92d36e07f404bd26055f41f15641d118a8f26c22a578258452b8",
            ),
        }
        assert list(record.snapshots) == list(expected_snapshots)
        for key, (length, digest) in expected_snapshots.items():
            snapshot_bits = record.snapshots[key].to_bits()
            assert len(snapshot_bits) == length, key
            assert _digest(snapshot_bits) == digest, key


class TestFastKernelTransparency:
    """The fast kernels (multiexp, pairing precomputation, projective
    Miller loop) must be invisible in the adversary's view: the pinned
    digests above are already exercised with the kernels active, and
    these tests additionally pin fast == reference and memory == socket
    byte-for-byte."""

    def _run(self, seed=1234, transport=None):
        scheme, rng, generation, p1, p2, channel, message, ciphertext = _setup(
            DLR, seed
        )
        wire = transport if transport is not None else channel
        record = scheme.run_period(p1, p2, wire, ciphertext)
        assert record.plaintext == message
        snapshot_digests = {
            key: _digest(snapshot.to_bits())
            for key, snapshot in record.snapshots.items()
        }
        return _digest(wire.transcript_bits(0)), snapshot_digests

    def test_reference_mode_transcript_identical(self):
        from repro.groups import fastops

        fast_transcript, fast_snapshots = self._run()
        with fastops.reference_mode():
            reference_transcript, reference_snapshots = self._run()
        assert fast_transcript == reference_transcript
        assert fast_snapshots == reference_snapshots

    def test_fast_transcript_matches_pinned_digest(self):
        transcript, _ = self._run()
        assert transcript == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        )

    def test_socket_wire_matches_pinned_digest(self):
        """Same seed over a real socket pair: the kernels do not perturb
        the framed byte stream either."""
        from repro.protocol.transport import SocketTransport

        transcript, snapshots = self._run(transport=SocketTransport(timeout=10.0))
        assert transcript == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        )
        _, memory_snapshots = self._run()
        assert snapshots == memory_snapshots


class TestBackendTransparency:
    """The field-arithmetic backend seam must be invisible too: the
    pinned seed-1234 transcript holds byte-for-byte under *every*
    backend this environment can instantiate (the CI gmpy2 leg makes
    the accelerated column mandatory)."""

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_transcript_matches_pinned_digest(self, backend_name):
        with use_backend(backend_name):
            scheme, rng, generation, p1, p2, channel, message, ciphertext = _setup(
                DLR, 1234
            )
            record = scheme.run_period(p1, p2, channel, ciphertext)
        assert record.plaintext == message
        assert _digest(channel.transcript_bits(0)) == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        ), backend_name

    def test_backend_columns_agree_on_snapshots(self):
        per_backend = {}
        for backend_name in available_backends():
            with use_backend(backend_name):
                scheme, rng, generation, p1, p2, channel, message, ciphertext = (
                    _setup(DLR, 77)
                )
                record = scheme.run_period(p1, p2, channel, ciphertext)
            per_backend[backend_name] = {
                key: _digest(snapshot.to_bits())
                for key, snapshot in record.snapshots.items()
            }
        reference = per_backend.pop("python")
        for backend_name, snapshots in per_backend.items():
            assert snapshots == reference, backend_name


class TestBatchTransparency:
    """The amortized batch APIs and the process pool must be invisible
    in the adversary's view too: ``encrypt_batch`` consumes the RNG
    stream exactly like an ``encrypt`` loop, ``run_period_multi`` with
    the shared pairing schedule pins the same transcript as before the
    batch kernels, and fanning the kernels across worker processes
    (``REPRO_JOBS=2``) changes nothing byte-for-byte."""

    PINNED_MULTI = (
        "fbc478ee956cda4ffefc4b9df58dd0ed9c0d6ec5660039af4d25e3974ce6d4a1"
    )

    def _multi_setup(self, scheme_cls=DLR, seed=7, count=3):
        group = preset_group(32)
        params = DLRParams(group=group, lam=32)
        scheme = scheme_cls(params)
        rng = random.Random(seed)
        generation = scheme.generate(rng)
        p1 = Device("P1", group, rng)
        p2 = Device("P2", group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()
        messages = [group.random_gt(rng) for _ in range(count)]
        ciphertexts = scheme.encrypt_batch(generation.public_key, messages, rng)
        return scheme, p1, p2, channel, messages, ciphertexts

    def test_encrypt_batch_matches_sequential_encrypts(self):
        scheme, rng, generation, *_ = _setup(DLR, 31)
        group = scheme.group
        messages = [group.random_gt(rng) for _ in range(4)]
        state = rng.getstate()
        batched = scheme.encrypt_batch(generation.public_key, messages, rng)
        rng.setstate(state)
        sequential = [
            scheme.encrypt(generation.public_key, m, rng) for m in messages
        ]
        assert batched == sequential

    def test_batch_period_matches_pinned_digest(self):
        scheme, p1, p2, channel, messages, ciphertexts = self._multi_setup()
        record = scheme.run_period_multi(p1, p2, channel, ciphertexts)
        assert list(record.plaintexts) == messages
        assert _digest(channel.transcript_bits()) == self.PINNED_MULTI

    def test_pool_active_transcript_identical(self):
        from repro.parallel import set_jobs, shutdown_pool

        scheme, p1, p2, channel, messages, ciphertexts = self._multi_setup()
        set_jobs(2)
        try:
            record = scheme.run_period_multi(p1, p2, channel, ciphertexts)
        finally:
            set_jobs(1)
            shutdown_pool()
        assert list(record.plaintexts) == messages
        assert _digest(channel.transcript_bits()) == self.PINNED_MULTI

    def test_pool_active_single_period_matches_pinned_digest(self):
        from repro.parallel import set_jobs, shutdown_pool

        scheme, rng, generation, p1, p2, channel, message, ciphertext = _setup(
            DLR, 1234
        )
        set_jobs(2)
        try:
            record = scheme.run_period(p1, p2, channel, ciphertext)
        finally:
            set_jobs(1)
            shutdown_pool()
        assert record.plaintext == message
        assert _digest(channel.transcript_bits(0)) == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        )

    def test_optimal_batch_round_trips(self):
        scheme, p1, p2, channel, messages, ciphertexts = self._multi_setup(
            OptimalDLR, seed=55
        )
        record = scheme.run_period_multi(p1, p2, channel, ciphertexts)
        assert list(record.plaintexts) == messages


class TestIBEGolden:
    def test_full_identity_lifecycle(self):
        group = preset_group(32)
        params = DLRParams(group=group, lam=32)
        scheme = DLRIBE(params, n_id=8)
        rng = random.Random(2024)
        setup = scheme.setup(rng)
        pp = setup.public_params
        p1 = Device("P1", group, rng)
        p2 = Device("P2", group, rng)
        scheme.install(p1, p2, setup.share1, setup.share2)
        channel = Channel()
        scheme.extract_protocol(pp, p1, p2, channel, "alice")
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt_to(pp, "alice", message, rng)
        assert (
            scheme.decrypt_protocol_id(p1, p2, channel, "alice", ciphertext)
            == message
        )
        scheme.refresh_identity_protocol(pp, p1, p2, channel, "alice")
        assert (
            scheme.decrypt_protocol_id(p1, p2, channel, "alice", ciphertext)
            == message
        )
        bits = channel.transcript_bits()
        assert len(bits) == 34921
        assert _digest(bits) == (
            "e2e7720edc01a04439ba801ccdb9ad1dd971538343b5e03e4fe5b62a6d1f1992"
        )
