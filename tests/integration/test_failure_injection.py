"""Failure injection: wrong wiring, tampered messages, misuse of the
memory discipline.  A production library must fail loudly (or garble
verifiably) rather than silently mis-decrypt.
"""

import random

import pytest

from repro.core.dlr import DLR, SK1_SLOT, SK2_SLOT, combine_decrypt
from repro.core.hpske import HPSKECiphertext
from repro.core.optimal import OptimalDLR
from repro.errors import GroupError, ProtocolError
from repro.protocol.channel import Channel
from repro.protocol.device import Device


@pytest.fixture()
def scheme(small_params):
    return DLR(small_params)


@pytest.fixture()
def setting(scheme):
    rng = random.Random(1)
    generation = scheme.generate(rng)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    return generation, p1, p2, Channel(), rng


class TestWrongWiring:
    def test_swapped_shares_detected(self, scheme, setting):
        """Installing Share2 where Share1 belongs raises, not garbles."""
        generation, p1, p2, channel, rng = setting
        q1 = Device("P1", scheme.group, rng)
        q2 = Device("P2", scheme.group, rng)
        q1.secret.store(SK1_SLOT, generation.share2)  # wrong type
        q2.secret.store(SK2_SLOT, generation.share1)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
        with pytest.raises(ProtocolError):
            scheme.decrypt_protocol(q1, q2, channel, ciphertext)

    def test_missing_share_detected(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        bare = Device("P2", scheme.group, rng)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
        with pytest.raises(ProtocolError):
            scheme.decrypt_protocol(p1, bare, channel, ciphertext)

    def test_shares_from_different_generations_garble(self, scheme, setting):
        """Mixing shares of two key pairs completes but yields garbage --
        the msk relation is broken, never silently 'fixed'."""
        generation, p1, p2, channel, rng = setting
        other = scheme.generate(random.Random(99))
        q1 = Device("P1", scheme.group, rng)
        q2 = Device("P2", scheme.group, rng)
        scheme.install(q1, q2, generation.share1, other.share2)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        assert scheme.decrypt_protocol(q1, q2, channel, ciphertext) != message

    def test_cross_group_elements_rejected(self, scheme, setting, toy_group):
        generation, p1, p2, channel, rng = setting
        foreign = toy_group.random_g(random.Random(1))
        with pytest.raises(GroupError):
            foreign * generation.share1.a[0]

    def test_optimal_devices_not_interchangeable_with_basic(self, small_params, setting):
        """An OptimalDLR P1 (no plain sk1 in memory) cannot serve the
        basic protocol."""
        scheme = DLR(small_params)
        generation, p1, p2, channel, rng = setting
        optimal = OptimalDLR(small_params)
        o1 = Device("P1", small_params.group, rng)
        o2 = Device("P2", small_params.group, rng)
        optimal.install(o1, o2, generation.share1, generation.share2)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
        with pytest.raises(ProtocolError):
            scheme.decrypt_protocol(o1, o2, channel, ciphertext)


class TestMessageTampering:
    """A man-in-the-middle flips protocol messages.  The paper's model
    assumes an authenticated channel (devices 'trust each other to follow
    the protocols'); these tests document what integrity failure costs:
    decryption garbles -- crucially *without* revealing secrets."""

    def _p1_decryption_inputs(self, scheme, setting):
        generation, p1, p2, channel, rng = setting
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        share1 = scheme.share1_of(p1)
        sk_comm = scheme.hpske_gt.keygen(p1.rng)
        d_list = tuple(
            scheme.hpske_gt.encrypt(sk_comm, scheme.group.pair(ciphertext.a, a_i), p1.rng)
            for a_i in share1.a
        )
        d_phi = scheme.hpske_gt.encrypt(
            sk_comm, scheme.group.pair(ciphertext.a, share1.phi), p1.rng
        )
        d_b = scheme.hpske_gt.encrypt(sk_comm, ciphertext.b, p1.rng)
        return message, sk_comm, d_list, d_phi, d_b, p2

    def test_tampered_d_vector_garbles_output(self, scheme, setting):
        message, sk_comm, d_list, d_phi, d_b, p2 = self._p1_decryption_inputs(scheme, setting)
        rng = random.Random(5)
        evil = scheme.group.random_gt(rng)
        tampered = (
            HPSKECiphertext(d_list[0].coins, d_list[0].body * evil),
        ) + d_list[1:]
        with p2.computing():
            response = combine_decrypt(scheme.share2_of(p2), tampered, d_phi, d_b)
        assert scheme.hpske_gt.decrypt(sk_comm, response) != message

    def test_tampered_response_garbles_output(self, scheme, setting):
        message, sk_comm, d_list, d_phi, d_b, p2 = self._p1_decryption_inputs(scheme, setting)
        with p2.computing():
            response = combine_decrypt(scheme.share2_of(p2), d_list, d_phi, d_b)
        rng = random.Random(6)
        tampered = HPSKECiphertext(
            response.coins, response.body * scheme.group.random_gt(rng)
        )
        assert scheme.hpske_gt.decrypt(sk_comm, tampered) != message

    def test_replayed_old_response_garbles(self, scheme, setting):
        """Replaying a response from an earlier decryption (different
        sk_comm) yields garbage, not the earlier plaintext."""
        generation, p1, p2, channel, rng = setting
        message1 = scheme.group.random_gt(rng)
        ct1 = scheme.encrypt(generation.public_key, message1, rng)
        scheme.decrypt_protocol(p1, p2, channel, ct1)
        old_response = channel.transcript()[-1].payload

        message2 = scheme.group.random_gt(rng)
        ct2 = scheme.encrypt(generation.public_key, message2, rng)
        share1 = scheme.share1_of(p1)
        sk_comm = scheme.hpske_gt.keygen(p1.rng)
        recovered = scheme.hpske_gt.decrypt(sk_comm, old_response)
        assert recovered != message1
        assert recovered != message2


class TestMemoryDiscipline:
    def test_double_erase_raises(self, scheme, setting):
        _, p1, _, _, _ = setting
        p1.secret.store("tmp", scheme.group.g)
        p1.secret.erase("tmp")
        with pytest.raises(ProtocolError):
            p1.secret.erase("tmp")

    def test_phase_left_open_is_detected(self, scheme, setting):
        _, p1, _, _, _ = setting
        p1.secret.open_phase("forgotten")
        with pytest.raises(ProtocolError):
            p1.secret.open_phase("another")
        p1.secret.close_phase()

    def test_refresh_after_tampered_state_does_not_crash_silently(self, scheme, setting):
        """If P1's share slot holds junk, refresh raises immediately."""
        generation, p1, p2, channel, rng = setting
        p1.secret.store(SK1_SLOT, b"corrupted")
        with pytest.raises(ProtocolError):
            scheme.refresh_protocol(p1, p2, channel)
