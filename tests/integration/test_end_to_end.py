"""End-to-end integration tests across the whole stack."""

import random

import pytest

from repro.analysis.games import Adversary, CCA2Adversary, CCA2CMLGame, CPACMLGame
from repro.cca.dlr_cca import DLRCCA2
from repro.core.dlr import DLR
from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.ibe.dlr_ibe import DLRIBE
from repro.leakage.functions import PrefixBits
from repro.leakage.oracle import LeakageBudget
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.storage.leaky_store import LeakyStore


class TestFullLifecycleMediumGroup:
    """A handful of checks at the 64-bit preset (closer to real sizes)."""

    def test_dlr_lifecycle(self, medium_params):
        rng = random.Random(1)
        scheme = OptimalDLR(medium_params)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        channel = Channel()
        scheme.install(p1, p2, generation.share1, generation.share2)
        for _ in range(2):
            message = scheme.group.random_gt(rng)
            ciphertext = scheme.encrypt(generation.public_key, message, rng)
            record = scheme.run_period(p1, p2, channel, ciphertext)
            assert record.plaintext == message

    def test_cross_scheme_share_compatibility(self, medium_params):
        """Shares produced by Gen work in both the basic and optimal
        protocol suites (they implement the same scheme)."""
        rng = random.Random(2)
        basic = DLR(medium_params)
        optimal = OptimalDLR(medium_params)
        generation = basic.generate(rng)
        message = basic.group.random_gt(rng)
        ciphertext = basic.encrypt(generation.public_key, message, rng)

        b1 = Device("P1", basic.group, rng)
        b2 = Device("P2", basic.group, rng)
        basic.install(b1, b2, generation.share1, generation.share2)
        assert basic.decrypt_protocol(b1, b2, Channel(), ciphertext) == message

        o1 = Device("P1", basic.group, rng)
        o2 = Device("P2", basic.group, rng)
        optimal.install(o1, o2, generation.share1, generation.share2)
        assert optimal.decrypt_protocol(o1, o2, Channel(), ciphertext) == message


class TestGameWithLeakageEveryPhase:
    """Leakage at generation, every period (normal + refresh), for both
    devices -- all budget paths exercised in one run."""

    def test_full_leakage_schedule(self, small_params):
        scheme = OptimalDLR(small_params)
        budget = LeakageBudget(16, 64, 64)

        class EverywhereAdversary(Adversary):
            def generation_leakage(self):
                return PrefixBits(16)

            def period_functions(self, period):
                if period >= 3:
                    return None
                # 16 + 16 + carried 16 = 48 <= 64: sustainable forever.
                return (PrefixBits(16), PrefixBits(16), PrefixBits(16), PrefixBits(16))

        game = CPACMLGame(scheme, budget, random.Random(3))
        result = game.run(EverywhereAdversary(random.Random(4)))
        assert not result.aborted
        assert result.periods == 3


class TestDIBEWithStorage:
    def test_dibe_and_store_share_group(self, small_params):
        """Multiple subsystems coexisting over one group instance."""
        rng = random.Random(5)
        dibe = DLRIBE(small_params, n_id=4)
        setup = dibe.setup(rng)
        p1 = Device("P1", dibe.group, rng)
        p2 = Device("P2", dibe.group, rng)
        channel = Channel()
        dibe.install(p1, p2, setup.share1, setup.share2)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "device-42")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "device-42", message, rng)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "device-42", ct) == message

        store = LeakyStore(small_params, rng)
        handle = store.store_element("session-key", message)
        store.refresh()
        assert store.retrieve_element(handle) == message


class TestCCA2Game:
    def test_oracle_used_and_challenge_refused(self, small_params):
        cca = DLRCCA2(small_params, n_id=4)
        game = CCA2CMLGame(cca, LeakageBudget(0, 64, 64), random.Random(6), max_periods=1)

        class ProbingAdversary(CCA2Adversary):
            oracle_worked = False
            challenge_refused = False

            def period_functions(self, period):
                if period >= 1:
                    return None
                return (PrefixBits(8), PrefixBits(8), PrefixBits(8), PrefixBits(8))

            def guess_cca(self, challenge, m0, m1):
                own = cca.encrypt(self.setup, m0, self.rng)
                type(self).oracle_worked = self.oracle(own) == m0
                try:
                    self.oracle(challenge)
                except Exception:
                    type(self).challenge_refused = True
                return self.rng.getrandbits(1)

        result = game.run(ProbingAdversary(random.Random(7)))
        assert not result.aborted
        assert ProbingAdversary.oracle_worked
        assert ProbingAdversary.challenge_refused


class TestParameterSweeps:
    @pytest.mark.parametrize("lam", [16, 48, 96])
    def test_dlr_works_across_lambda(self, small_group, lam):
        rng = random.Random(lam)
        params = DLRParams(group=small_group, lam=lam)
        scheme = OptimalDLR(params)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        assert scheme.decrypt_protocol(p1, p2, Channel(), ciphertext) == message
