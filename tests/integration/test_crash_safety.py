"""Crash safety: a protocol killed at any message boundary must leave
the two devices with consistent shares and no lingering protocol
secrets.

The staged share rotation commits only at the ``ref.commit`` boundary;
everything earlier rolls back.  These tests drive :class:`FaultyChannel`
through every boundary of the decryption and refresh flows and check
the invariants the leakage model depends on:

* ``verify_shares`` succeeds after any abort (the shares still match);
* the abort surfaces as :class:`RefreshAborted` when a rotation was
  staged, as the injected fault otherwise;
* no protocol secret (``*.sk_comm``, ``*.a_next``, pending shares)
  survives in secret memory after the protocol exits;
* ``run_period_resilient`` completes the period on the retry.

The whole suite runs twice: over the in-memory transport and over a
real :class:`SocketTransport` with P1 and P2 in separate threads (a
dying party closes its endpoint; the peer's blocking read surfaces the
abort) -- the ``make_faulty`` fixture picks the wire.
"""

import random

import pytest

from repro.core.dlr import DLR, SK1_PENDING_SLOT, SK1_SLOT, SK2_PENDING_SLOT, SK2_SLOT
from repro.core.optimal import OptimalDLR
from repro.errors import FaultInjected, ProtocolError, RefreshAborted
from repro.leakage.functions import LeakageInput, PythonLeakage
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.protocol.faults import (
    DELAY,
    DROP,
    PERIOD_BOUNDARIES,
    REFRESH_BOUNDARIES,
    TRUNCATE,
    FaultRule,
    FaultyTransport,
)
from repro.protocol.transport import SocketTransport
from repro.utils.bits import BitString

PROTOCOL_SECRET_SUFFIXES = (".sk_comm", ".a_next", ".pending", ".delta", ".r")


@pytest.fixture(params=["memory", "socket"])
def make_faulty(request):
    """A factory for fault-injecting transports over both wires."""

    def factory(*rules: FaultRule) -> FaultyTransport:
        inner = SocketTransport(timeout=10.0) if request.param == "socket" else None
        transport = FaultyTransport(inner=inner)
        for rule in rules:
            transport.add_rule(rule)
        return transport

    return factory


def protocol_secret_names(device: Device) -> list[str]:
    """Secret-memory slots that belong to a protocol run, not a share."""
    return [
        name
        for name in device.secret.names()
        if name.endswith(PROTOCOL_SECRET_SUFFIXES) or name == "sk_comm_next"
    ]


@pytest.fixture()
def scheme(small_params):
    return DLR(small_params)


def make_setting(scheme, seed=1):
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    return generation, p1, p2, rng


class TestEveryBoundary:
    @pytest.mark.parametrize("label", PERIOD_BOUNDARIES)
    @pytest.mark.parametrize("mode", [DROP, TRUNCATE])
    def test_fault_rolls_back_and_shares_still_verify(self, scheme, label, mode, make_faulty):
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty(FaultRule(mode=mode, label=label, keep_bits=4))
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )

        with pytest.raises(ProtocolError) as info:
            scheme.run_period(p1, p2, channel, ciphertext)

        # A fault after P2 staged its new share is a rolled-back
        # rotation; before that it is just the injected fault.
        if label in ("ref.f_combined", "ref.commit"):
            assert isinstance(info.value, RefreshAborted)
            assert isinstance(info.value.__cause__, FaultInjected)
        else:
            assert isinstance(info.value, FaultInjected)

        # Old shares are intact and mutually consistent.
        assert not p1.secret.has(SK1_PENDING_SLOT)
        assert not p2.secret.has(SK2_PENDING_SLOT)
        assert scheme.share1_of(p1) is generation.share1
        assert scheme.share2_of(p2) is generation.share2
        assert scheme.verify_shares(generation.public_key, p1, p2, Channel(), rng)

        # No protocol secret outlived the aborted period.
        assert protocol_secret_names(p1) == []
        assert protocol_secret_names(p2) == []
        assert not p1.secret.phase_open
        assert not p2.secret.phase_open

    @pytest.mark.parametrize("label", PERIOD_BOUNDARIES)
    def test_post_abort_snapshots_hold_no_protocol_secrets(self, scheme, label, make_faulty):
        """A snapshot of a phase opened *after* the abort sees only the
        (rolled-back) share -- the leakage surface of a fresh period."""
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty(FaultRule(mode=DROP, label=label))
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        with pytest.raises(ProtocolError):
            scheme.run_period(p1, p2, channel, ciphertext)

        snap1 = p1.secret.open_phase("post-abort")
        snap2 = p2.secret.open_phase("post-abort")
        p1.secret.close_phase()
        p2.secret.close_phase()
        assert snap1.names() == [SK1_SLOT]
        assert snap2.names() == [SK2_SLOT]

    def test_aborted_exception_carries_chargeable_snapshots(self, scheme, make_faulty):
        """The refresh-phase snapshot of an aborted period is still a
        leakage surface; RefreshAborted hands it to the game."""
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty(FaultRule(mode=DROP, label="ref.commit"))
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        with pytest.raises(RefreshAborted) as info:
            scheme.run_period(p1, p2, channel, ciphertext)
        assert info.value.period == 0
        assert (1, "normal") in info.value.snapshots
        assert (2, "refresh") in info.value.snapshots


class TestResilientDriver:
    @pytest.mark.parametrize("label", REFRESH_BOUNDARIES)
    def test_completes_on_retry_after_one_fault(self, scheme, label, make_faulty):
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty(FaultRule(mode=DROP, label=label))
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)

        record = scheme.run_period_resilient(p1, p2, channel, ciphertext)
        assert record.plaintext == message
        # The rotation did go through on the successful attempt.
        assert scheme.share1_of(p1) is not generation.share1
        assert scheme.verify_shares(generation.public_key, p1, p2, Channel(), rng)

    def test_gives_up_after_max_attempts(self, scheme, make_faulty):
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty()
        for occurrence in range(1, 4):  # one fault per attempt
            channel.add_rule(
                FaultRule(mode=DROP, label="ref.f", occurrence=occurrence)
            )
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        with pytest.raises(ProtocolError, match="did not complete"):
            scheme.run_period_resilient(p1, p2, channel, ciphertext, max_attempts=3)
        # Even after exhausting retries the shares are consistent.
        assert scheme.verify_shares(generation.public_key, p1, p2, Channel(), rng)

    def test_invalid_max_attempts(self, scheme):
        generation, p1, p2, rng = make_setting(scheme)
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        with pytest.raises(ProtocolError):
            scheme.run_period_resilient(p1, p2, Channel(), ciphertext, max_attempts=0)


class TestMultiPeriodSoak:
    def test_random_fault_schedule(self, scheme, make_faulty):
        """Many periods under a random mix of drops, truncations and
        delays: every failed period rolls back, every completed period
        decrypts correctly, and the shares verify throughout."""
        generation, p1, p2, rng = make_setting(scheme, seed=7)
        fault_rng = random.Random(42)
        channel = make_faulty()
        completed = 0
        failed = 0

        for _ in range(12):
            if fault_rng.random() < 0.6:
                label = fault_rng.choice(PERIOD_BOUNDARIES)
                mode = fault_rng.choice([DROP, TRUNCATE, DELAY])
                channel.add_rule(
                    FaultRule(mode=mode, label=label, keep_bits=8, delay_ticks=1)
                )
            message = scheme.group.random_gt(rng)
            ciphertext = scheme.encrypt(generation.public_key, message, rng)
            try:
                record = scheme.run_period(p1, p2, channel, ciphertext)
            except ProtocolError:
                failed += 1
                channel.clear_rules()
            else:
                completed += 1
                assert record.plaintext == message
            assert protocol_secret_names(p1) == []
            assert protocol_secret_names(p2) == []

        assert completed > 0 and failed > 0  # the schedule exercised both
        assert scheme.verify_shares(generation.public_key, p1, p2, Channel(), rng)

    def test_refresh_protocol_standalone_rollback(self, scheme, make_faulty):
        """The bare refresh protocol (not run_period) also rolls back."""
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty(FaultRule(mode=DROP, label="ref.commit"))
        with pytest.raises(RefreshAborted):
            scheme.refresh_protocol(p1, p2, channel)
        assert scheme.share1_of(p1) is generation.share1
        scheme.refresh_protocol(p1, p2, channel)  # rule spent: succeeds
        assert scheme.share1_of(p1) is not generation.share1
        assert scheme.verify_shares(generation.public_key, p1, p2, Channel(), rng)

    def test_run_period_multi_rolls_back(self, scheme, make_faulty):
        generation, p1, p2, rng = make_setting(scheme)
        channel = make_faulty(FaultRule(mode=DROP, label="ref.f_combined"))
        messages = [scheme.group.random_gt(rng) for _ in range(2)]
        cts = [scheme.encrypt(generation.public_key, m, rng) for m in messages]
        with pytest.raises(RefreshAborted):
            scheme.run_period_multi(p1, p2, channel, cts)
        assert scheme.share2_of(p2) is generation.share2
        record = scheme.run_period_multi(p1, p2, channel, cts)
        assert record.plaintexts == messages


class TestOptimalVariant:
    @pytest.mark.parametrize("label", REFRESH_BOUNDARIES)
    def test_refresh_fault_rolls_back(self, small_params, label, make_faulty):
        scheme = OptimalDLR(small_params)
        rng = random.Random(3)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        old_encrypted = scheme.encrypted_share_of(p1)
        old_share2 = scheme.share2_of(p2)

        channel = make_faulty(FaultRule(mode=DROP, label=label))
        with pytest.raises((RefreshAborted, FaultInjected)):
            scheme.refresh_protocol(p1, p2, channel)

        # Neither the public encrypted share nor P2's share moved, and
        # sk_comm still decrypts the public share.
        assert scheme.encrypted_share_of(p1) is old_encrypted
        assert scheme.share2_of(p2) is old_share2
        assert protocol_secret_names(p1) == []
        recovered = scheme.recover_share1(p1)
        assert recovered.a == generation.share1.a
        assert recovered.phi == generation.share1.phi

        # And the next refresh (rule spent) completes.
        scheme.refresh_protocol(p1, p2, channel)
        assert scheme.encrypted_share_of(p1) is not old_encrypted


class TestIdentityRefreshRollback:
    def test_identity_fault_rolls_back(self, small_params, make_faulty):
        from repro.ibe.dlr_ibe import DLRIBE, _id_slot

        dibe = DLRIBE(small_params, n_id=8)
        rng = random.Random(5)
        setup = dibe.setup(rng)
        p1 = Device("P1", dibe.group, rng)
        p2 = Device("P2", dibe.group, rng)
        channel = make_faulty()
        dibe.install(p1, p2, setup.share1, setup.share2)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        old1 = dibe.identity_share1_of(p1, "alice")
        old2 = dibe.identity_share2_of(p2, "alice")

        channel.add_rule(FaultRule(mode=DROP, label="idref.commit"))
        with pytest.raises(RefreshAborted):
            dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")

        assert dibe.identity_share1_of(p1, "alice") is old1
        assert dibe.identity_share2_of(p2, "alice") is old2
        assert not p1.secret.has(_id_slot(1, "alice") + ".pending")
        assert not p2.secret.has(_id_slot(2, "alice") + ".pending")
        assert protocol_secret_names(p1) == []

        # Rule spent: the refresh completes and the shares still decrypt.
        dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")
        message = dibe.group.random_gt(rng)
        ct = dibe.encrypt_to(setup.public_params, "alice", message, rng)
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ct) == message


class TestOracleValidation:
    def _leak_input(self, scheme):
        generation, p1, p2, rng = make_setting(scheme)
        ciphertext = scheme.encrypt(
            generation.public_key, scheme.group.random_gt(rng), rng
        )
        record = scheme.run_period(p1, p2, Channel(), ciphertext)
        return LeakageInput(record.snapshots[(1, "normal")], record.messages)

    def test_bad_device_index_raises_parameter_error(self, scheme):
        from repro.errors import ParameterError

        oracle = LeakageOracle(LeakageBudget(0, 8, 8))
        leak_input = self._leak_input(scheme)
        fn = PythonLeakage(lambda inp: BitString(1, 1), 1)
        with pytest.raises(ParameterError):
            oracle.leak(3, fn, leak_input)
        with pytest.raises(ParameterError):
            oracle.leak_refresh(0, fn, leak_input)

    def test_under_length_output_rejected(self, scheme):
        """A function returning fewer bits than declared would corrupt
        the carry-over accounting: reject it."""
        from repro.errors import ParameterError

        oracle = LeakageOracle(LeakageBudget(0, 8, 8))
        leak_input = self._leak_input(scheme)
        lying = PythonLeakage(lambda inp: BitString(1, 1), 4)  # declares 4, returns 1
        with pytest.raises(ParameterError):
            oracle.leak(1, lying, leak_input)
        with pytest.raises(ParameterError):
            oracle.leak_refresh(2, lying, leak_input)

    def test_exact_length_accepted(self, scheme):
        oracle = LeakageOracle(LeakageBudget(0, 8, 8))
        leak_input = self._leak_input(scheme)
        honest = PythonLeakage(lambda inp: BitString(0b101, 3), 3)
        assert len(oracle.leak(1, honest, leak_input)) == 3
