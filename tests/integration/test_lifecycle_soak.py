"""Long-horizon soak test: many observed periods, all subsystems active.

20 time periods over one key pair: every period decrypts background
traffic, leaks at the theorem budget on both devices in both phases,
refreshes, and health-checks.  At the end the very first ciphertext
still decrypts, the leakage totals dwarf the secret-state size, and no
invariant has drifted.
"""

import random

import pytest

from repro.core.optimal import OptimalDLR
from repro.leakage.functions import LeakageInput, PrefixBits
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.channel import Channel
from repro.protocol.device import Device

PERIODS = 20


class TestLifecycleSoak:
    @pytest.fixture(scope="class")
    def soak(self, small_params):
        scheme = OptimalDLR(small_params)
        rng = random.Random(2012)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        channel = Channel()
        scheme.install(p1, p2, generation.share1, generation.share2)

        budget = LeakageBudget(
            0, small_params.theorem_b1(), small_params.theorem_b2()
        )
        oracle = LeakageOracle(budget)
        # Steady state under the Def 3.2 carry: carried + normal + refresh
        # <= b, so equal thirds are sustainable forever.
        half1, half2 = budget.b1 // 3, budget.b2 // 3

        first_message = scheme.group.random_gt(rng)
        first_ciphertext = scheme.encrypt(generation.public_key, first_message, rng)

        plaintext_errors = 0
        for period in range(PERIODS):
            message = scheme.group.random_gt(rng)
            ciphertext = scheme.encrypt(generation.public_key, message, rng)
            record = scheme.run_period(p1, p2, channel, ciphertext)
            if record.plaintext != message:
                plaintext_errors += 1
            oracle.leak(
                1, PrefixBits(half1),
                LeakageInput(record.snapshots[(1, "normal")], record.messages),
            )
            oracle.leak_refresh(
                1, PrefixBits(half1),
                LeakageInput(record.snapshots[(1, "refresh")], record.messages),
            )
            oracle.leak(
                2, PrefixBits(half2),
                LeakageInput(record.snapshots[(2, "normal")], record.messages),
            )
            oracle.leak_refresh(
                2, PrefixBits(half2),
                LeakageInput(record.snapshots[(2, "refresh")], record.messages),
            )
            oracle.end_period()
        return {
            "scheme": scheme,
            "generation": generation,
            "p1": p1,
            "p2": p2,
            "channel": channel,
            "oracle": oracle,
            "rng": rng,
            "first_message": first_message,
            "first_ciphertext": first_ciphertext,
            "plaintext_errors": plaintext_errors,
        }

    def test_no_decryption_errors_over_lifetime(self, soak):
        assert soak["plaintext_errors"] == 0

    def test_first_ciphertext_still_decrypts(self, soak):
        plaintext = soak["scheme"].decrypt_protocol(
            soak["p1"], soak["p2"], soak["channel"], soak["first_ciphertext"]
        )
        assert plaintext == soak["first_message"]

    def test_total_leakage_exceeds_state_size(self, soak, small_params):
        """Unbounded total leakage, the point of the continual model."""
        oracle = soak["oracle"]
        total = oracle.total_leaked_bits[1] + oracle.total_leaked_bits[2]
        state = small_params.sk_comm_bits() + small_params.sk2_bits()
        assert total > 5 * state

    def test_health_check_passes(self, soak):
        assert soak["scheme"].verify_shares(
            soak["generation"].public_key,
            soak["p1"],
            soak["p2"],
            soak["channel"],
            soak["rng"],
        )

    def test_no_transient_slots_left(self, soak, small_params):
        assert soak["p1"].secret.names() == ["sk_comm"]
        assert soak["p2"].secret.names() == ["sk2"]
        assert soak["p1"].secret.size_bits() == small_params.sk_comm_bits()

    def test_periods_counted(self, soak):
        # PERIODS run_period calls + the verify/decrypt calls afterwards.
        assert soak["oracle"].period == PERIODS
        assert soak["channel"].current_period == PERIODS
