"""End-to-end telemetry over a supervised lifecycle.

One supervised multi-period run with the tracer, the metrics registry,
and the leakage oracle all attached must produce:

* a trace whose spans nest period -> attempt -> protocol -> step;
* per-label bit counts that reconcile *exactly* across the three
  ledgers -- trace spans, registry counters, transport transcript --
  with the single principled exception of a dropped frame (recorded by
  the engine at the send boundary, never delivered to the wire);
* a budget dashboard whose every number is a view over the oracle's
  ledgers, not a second tally.

And, the other way around: enabling telemetry must not perturb the
protocols -- the golden transcripts stay byte-identical.
"""

import hashlib
import json
import random

import pytest

from repro.core.dlr import DLR
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.protocol.faults import DROP, FaultRule, FaultyTransport
from repro.protocol.transport import InMemoryTransport
from repro.runtime import OK, RETRY, RetryPolicy, SessionSupervisor
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    budget_dashboard,
    install_registry,
    install_tracer,
    metering,
    tracing,
    validate_trace_file,
)


class SupervisedRun:
    """One supervised DLR lifecycle, fully instrumented, run once."""

    PERIODS = 3
    FAULT_PERIOD = 1

    def __init__(self, params):
        scheme = DLR(params)
        generation = scheme.generate(random.Random(1))
        self.transport = FaultyTransport(inner=InMemoryTransport(), seed=0)
        # Drop period 1's first refresh frame: the supervisor charges the
        # failed attempt's wire bits to the oracle and retries.
        self.transport.add_rule(
            FaultRule(mode=DROP, label="ref.f", period=self.FAULT_PERIOD)
        )
        self.oracle = LeakageOracle(LeakageBudget(0, 10**6, 10**6))
        supervisor = SessionSupervisor.start(
            scheme,
            self.transport,
            public_key=generation.public_key,
            share1=generation.share1,
            share2=generation.share2,
            periods=self.PERIODS,
            seed=5,
            oracle=self.oracle,
            policy=RetryPolicy(base_backoff=0.0, jitter=0.0),
        )
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        previous = install_tracer(self.tracer)
        install_registry(self.registry)
        try:
            self.result = supervisor.run()
        finally:
            install_registry(None)
            install_tracer(previous)

    def spans_named(self, prefix):
        return [s for s in self.tracer.finished if s.name.startswith(prefix)]

    def by_id(self):
        return {s.span_id: s for s in self.tracer.finished}

    def trace_bits_by_label(self):
        """Per-label bit totals as the *trace* saw them (send spans)."""
        totals = {}
        for span in self.spans_named("step.send"):
            label = span.attrs["label"]
            totals[label] = totals.get(label, 0) + span.attrs["bits"]
        return totals


@pytest.fixture(scope="module")
def run(small_params):
    return SupervisedRun(small_params)


class TestSpanNesting:
    def test_periods_are_roots(self, run):
        periods = run.spans_named("period")
        assert [s.attrs["period"] for s in periods] == [0, 1, 2]
        assert all(s.parent_id is None for s in periods)
        assert all(s.attrs["scheme"] == "dlr" for s in periods)

    def test_attempts_nest_under_their_period(self, run):
        by_id = run.by_id()
        for span in run.spans_named("attempt"):
            parent = by_id[span.parent_id]
            assert parent.name == "period"
            assert parent.attrs["period"] == span.attrs["period"]

    def test_protocol_runs_nest_under_attempts(self, run):
        by_id = run.by_id()
        protocols = run.spans_named("protocol.")
        # One engine run per attempt: 3 periods + 1 retry.
        assert len(protocols) == run.PERIODS + 1
        assert {s.name for s in protocols} == {"protocol.dlr.period"}
        for span in protocols:
            assert by_id[span.parent_id].name == "attempt"

    def test_steps_nest_under_protocol_runs(self, run):
        by_id = run.by_id()
        steps = run.spans_named("step.")
        assert steps, "engine emitted no step spans"
        assert {by_id[s.parent_id].name for s in steps} == {"protocol.dlr.period"}
        assert {s.name for s in steps} >= {"step.send", "step.recv", "step.commit"}

    def test_scheme_spans_ride_inside_attempts(self, run):
        by_id = run.by_id()
        encrypts = run.spans_named("dlr.enc")
        assert len(encrypts) == run.PERIODS + 1  # one per attempt
        assert {by_id[s.parent_id].name for s in encrypts} == {"attempt"}


class TestAttemptOutcomes:
    def test_faulted_period_retries_then_succeeds(self, run):
        attempts = [
            s
            for s in run.spans_named("attempt")
            if s.attrs["period"] == run.FAULT_PERIOD
        ]
        assert [s.attrs["outcome"] for s in attempts] == [RETRY, OK]
        retry = attempts[0]
        assert retry.attrs["fault"] == "FaultInjected"
        assert retry.attrs["classification"] == "transient"
        assert retry.attrs["backoff_seconds"] == 0.0

    def test_clean_periods_take_one_attempt(self, run):
        for period in (0, 2):
            attempts = [
                s for s in run.spans_named("attempt") if s.attrs["period"] == period
            ]
            assert [s.attrs["outcome"] for s in attempts] == [OK]


class TestBitReconciliation:
    def test_trace_and_registry_agree_exactly(self, run):
        """Both views are fed from the same engine steps; any drift is a
        double-count bug."""
        registry_totals = {
            labels["label"]: counter.value
            for labels, counter in run.registry.counters_named("engine.bits_on_wire")
        }
        assert run.trace_bits_by_label() == registry_totals

    def test_transport_agrees_except_the_dropped_frame(self, run):
        """The engine records a send at the boundary; the faulty
        transport then drops it before the wire.  So the trace exceeds
        the transcript by exactly one ref.f frame -- and on no other
        label by a single bit."""
        traced = run.trace_bits_by_label()
        on_wire = run.transport.bits_by_label()
        assert set(traced) == set(on_wire)
        for label in traced:
            if label == "ref.f":
                continue
            assert traced[label] == on_wire[label], label
        dropped = traced["ref.f"] - on_wire["ref.f"]
        assert dropped > 0
        # The successful attempts put PERIODS+1 ref.f frames in the
        # trace but only PERIODS on the wire; frames are equal-sized.
        assert dropped * (run.PERIODS + 1) == traced["ref.f"]

    def test_attempt_spans_account_for_the_wire_delta(self, run):
        """Each attempt span's ``bits`` is the transcript growth during
        that attempt; summing them per period recovers the transport's
        per-period totals."""
        for period in range(run.PERIODS):
            attempts = [
                s for s in run.spans_named("attempt") if s.attrs["period"] == period
            ]
            assert sum(s.attrs["bits"] for s in attempts) == (
                run.transport.bits_on_wire(period)
            )


class TestBudgetReconciliation:
    def test_dashboard_mirrors_the_oracle_ledgers(self, run):
        dash = budget_dashboard(run.oracle)
        assert dash["period"] == run.PERIODS  # rolled once per commit
        for device in (1, 2):
            row = dash["devices"][f"P{device}"]
            assert row["retry_bits_total"] == run.oracle.retry_charged(device=device)
            assert row["remaining"] == run.oracle.remaining(device)

    def test_retry_charges_match_the_attempt_record(self, run):
        (retried,) = run.result.log.retried()
        assert retried.period == run.FAULT_PERIOD
        charged = run.oracle.retry_charged(period=run.FAULT_PERIOD, device=1)
        assert charged == retried.charged_bits["P1"] > 0
        assert run.oracle.retry_ledger == {
            run.FAULT_PERIOD: {1: charged, 2: charged}
        }
        # The charge is the failed attempt's wire bits, verbatim.
        retry_span = next(
            s
            for s in run.spans_named("attempt")
            if s.attrs["period"] == run.FAULT_PERIOD and s.attrs["outcome"] == RETRY
        )
        assert retry_span.attrs["bits"] == charged

    def test_period_summaries_embed_reconciled_metrics(self, run):
        for summary in run.result.log.periods:
            metrics = summary.metrics
            assert metrics["bits_by_label"] == run.transport.bits_by_label(
                summary.period
            )
            assert sum(metrics["bits_by_label"].values()) == summary.bits_on_wire
            expected = (
                run.oracle.retry_charged(period=summary.period, device=1)
                if summary.period == run.FAULT_PERIOD
                else 0
            )
            assert metrics["retry_charged_bits"] == {
                "P1": expected,
                "P2": expected,
            }
            # The embedded dashboard was taken before the period rolled.
            assert metrics["budget"]["period"] == summary.period

    def test_leaked_bits_counters_live_in_the_oracle_registry(self, run):
        retry_total = sum(
            counter.value
            for _, counter in run.oracle.metrics.counters_named("leakage.retry_bits")
        )
        assert retry_total == sum(
            run.oracle.retry_charged(device=device) for device in (1, 2)
        )


class TestTraceExport:
    def test_jsonl_roundtrips_through_the_validator(self, run, tmp_path):
        path = tmp_path / "supervised.jsonl"
        run.tracer.export_jsonl(path)
        spans = validate_trace_file(path)
        assert len(spans) == len(run.tracer.finished)
        names = {s["name"] for s in spans}
        assert {"period", "attempt", "protocol.dlr.period", "step.send"} <= names
        header = json.loads(path.read_text().splitlines()[0])
        assert header["record"] == "trace-header"


class TestGoldenTranscriptsWithTelemetry:
    """Telemetry observes; it must never perturb.  The golden DLR
    transcript (seed 1234) stays byte-identical with the tracer and the
    registry both live."""

    def test_dlr_golden_period_unchanged(self):
        group = preset_group(32)
        params = DLRParams(group=group, lam=32)
        scheme = DLR(params)
        rng = random.Random(1234)
        generation = scheme.generate(rng)
        p1 = Device("P1", group, rng)
        p2 = Device("P2", group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)

        with tracing() as tracer, metering() as registry:
            record = scheme.run_period(p1, p2, channel, ciphertext)

        assert record.plaintext == message
        bits = channel.transcript_bits(0)
        assert len(bits) == 17535
        assert hashlib.sha256(bits.to_bytes()).hexdigest() == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        )
        # And the observers saw the whole run, exactly.
        assert {
            labels["label"]: counter.value
            for labels, counter in registry.counters_named("engine.bits_on_wire")
        } == channel.bits_by_label(0)
        (protocol_span,) = tracer.spans_named("protocol.dlr.period")
        assert protocol_span.attrs["bits_on_wire"] == 17535

    def test_telemetry_teardown_restores_the_null_tracer(self):
        from repro.telemetry import NULL_TRACER, active_registry, active_tracer

        assert active_tracer() is NULL_TRACER
        assert active_registry() is None
