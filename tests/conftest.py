"""Shared fixtures.

Group sizes: ``toy`` (16-bit order) is for exhaustive / statistical
tests, ``small`` (32-bit) for protocol tests, ``medium`` (64-bit) for a
handful of end-to-end checks at a more realistic size.  All are
deterministic presets, cached per session.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import DLRParams
from repro.groups import preset_group


@pytest.fixture(scope="session")
def toy_group():
    return preset_group(16)


@pytest.fixture(scope="session")
def small_group():
    return preset_group(32)


@pytest.fixture(scope="session")
def medium_group():
    return preset_group(64)


@pytest.fixture(scope="session")
def toy_params(toy_group):
    return DLRParams(group=toy_group, lam=16)


@pytest.fixture(scope="session")
def small_params(small_group):
    return DLRParams(group=small_group, lam=32)


@pytest.fixture(scope="session")
def medium_params(medium_group):
    return DLRParams(group=medium_group, lam=128)


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)


def make_rng(seed: int = 0) -> random.Random:
    return random.Random(seed)
