"""Unit tests for modular arithmetic primitives."""

import random

import pytest

from repro.errors import ParameterError
from repro.math.modular import (
    batch_inv,
    crt_pair,
    inv_mod,
    is_quadratic_residue,
    legendre_symbol,
    sqrt_mod,
)

PRIMES = [3, 7, 11, 101, 65537, 2**61 - 1]


class TestInvMod:
    @pytest.mark.parametrize("p", PRIMES)
    def test_inverse_roundtrip(self, p):
        rng = random.Random(1)
        for _ in range(20):
            a = rng.randrange(1, p)
            assert a * inv_mod(a, p) % p == 1

    def test_zero_not_invertible(self):
        with pytest.raises(ParameterError):
            inv_mod(0, 7)

    def test_multiple_of_modulus_not_invertible(self):
        with pytest.raises(ParameterError):
            inv_mod(14, 7)

    def test_negative_input_reduced(self):
        assert (-3) * inv_mod(-3, 11) % 11 == 1


class TestLegendre:
    def test_known_values_mod_7(self):
        # Squares mod 7: 1, 2, 4.
        assert legendre_symbol(1, 7) == 1
        assert legendre_symbol(2, 7) == 1
        assert legendre_symbol(4, 7) == 1
        assert legendre_symbol(3, 7) == -1
        assert legendre_symbol(5, 7) == -1
        assert legendre_symbol(6, 7) == -1

    def test_zero(self):
        assert legendre_symbol(0, 11) == 0
        assert legendre_symbol(22, 11) == 0

    @pytest.mark.parametrize("p", PRIMES[1:])
    def test_multiplicativity(self, p):
        rng = random.Random(2)
        for _ in range(10):
            a, b = rng.randrange(1, p), rng.randrange(1, p)
            assert legendre_symbol(a * b, p) == legendre_symbol(a, p) * legendre_symbol(b, p)

    def test_squares_are_residues(self):
        p = 101
        for a in range(1, p):
            assert is_quadratic_residue(a * a % p, p)

    def test_half_are_residues(self):
        p = 101
        residues = sum(1 for a in range(1, p) if is_quadratic_residue(a, p))
        assert residues == (p - 1) // 2


class TestSqrtMod:
    @pytest.mark.parametrize("p", [7, 11, 101, 2**61 - 1])
    def test_sqrt_of_squares_p3mod4(self, p):
        if p % 4 != 3:
            pytest.skip("3 mod 4 path")
        rng = random.Random(3)
        for _ in range(20):
            a = rng.randrange(1, p)
            root = sqrt_mod(a * a % p, p)
            assert root * root % p == a * a % p

    @pytest.mark.parametrize("p", [13, 17, 97, 65537])
    def test_sqrt_tonelli_shanks_p1mod4(self, p):
        assert p % 4 == 1
        rng = random.Random(4)
        for _ in range(20):
            a = rng.randrange(1, p)
            square = a * a % p
            root = sqrt_mod(square, p)
            assert root * root % p == square

    def test_sqrt_of_zero(self):
        assert sqrt_mod(0, 7) == 0

    def test_non_residue_raises(self):
        with pytest.raises(ParameterError):
            sqrt_mod(3, 7)

    def test_exhaustive_small_prime(self):
        p = 43  # 43 = 3 mod 4
        squares = {a * a % p for a in range(1, p)}
        for square in squares:
            root = sqrt_mod(square, p)
            assert root * root % p == square


class TestCRT:
    def test_basic(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2
        assert x % 5 == 3
        assert 0 <= x < 15

    def test_random(self):
        rng = random.Random(5)
        m1, m2 = 101, 103
        for _ in range(20):
            r1, r2 = rng.randrange(m1), rng.randrange(m2)
            x = crt_pair(r1, m1, r2, m2)
            assert x % m1 == r1
            assert x % m2 == r2

    def test_non_coprime_raises(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 6, 2, 9)


class TestBatchInv:
    @pytest.mark.parametrize("p", PRIMES)
    def test_matches_inv_mod(self, p):
        rng = random.Random(p)
        values = [rng.randrange(1, p) for _ in range(min(50, p - 1))]
        assert batch_inv(values, p) == [inv_mod(v, p) for v in values]

    def test_single_element(self):
        assert batch_inv([3], 7) == [inv_mod(3, 7)]

    def test_empty(self):
        assert batch_inv([], 101) == []

    def test_unreduced_inputs(self):
        p = 101
        values = [p + 3, 2 * p + 7, -1]
        assert batch_inv(values, p) == [inv_mod(v % p, p) for v in values]

    def test_zero_raises_with_index(self):
        with pytest.raises(ParameterError, match="index 2"):
            batch_inv([3, 5, 0, 7], 101)

    def test_multiple_of_p_raises(self):
        with pytest.raises(ParameterError):
            batch_inv([3, 202], 101)

    def test_exhaustive_small_prime(self):
        p = 43
        values = list(range(1, p))
        inverses = batch_inv(values, p)
        for value, inverse in zip(values, inverses):
            assert value * inverse % p == 1


class TestBatchInvSkipZero:
    """The mixed-vector contract: ``skip_zero`` backfills ``0`` for zero
    entries instead of raising, preserving every finite inverse -- the
    shape :func:`~repro.groups.curve.batch_to_affine` relies on when
    infinity points (``Z = 0``) ride along in one batch.  Boundary
    positions are the regression cases: the skip-and-backfill rewrite
    must handle a zero as the *first* and *last* entry, where the prefix
    -product bookkeeping is easiest to get wrong.
    """

    p = 101

    def _check(self, values):
        result = batch_inv(values, self.p, skip_zero=True)
        assert len(result) == len(values)
        for value, inverse in zip(values, result):
            if value % self.p == 0:
                assert inverse == 0
            else:
                assert value * inverse % self.p == 1

    def test_zero_at_first_index(self):
        self._check([0, 3, 5, 7])

    def test_zero_at_last_index(self):
        self._check([3, 5, 7, 0])

    def test_zero_at_both_boundaries(self):
        self._check([0, 3, 5, 7, 0])

    def test_consecutive_and_interior_zeros(self):
        self._check([4, 0, 0, 9, 0, 11])

    def test_all_zero(self):
        assert batch_inv([0, 0, 0], self.p, skip_zero=True) == [0, 0, 0]

    def test_multiple_of_p_counts_as_zero(self):
        self._check([self.p, 3, 2 * self.p])

    def test_empty(self):
        assert batch_inv([], self.p, skip_zero=True) == []

    def test_default_contract_still_raises(self):
        """``skip_zero`` is opt-in: without it a zero entry still raises
        with the offending index, leaving no partial output."""
        with pytest.raises(ParameterError, match="index 0"):
            batch_inv([0, 3], self.p)
        with pytest.raises(ParameterError, match="index 1"):
            batch_inv([3, 0], self.p)
