"""Unit tests for the entropy toolkit (min-entropy, SD, LHL)."""

import math
import random

import pytest

from repro.errors import ParameterError
from repro.math.entropy import (
    PairwiseIndependentHash,
    average_min_entropy,
    empirical_distribution,
    lhl_extractable_bits,
    lhl_required_entropy,
    min_entropy,
    shannon_entropy,
    statistical_distance,
)


class TestMinEntropy:
    def test_uniform(self):
        dist = {i: 1 / 8 for i in range(8)}
        assert min_entropy(dist) == pytest.approx(3.0)

    def test_point_mass(self):
        assert min_entropy({0: 1.0}) == pytest.approx(0.0)

    def test_skewed(self):
        dist = {0: 0.5, 1: 0.25, 2: 0.25}
        assert min_entropy(dist) == pytest.approx(1.0)

    def test_min_entropy_below_shannon(self):
        dist = {0: 0.5, 1: 0.3, 2: 0.2}
        assert min_entropy(dist) <= shannon_entropy(dist) + 1e-12


class TestStatisticalDistance:
    def test_identical(self):
        dist = {0: 0.5, 1: 0.5}
        assert statistical_distance(dist, dist) == 0.0

    def test_disjoint(self):
        assert statistical_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_symmetry(self):
        a = {0: 0.7, 1: 0.3}
        b = {0: 0.4, 1: 0.5, 2: 0.1}
        assert statistical_distance(a, b) == pytest.approx(statistical_distance(b, a))

    def test_triangle_inequality(self):
        a = {0: 0.6, 1: 0.4}
        b = {0: 0.5, 1: 0.5}
        c = {0: 0.2, 1: 0.8}
        assert statistical_distance(a, c) <= (
            statistical_distance(a, b) + statistical_distance(b, c) + 1e-12
        )

    def test_known_value(self):
        a = {0: 0.75, 1: 0.25}
        b = {0: 0.25, 1: 0.75}
        assert statistical_distance(a, b) == pytest.approx(0.5)


class TestAverageMinEntropy:
    def test_independent_case(self):
        # X uniform on 4 values, Y independent: H~(X|Y) = H(X) = 2 bits.
        joint = {(x, y): 1 / 8 for x in range(4) for y in range(2)}
        assert average_min_entropy(joint) == pytest.approx(2.0)

    def test_fully_determined(self):
        # Y = X: no residual entropy.
        joint = {(x, x): 1 / 4 for x in range(4)}
        assert average_min_entropy(joint) == pytest.approx(0.0)

    def test_one_bit_leak(self):
        # X uniform on 4 values, Y = low bit: one bit lost.
        joint = {(x, x & 1): 1 / 4 for x in range(4)}
        assert average_min_entropy(joint) == pytest.approx(1.0)

    def test_chain_rule_bound(self):
        # H~(X|Y) >= H(X,Y)_min - log |supp Y| lower bound sanity.
        rng = random.Random(1)
        joint = {}
        total = 0.0
        for x in range(4):
            for y in range(4):
                w = rng.random()
                joint[(x, y)] = w
                total += w
        joint = {k: v / total for k, v in joint.items()}
        hxy = min_entropy(joint)
        assert average_min_entropy(joint) >= hxy - 2 - 1e-9


class TestLHL:
    def test_roundtrip(self):
        eps = 2**-10
        k = 100.0
        out = lhl_extractable_bits(k, eps)
        assert lhl_required_entropy(out, eps) == pytest.approx(k)

    def test_extractable_formula(self):
        assert lhl_extractable_bits(60, 2**-10) == pytest.approx(40.0)

    def test_bad_epsilon(self):
        with pytest.raises(ParameterError):
            lhl_extractable_bits(10, 1.5)

    def test_pairwise_independence_exact(self):
        # For fixed x != y, over random (a, b), the pair (h(x), h(y)) is
        # uniform on Z_p^2: every target pair hit exactly once.
        p = 11
        x, y = 3, 7
        from collections import Counter

        counts = Counter()
        for a in range(p):
            for b in range(p):
                counts[((a * x + b) % p, (a * y + b) % p)] += 1
        assert len(counts) == p * p
        assert set(counts.values()) == {1}

    def test_lhl_extraction_statistically_close(self):
        # Extract 2 bits from a 6-bit min-entropy source over Z_p; the
        # output distribution should be near uniform.
        p = 257
        rng = random.Random(2)
        source = [rng.randrange(64) for _ in range(4000)]  # uniform on 64 values
        outputs = []
        for x in source:
            h = PairwiseIndependentHash(p, rng)
            outputs.append(h.truncated(x, 2))
        dist = empirical_distribution(outputs)
        uniform = {i: 0.25 for i in range(4)}
        assert statistical_distance(dist, uniform) < 0.05


class TestEmpiricalDistribution:
    def test_counts(self):
        dist = empirical_distribution([1, 1, 2, 2, 2, 3])
        assert dist[1] == pytest.approx(2 / 6)
        assert dist[2] == pytest.approx(3 / 6)

    def test_empty_raises(self):
        with pytest.raises(ParameterError):
            empirical_distribution([])
