"""Unit tests for primality testing and prime generation."""

import random

import pytest

from repro.errors import ParameterError
from repro.math.primes import is_prime, next_prime, random_prime

SMALL_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}


class TestIsPrime:
    def test_small_range_exhaustive(self):
        for n in range(50):
            assert is_prime(n) == (n in SMALL_PRIMES)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool a^(n-1) = 1 tests.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_prime(carmichael)

    def test_large_known_primes(self):
        assert is_prime(2**61 - 1)  # Mersenne
        assert is_prime(2**89 - 1)
        assert is_prime((1 << 127) - 1)

    def test_large_known_composites(self):
        assert not is_prime(2**67 - 1)  # famous Mersenne composite
        assert not is_prime((2**61 - 1) * (2**31 - 1))

    def test_negative_and_edge(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_even_large(self):
        assert not is_prime(10**30)


class TestRandomPrime:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64, 128])
    def test_bit_length_exact(self, bits):
        rng = random.Random(1)
        p = random_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_prime(p)

    def test_deterministic_with_seed(self):
        assert random_prime(32, random.Random(7)) == random_prime(32, random.Random(7))

    def test_too_small_raises(self):
        with pytest.raises(ParameterError):
            random_prime(1)


class TestNextPrime:
    def test_known_successors(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17
        assert next_prime(89) == 97

    def test_from_composite(self):
        assert next_prime(90) == 97

    def test_result_is_prime_and_greater(self):
        rng = random.Random(2)
        for _ in range(10):
            n = rng.randrange(10**6)
            p = next_prime(n)
            assert p > n
            assert is_prime(p)
