"""The field-backend seam: registry, contract, and cross-backend equivalence.

Three layers of assurance:

1. **Registry mechanics** -- selection (``auto``/env/override), caching,
   registration validation, scoped switching with :func:`use_backend`.
2. **Representation discipline** -- an instrumented shim backend whose
   ``lift`` returns a traceable :class:`int` subclass proves that the
   kernels (a) actually route through the active backend and (b) never
   let a lifted value escape into a :class:`~repro.groups.curve.Point`,
   :class:`~repro.math.fields.Fq2`, or any other stored/serialized form:
   everything that comes back must be *exactly* ``int``.  This is the
   property that keeps golden transcripts byte-identical across backends.
3. **Cross-backend equivalence** -- seeded algebra laws (fields, curve,
   multiexp, Miller loops, batch inversion) parametrized over every
   backend available in this environment, each pinned bit-for-bit to the
   pure-Python reference.
"""

import random

import pytest

from repro.errors import GroupError, ParameterError
from repro.groups import fastops
from repro.groups.bilinear import (
    COST_WEIGHTS_BY_BACKEND,
    DEFAULT_COST_WEIGHTS,
    G1Element,
    GTElement,
    OperationCounter,
)
from repro.groups.curve import batch_to_affine, scalar_mul, scalar_mul_affine
from repro.groups.pairing import (
    PairingPrecomp,
    final_exponentiation,
    miller_loop,
    miller_loop_affine,
    tate_pairing,
)
from repro.math import modular
from repro.math.backend import (
    AUTO_ORDER,
    BACKEND_ENV_VAR,
    FieldBackend,
    FqContext,
    MontgomeryFq,
    PythonBackend,
    active_backend,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
    select_backend,
    set_backend,
    use_backend,
)
from repro.math.fields import Fq, Fq2


# ---------------------------------------------------------------------------
# The instrumented shim: a fake accelerator whose native type is traceable


class FakeMpz(int):
    """Stand-in for an accelerator's native integer (``mpz``): an ``int``
    subclass *closed under arithmetic*, so once a value is lifted every
    derived value stays ``FakeMpz`` until someone explicitly unlifts.
    ``type(x) is int`` is then a leak detector for the backend seam."""

    __slots__ = ()


def _closed(name):
    plain = getattr(int, name)

    def method(self, *args):
        result = plain(self, *args)
        if result is NotImplemented or not isinstance(result, int):
            return result
        return FakeMpz(result)

    method.__name__ = name
    return method


for _name in (
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__mod__", "__rmod__", "__floordiv__", "__rfloordiv__", "__pow__",
    "__neg__", "__pos__", "__abs__", "__lshift__", "__rshift__",
    "__and__", "__rand__", "__or__", "__xor__",
):
    setattr(FakeMpz, _name, _closed(_name))


class FakeAccelBackend(FieldBackend):
    """A "fast" backend that computes exactly like the reference but on
    :class:`FakeMpz`, counting every lift.  Inherits the entire generic
    algebra from :class:`FieldBackend` -- precisely the shape a real
    accelerator takes (only the representation hooks differ)."""

    name = "fake-accel"
    window_costs = (1.0, 0.75)  # distinct from the stock backends

    def __init__(self):
        super().__init__()
        self.lift_calls = 0

    def lift(self, value):  # type: ignore[override]
        self.lift_calls += 1
        return FakeMpz(value)

    @staticmethod
    def unlift(value) -> int:
        # int(FakeMpz) still *is* a FakeMpz via __class__; force the
        # canonical type the same way a real backend converts from mpz.
        return int.__add__(0, value)

    # Mirror Gmpy2Backend: the scalar ops return *lifted* values, so a
    # caller that forgets to unlift leaks FakeMpz into stored state.
    def mul_mod(self, a, b, m):
        return self.lift(a) * b % m

    def pow_mod(self, base, exponent, m):
        return self.lift(pow(int(base), int(exponent), int(m)))

    def inv_mod(self, a, m):
        return self.lift(super().inv_mod(int(a), int(m)))


register_backend(FakeAccelBackend)

#: Every backend this environment can run the equivalence suite on.
BACKENDS = available_backends()


def exact_int(value) -> bool:
    return type(value) is int


@pytest.fixture()
def rng():
    return random.Random(0xBACC)


@pytest.fixture()
def fake_accel():
    """The fake accelerator installed as the active backend."""
    with use_backend("fake-accel") as backend:
        backend.lift_calls = 0
        yield backend


# ---------------------------------------------------------------------------
# Registry and selection


class TestRegistry:
    def test_python_backend_always_available(self):
        assert backend_available("python")
        assert "python" in BACKENDS

    def test_instances_are_cached(self):
        assert get_backend("python") is get_backend("python")

    def test_auto_resolves_along_preference_order(self):
        resolved = get_backend("auto")
        expected = next(name for name in AUTO_ORDER if backend_available(name))
        assert resolved.name == expected

    def test_gmpy2_availability_matches_import(self):
        try:
            import gmpy2  # noqa: F401
        except ImportError:
            assert not backend_available("gmpy2")
            with pytest.raises(ParameterError, match="gmpy2"):
                get_backend("gmpy2")
        else:
            assert backend_available("gmpy2")
            assert get_backend("gmpy2").name == "gmpy2"

    def test_unknown_backend_raises(self):
        with pytest.raises(ParameterError, match="unknown field backend"):
            get_backend("vax-780")
        assert not backend_available("vax-780")

    def test_register_rejects_reserved_names(self):
        for bad in ("abstract", "auto", ""):
            shim = type("Shim", (FieldBackend,), {"name": bad})
            with pytest.raises(ParameterError, match="invalid backend name"):
                register_backend(shim)

    def test_set_backend_returns_previous(self):
        previous = set_backend("python")
        try:
            assert active_backend().name == "python"
        finally:
            set_backend(previous)

    def test_use_backend_restores_on_exit_and_error(self):
        before = active_backend()
        with use_backend("fake-accel") as backend:
            assert backend.name == "fake-accel"
            assert active_backend() is backend
        assert active_backend() is before
        with pytest.raises(RuntimeError):
            with use_backend("fake-accel"):
                raise RuntimeError("boom")
        assert active_backend() is before

    def test_select_backend_honours_environment(self, monkeypatch):
        previous = active_backend()
        try:
            monkeypatch.setenv(BACKEND_ENV_VAR, "python")
            assert select_backend().name == "python"
            monkeypatch.setenv(BACKEND_ENV_VAR, "fake-accel")
            assert select_backend().name == "fake-accel"
            monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
            with pytest.raises(ParameterError, match="unknown field backend"):
                select_backend()
        finally:
            set_backend(previous)

    def test_select_backend_empty_env_means_auto(self, monkeypatch):
        previous = active_backend()
        try:
            monkeypatch.setenv(BACKEND_ENV_VAR, "  ")
            assert select_backend() is get_backend("auto")
        finally:
            set_backend(previous)


# ---------------------------------------------------------------------------
# Representation discipline: lift is consulted, nothing lifted escapes


class TestUnliftDiscipline:
    def test_fq_arithmetic_stays_canonical(self, fake_accel):
        a, b = Fq(1234567, 1000003), Fq(7654321, 1000003)
        for result in (a * b, a ** 977, a.inverse(), a / b):
            assert exact_int(result.value), result
        assert fake_accel.lift_calls > 0

    def test_fq2_arithmetic_stays_canonical(self, fake_accel):
        q = 1000003
        u, v = Fq2(123456, 654321, q), Fq2(31337, 271828, q)
        for result in (u * v, u.square(), u ** 12345, u.inverse(), u / v):
            assert exact_int(result.a) and exact_int(result.b), result

    def test_modular_helpers_stay_canonical(self, fake_accel):
        q = 1000003
        assert exact_int(modular.pow_mod(12345, 678, q))
        assert exact_int(modular.inv_mod(12345, q))
        inverses = modular.batch_inv([3, 5, 7, 11], q)
        assert all(exact_int(v) for v in inverses)
        assert fake_accel.lift_calls > 0

    def test_curve_kernels_stay_canonical(self, small_group, rng, fake_accel):
        point = small_group.random_g(rng).point
        q, p = small_group.q, small_group.p
        for result in (
            scalar_mul(point, 123456789, q, p),
            scalar_mul_affine(point, 123456789, q),
        ):
            assert exact_int(result.x) and exact_int(result.y), result
        assert fake_accel.lift_calls > 0

    def test_multiexp_outputs_stay_canonical(self, small_group, rng, fake_accel):
        g_bases = [small_group.random_g(rng) for _ in range(9)]
        gt_bases = [small_group.random_gt(rng) for _ in range(9)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(9)]
        g_out = G1Element.multiexp(g_bases, exponents)
        gt_out = GTElement.multiexp(gt_bases, exponents)
        assert exact_int(g_out.point.x) and exact_int(g_out.point.y)
        assert exact_int(gt_out.value.a) and exact_int(gt_out.value.b)

    def test_pairing_outputs_stay_canonical(self, small_group, rng, fake_accel):
        left = small_group.random_g(rng).point
        right = small_group.random_g(rng).point
        params = small_group.params
        for raw in (
            miller_loop(left, right, params),
            miller_loop_affine(left, right, params),
            final_exponentiation(miller_loop(left, right, params), params),
        ):
            assert exact_int(raw[0]) and exact_int(raw[1]), raw
        paired = tate_pairing(left, right, params)
        assert exact_int(paired.a) and exact_int(paired.b)
        precomp = PairingPrecomp(left, params)
        for dbl_coeffs, add_coeffs in precomp.steps:
            for coeffs in (dbl_coeffs, add_coeffs):
                if coeffs is not None:
                    assert exact_int(coeffs[0]) and exact_int(coeffs[1]), coeffs
        via_precomp = precomp.pair_with(right)
        assert exact_int(via_precomp.a) and exact_int(via_precomp.b)
        assert via_precomp == paired

    def test_transcript_survives_fake_backend(self, fake_accel):
        """End-to-end: a full protocol period under the shim backend still
        produces the byte-identical pinned transcript (the same property
        the gmpy2 CI leg asserts)."""
        import hashlib

        from repro.core.dlr import DLR
        from repro.core.params import DLRParams
        from repro.groups import preset_group
        from repro.protocol.channel import Channel
        from repro.protocol.device import Device

        group = preset_group(32)
        scheme = DLR(DLRParams(group=group, lam=32))
        run_rng = random.Random(1234)
        generation = scheme.generate(run_rng)
        p1 = Device("P1", group, run_rng)
        p2 = Device("P2", group, run_rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()
        message = group.random_gt(run_rng)
        ciphertext = scheme.encrypt(generation.public_key, message, run_rng)
        record = scheme.run_period(p1, p2, channel, ciphertext)
        assert record.plaintext == message
        digest = hashlib.sha256(channel.transcript_bits(0).to_bytes()).hexdigest()
        assert digest == (
            "9e5b8488f23b63d2597555c23ac7ad90c0306a1a886ac502fef10d8ede51f522"
        )
        assert fake_accel.lift_calls > 0


# ---------------------------------------------------------------------------
# Cross-backend equivalence: every backend agrees with the reference


def _with_python(fn):
    with use_backend("python"):
        return fn()


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestCrossBackendEquivalence:
    def test_fq_laws(self, small_group, rng, backend_name):
        q = small_group.q
        with use_backend(backend_name):
            for _ in range(25):
                a = Fq(rng.randrange(1, q), q)
                b = Fq(rng.randrange(1, q), q)
                c = Fq(rng.randrange(1, q), q)
                assert (a * b) * c == a * (b * c)
                assert a * a.inverse() == Fq(1, q)
                k = rng.randrange(1, q)
                assert (a ** k).value == pow(a.value, k, q)
                assert a ** -2 == (a.inverse()) ** 2

    def test_fq2_laws(self, small_group, rng, backend_name):
        q = small_group.q
        with use_backend(backend_name):
            for _ in range(25):
                u = Fq2(rng.randrange(q), rng.randrange(1, q), q)
                v = Fq2(rng.randrange(q), rng.randrange(1, q), q)
                w = Fq2(rng.randrange(q), rng.randrange(1, q), q)
                assert (u * v) * w == u * (v * w)
                assert u.square() == u * u
                assert u * u.inverse() == Fq2.one(q)
                assert u ** 5 == u * u * u * u * u
                assert (u * v).conjugate() == u.conjugate() * v.conjugate()

    def test_fq2_pow_matches_reference(self, small_group, rng, backend_name):
        q = small_group.q
        u = Fq2(rng.randrange(q), rng.randrange(1, q), q)
        exponent = rng.randrange(1, q * q)
        expected = _with_python(lambda: u ** exponent)
        with use_backend(backend_name):
            assert u ** exponent == expected

    def test_scalar_mul_agrees(self, small_group, rng, backend_name):
        point = small_group.random_g(rng).point
        scalar = rng.randrange(1, small_group.p)
        q, p = small_group.q, small_group.p
        expected = _with_python(lambda: scalar_mul(point, scalar, q, p))
        with use_backend(backend_name):
            assert scalar_mul(point, scalar, q, p) == expected
            assert scalar_mul_affine(point, scalar, q) == expected

    @pytest.mark.parametrize("terms", [2, 7, 40])
    def test_multiexp_agrees(self, small_group, rng, backend_name, terms):
        g_bases = [small_group.random_g(rng) for _ in range(terms)]
        gt_bases = [small_group.random_gt(rng) for _ in range(terms)]
        exponents = [rng.randrange(1, small_group.p) for _ in range(terms)]
        g_expected = _with_python(lambda: G1Element.multiexp(g_bases, exponents))
        gt_expected = _with_python(lambda: GTElement.multiexp(gt_bases, exponents))
        with use_backend(backend_name):
            assert G1Element.multiexp(g_bases, exponents) == g_expected
            assert GTElement.multiexp(gt_bases, exponents) == gt_expected

    def test_pairing_agrees_and_is_bilinear(self, small_group, rng, backend_name):
        a = rng.randrange(2, small_group.p)
        b = rng.randrange(2, small_group.p)
        g = small_group.g
        expected = _with_python(lambda: small_group.pair(g ** a, g ** b))
        with use_backend(backend_name):
            paired = small_group.pair(g ** a, g ** b)
            assert paired == expected
            assert paired == small_group.pair(g, g) ** (a * b)
            left = (g ** a).point
            right = (g ** b).point
            params = small_group.params
            projective = final_exponentiation(
                miller_loop(left, right, params), params
            )
            affine = final_exponentiation(
                miller_loop_affine(left, right, params), params
            )
            assert projective == affine
            assert PairingPrecomp(left, params).pair_with(right) == tate_pairing(
                left, right, params
            )

    def test_batch_inv_agrees_and_reports_zero_index(
        self, small_group, rng, backend_name
    ):
        q = small_group.q
        values = [rng.randrange(1, q) for _ in range(17)]
        expected = _with_python(lambda: modular.batch_inv(values, q))
        with use_backend(backend_name):
            result = modular.batch_inv(values, q)
            assert result == expected
            assert all(type(v) is int for v in result)
            assert modular.batch_inv([], q) == []
            with pytest.raises(ParameterError, match=r"index 2"):
                modular.batch_inv([3, 5, 2 * q, 7], q)

    def test_batch_to_affine_agrees(self, small_group, rng, backend_name):
        q = small_group.q
        jacobians = []
        for _ in range(6):
            point = small_group.random_g(rng).point
            z = rng.randrange(2, q)
            jacobians.append(
                (point.x * z * z % q, point.y * z * z * z % q, z)
            )
        expected = _with_python(lambda: batch_to_affine(jacobians, q))
        with use_backend(backend_name):
            affine = batch_to_affine(jacobians, q)
            assert affine == expected
            for point in affine:
                assert type(point.x) is int and type(point.y) is int

    def test_fq_context_matches_native(self, small_group, rng, backend_name):
        q = small_group.q
        with use_backend(backend_name) as backend:
            context = backend.fq_context(q)
            assert backend.fq_context(q) is context  # cached
            a, b = rng.randrange(1, q), rng.randrange(1, q)
            ra, rb = context.enter(a), context.enter(b)
            assert context.exit(ra) == a
            assert context.exit(context.mul(ra, rb)) == a * b % q
            assert context.exit(context.square(ra)) == a * a % q
            exponent = rng.randrange(1, q)
            assert context.exit(context.pow(ra, exponent)) == pow(a, exponent, q)
            assert context.exit(context.one()) == 1


# ---------------------------------------------------------------------------
# MontgomeryFq: the repeated-multiply contract's ground truth


class TestMontgomeryFq:
    Q = 0xFFFFFFFB  # odd (prime, in fact)

    def test_enter_exit_roundtrip(self, rng):
        context = MontgomeryFq(self.Q)
        for _ in range(50):
            value = rng.randrange(self.Q)
            assert context.exit(context.enter(value)) == value

    def test_residues_are_scaled_not_raw(self):
        context = MontgomeryFq(self.Q)
        r = 1 << self.Q.bit_length()
        assert context.enter(1) == r % self.Q

    def test_mul_and_pow_match_native(self, rng):
        context = MontgomeryFq(self.Q)
        for _ in range(50):
            a, b = rng.randrange(1, self.Q), rng.randrange(1, self.Q)
            product = context.exit(context.mul(context.enter(a), context.enter(b)))
            assert product == a * b % self.Q
            exponent = rng.randrange(1, self.Q)
            powered = context.exit(context.pow(context.enter(a), exponent))
            assert powered == pow(a, exponent, self.Q)

    def test_even_or_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError, match="odd modulus"):
            MontgomeryFq(1 << 16)
        with pytest.raises(ParameterError, match="odd modulus"):
            MontgomeryFq(1)

    def test_negative_exponent_rejected(self):
        context = MontgomeryFq(self.Q)
        with pytest.raises(ParameterError, match="non-negative"):
            context.pow(context.enter(2), -1)

    def test_python_backend_context_is_montgomery(self):
        assert isinstance(get_backend("python").fq_context(self.Q), MontgomeryFq)


# ---------------------------------------------------------------------------
# Trusted constructors (satellite: skip re-reduction, keep invariants)


class TestTrustedConstructors:
    def test_from_reduced_skips_reduction(self):
        # Deliberately out-of-range input: the trusted constructor must
        # store it verbatim (callers guarantee canonicity; the public
        # constructor is the one that reduces).
        element = Fq._from_reduced(7, 5)
        assert element.value == 7
        assert Fq(7, 5).value == 2

    def test_fq2_from_reduced_skips_validation(self):
        # q = 5 is 1 mod 4: the public constructor rejects it, the
        # trusted one (used only with pre-validated group parameters)
        # does not re-check.
        with pytest.raises(ParameterError):
            Fq2(1, 2, 5)
        element = Fq2._from_reduced(1, 2, 5)
        assert (element.a, element.b) == (1, 2)

    def test_public_and_trusted_agree_on_canonical_input(self):
        q = 1000003
        assert Fq._from_reduced(123, q) == Fq(123, q)
        assert Fq2._from_reduced(12, 34, q) == Fq2(12, 34, q)


# ---------------------------------------------------------------------------
# Backend contract details


class TestBackendContract:
    def test_inv_mod_zero_raises(self):
        for name in BACKENDS:
            backend = get_backend(name)
            with pytest.raises(ParameterError, match="not invertible"):
                backend.inv_mod(0, 97)
            with pytest.raises(ParameterError, match="not invertible"):
                backend.inv_mod(97 * 3, 97)

    def test_fq2_inverse_zero_raises(self):
        for name in BACKENDS:
            backend = get_backend(name)
            with pytest.raises(ParameterError, match="not invertible"):
                backend.fq2_inverse((0, 0), 97)

    def test_fq2_element_inverse_keeps_group_error(self):
        with pytest.raises(GroupError, match="not invertible"):
            Fq2.zero(1000003).inverse()

    def test_fq2_unitary_inverse_is_conjugation(self, small_group, rng):
        """Norm-1 elements (the whole pairing subgroup) invert by
        conjugation on every backend."""
        unit = small_group.random_gt(rng).value
        assert unit.norm() == 1
        for name in BACKENDS:
            backend = get_backend(name)
            a, b = backend.fq2_inverse((unit.a, unit.b), unit.q)
            assert (int(a), int(b)) == (unit.a, (-unit.b) % unit.q)

    def test_window_costs_exposed(self):
        assert FieldBackend.window_costs == (1.0, 1.0)
        assert get_backend("python").window_costs == (1.0, 1.0)
        assert get_backend("fake-accel").window_costs == (1.0, 0.75)

    def test_native_ints_flag(self):
        # Only the pure backend may claim the skip-lift exemption; the
        # conservative default protects custom backends that override
        # lift without thinking about it.
        assert get_backend("python").native_ints is True
        assert FieldBackend.native_ints is False
        assert get_backend("fake-accel").native_ints is False
        if backend_available("gmpy2"):
            assert get_backend("gmpy2").native_ints is False


# ---------------------------------------------------------------------------
# OperationCounter backend tag and per-backend cost weights


class TestCounterBackendTag:
    def test_counter_records_active_backend(self):
        with use_backend("fake-accel"):
            counter = OperationCounter()
        assert counter.backend == "fake-accel"
        assert OperationCounter().backend == active_backend().name

    def test_backend_tag_excluded_from_counts(self):
        counter = OperationCounter()
        counter.g_exp += 3
        as_dict = counter.as_dict()
        assert "backend" not in as_dict
        assert as_dict["g_exp"] == 3

    def test_reset_snapshot_diff_preserve_tag(self):
        with use_backend("fake-accel"):
            counter = OperationCounter()
        counter.pairings += 2
        snapshot = counter.snapshot()
        assert snapshot.backend == "fake-accel"
        assert snapshot.pairings == 2
        counter.pairings += 1
        delta = counter.diff(snapshot)
        assert delta.backend == "fake-accel"
        assert delta.pairings == 1
        counter.reset()
        assert counter.backend == "fake-accel"
        assert not counter.nonzero()

    def test_total_cost_uses_per_backend_weights(self):
        python_counter = OperationCounter(backend="python")
        gmpy2_counter = OperationCounter(backend="gmpy2")
        for counter in (python_counter, gmpy2_counter):
            counter.pairings += 10
            counter.g_exp += 10
        assert python_counter.total_cost() == (
            10 * DEFAULT_COST_WEIGHTS["pairings"]
            + 10 * DEFAULT_COST_WEIGHTS["g_exp"]
        )
        gmpy2_weights = COST_WEIGHTS_BY_BACKEND["gmpy2"]
        assert gmpy2_counter.total_cost() == (
            10 * gmpy2_weights["pairings"] + 10 * gmpy2_weights["g_exp"]
        )
        assert gmpy2_counter.total_cost() < python_counter.total_cost()

    def test_unknown_backend_falls_back_to_default_weights(self):
        counter = OperationCounter(backend="fake-accel")
        counter.pairings += 1
        assert counter.total_cost() == DEFAULT_COST_WEIGHTS["pairings"]

    def test_total_cost_overrides_still_win(self):
        counter = OperationCounter(backend="gmpy2")
        counter.pairings += 2
        assert counter.total_cost(weights={"pairings": 100.0}) == 200.0
