"""Pickle round-trips for field and curve values across backends.

The :mod:`repro.parallel` process pool ships group data to worker
processes, so every value that can cross that boundary needs a stable
pickled form: ``Fq``/``Fq2`` (frozen+slots dataclasses -- no default
pickle support before Python 3.11) and affine :class:`Point`.  The
recipes must also be *backend-independent*: a value produced under the
gmpy2 backend carries mpz coordinates, which must unlift to canonical
``int`` before pickling so a python-backend receiver reconstructs the
identical value.
"""

import pickle
import random

import pytest

from repro.groups.curve import Point, batch_to_affine
from repro.math.backend import available_backends, use_backend
from repro.math.fields import Fq, Fq2

BACKENDS = available_backends()

Q = 2**31 - 1  # any prime-ish modulus works: pickling never reduces


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestFieldPickle:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_fq_roundtrip(self, backend_name):
        with use_backend(backend_name):
            value = Fq(123456789, Q) * Fq(987654321, Q)
            copy = roundtrip(value)
        assert copy == value
        assert type(copy.value) is int  # canonical, not backend-native
        assert type(copy.q) is int

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_fq2_roundtrip(self, backend_name):
        with use_backend(backend_name):
            value = Fq2(12345, 67890, Q) * Fq2(222, 333, Q)
            copy = roundtrip(value)
        assert copy == value
        assert type(copy.a) is int and type(copy.b) is int

    def test_cross_backend_wire_form_identical(self):
        """The pickled bytes must not depend on the producing backend:
        a pool parent and worker may disagree only in performance."""
        blobs = {}
        for backend_name in BACKENDS:
            with use_backend(backend_name):
                value = Fq(98765, Q) ** 12345
                blobs[backend_name] = pickle.dumps(
                    (value, Fq2(int(value.value), 7, Q))
                )
        reference = blobs.pop("python")
        for backend_name, blob in blobs.items():
            assert blob == reference, backend_name


class TestPointPickle:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_affine_point_roundtrip(self, small_group, backend_name):
        rng = random.Random(7)
        with use_backend(backend_name):
            point = small_group.random_g(rng).point
            copy = roundtrip(point)
        assert copy == point
        assert type(copy.x) is int and type(copy.y) is int

    def test_infinity_roundtrip(self):
        infinity = Point(0, 0, True)
        copy = roundtrip(infinity)
        assert copy.is_infinity()

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_raw_jacobian_coordinates_unlift_to_int(self, small_group, backend_name):
        """The pool workers exchange raw Jacobian triples as plain int
        tuples; normalising under any backend must yield coordinates
        whose ``int()`` coercion pickles identically."""
        rng = random.Random(11)
        points = [small_group.random_g(rng).point for _ in range(5)]
        q = small_group.q
        with use_backend(backend_name):
            jacobians = [(int(p.x), int(p.y), 1) for p in points]
            affine = batch_to_affine(jacobians, q)
            raw = [(int(p.x), int(p.y)) for p in affine]
        blob = pickle.dumps(raw)
        restored = pickle.loads(blob)
        assert restored == [(p.x, p.y) for p in points]
        for x, y in restored:
            assert type(x) is int and type(y) is int
