"""Unit tests for linear algebra over Z_p."""

import random

import pytest

from repro.errors import ParameterError, SingularMatrixError
from repro.math import linalg

P = 101


class TestBasicOps:
    def test_identity_matmul(self):
        rng = random.Random(1)
        a = linalg.random_matrix(4, 4, P, rng)
        eye = linalg.identity(4, P)
        assert linalg.mat_mul(a, eye, P) == a
        assert linalg.mat_mul(eye, a, P) == a

    def test_matvec_matches_matmul(self):
        rng = random.Random(2)
        a = linalg.random_matrix(3, 5, P, rng)
        x = linalg.random_vector(5, P, rng)
        column = [[v] for v in x]
        expected = [row[0] for row in linalg.mat_mul(a, column, P)]
        assert linalg.mat_vec(a, x, P) == expected

    def test_dot(self):
        assert linalg.dot([1, 2, 3], [4, 5, 6], P) == (4 + 10 + 18) % P

    def test_dot_length_mismatch(self):
        with pytest.raises(ParameterError):
            linalg.dot([1], [1, 2], P)

    def test_transpose(self):
        a = [[1, 2, 3], [4, 5, 6]]
        assert linalg.transpose(a) == [[1, 4], [2, 5], [3, 6]]
        assert linalg.transpose(linalg.transpose(a)) == a


class TestRank:
    def test_identity_full_rank(self):
        assert linalg.rank(linalg.identity(5, P), P) == 5

    def test_zero_matrix(self):
        assert linalg.rank(linalg.zeros(3, 4), P) == 0

    def test_rank_one(self):
        a = [[1, 2, 3], [2, 4, 6], [50, 100, 150]]
        assert linalg.rank(a, P) == 1

    def test_random_square_usually_full_rank(self):
        rng = random.Random(3)
        full = sum(
            linalg.rank(linalg.random_matrix(4, 4, P, rng), P) == 4 for _ in range(50)
        )
        assert full >= 45  # probability of singular ~ 4/101

    def test_rank_mod_p_differs_from_rationals(self):
        # Rows dependent only modulo p.
        a = [[1, 0], [P, 0]]
        assert linalg.rank(a, P) == 1


class TestInvert:
    def test_inverse_roundtrip(self):
        rng = random.Random(4)
        for _ in range(10):
            a = linalg.random_matrix(4, 4, P, rng)
            if linalg.rank(a, P) < 4:
                continue
            inv = linalg.invert(a, P)
            assert linalg.mat_mul(a, inv, P) == linalg.identity(4, P)

    def test_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            linalg.invert([[1, 2], [2, 4]], P)

    def test_non_square_raises(self):
        with pytest.raises(ParameterError):
            linalg.invert([[1, 2, 3], [4, 5, 6]], P)


class TestSolve:
    def test_solution_satisfies_system(self):
        rng = random.Random(5)
        for _ in range(10):
            a = linalg.random_matrix(3, 5, P, rng)
            x_true = linalg.random_vector(5, P, rng)
            b = linalg.mat_vec(a, x_true, P)
            x = linalg.solve(a, b, P)
            assert linalg.mat_vec(a, x, P) == b

    def test_inconsistent_raises(self):
        a = [[1, 0], [1, 0]]
        with pytest.raises(SingularMatrixError):
            linalg.solve(a, [1, 2], P)

    def test_square_unique_solution(self):
        a = [[2, 1], [1, 3]]
        x_true = [7, 9]
        b = linalg.mat_vec(a, x_true, P)
        assert linalg.solve(a, b, P) == x_true


class TestKernel:
    def test_kernel_dimension(self):
        rng = random.Random(6)
        a = linalg.random_matrix(3, 7, P, rng)
        r = linalg.rank(a, P)
        basis = linalg.kernel_basis(a, P)
        assert len(basis) == 7 - r

    def test_kernel_vectors_annihilated(self):
        rng = random.Random(7)
        a = linalg.random_matrix(4, 6, P, rng)
        for v in linalg.kernel_basis(a, P):
            assert linalg.mat_vec(a, v, P) == [0] * 4

    def test_full_rank_square_trivial_kernel(self):
        eye = linalg.identity(4, P)
        assert linalg.kernel_basis(eye, P) == []


class TestSolveUniform:
    def test_satisfies_system(self):
        rng = random.Random(8)
        a = linalg.random_matrix(2, 5, P, rng)
        x_true = linalg.random_vector(5, P, rng)
        b = linalg.mat_vec(a, x_true, P)
        for _ in range(10):
            x = linalg.solve_uniform(a, b, P, rng)
            assert linalg.mat_vec(a, x, P) == b

    def test_uniform_over_solution_space_small(self):
        # 1 equation, 2 unknowns over Z_5: solution space has 5 points.
        p = 5
        a = [[1, 1]]
        b = [3]
        rng = random.Random(9)
        seen = {tuple(linalg.solve_uniform(a, b, p, rng)) for _ in range(400)}
        assert len(seen) == 5  # all points hit

    def test_distribution_is_uniform(self):
        p = 5
        a = [[1, 2]]
        b = [0]
        rng = random.Random(10)
        from collections import Counter

        counts = Counter(
            tuple(linalg.solve_uniform(a, b, p, rng)) for _ in range(2000)
        )
        assert len(counts) == 5
        assert max(counts.values()) < 2 * min(counts.values())


class TestRandomMatrixOfRank:
    @pytest.mark.parametrize("target", [0, 1, 2, 3])
    def test_rank_exact(self, target):
        rng = random.Random(11)
        a = linalg.random_matrix_of_rank(4, 5, target, P, rng)
        assert linalg.rank(a, P) == target

    def test_rank_too_big_raises(self):
        with pytest.raises(ParameterError):
            linalg.random_matrix_of_rank(2, 3, 3, P)

    def test_matrix_klin_distinct_ranks_statistically(self):
        # The matrix kLin assumption compares rank-i and rank-j matrices:
        # they must actually differ as distributions.
        rng = random.Random(12)
        low = [linalg.rank(linalg.random_matrix_of_rank(3, 3, 1, P, rng), P) for _ in range(20)]
        high = [linalg.rank(linalg.random_matrix_of_rank(3, 3, 3, P, rng), P) for _ in range(20)]
        assert set(low) == {1}
        assert set(high) == {3}
