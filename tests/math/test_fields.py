"""Unit tests for F_q and F_{q^2}."""

import random

import pytest

from repro.errors import GroupError, ParameterError
from repro.math.fields import Fq, Fq2

Q = 103  # 103 = 3 mod 4


class TestFq:
    def test_reduction_on_construction(self):
        assert Fq(Q + 5, Q).value == 5
        assert Fq(-1, Q).value == Q - 1

    def test_add_sub(self):
        a, b = Fq(50, Q), Fq(60, Q)
        assert (a + b).value == 7
        assert (a - b).value == (50 - 60) % Q

    def test_mul_inverse(self):
        rng = random.Random(1)
        for _ in range(20):
            a = Fq(rng.randrange(1, Q), Q)
            assert (a * a.inverse()).value == 1

    def test_div(self):
        a, b = Fq(10, Q), Fq(7, Q)
        assert ((a / b) * b) == a

    def test_pow_negative_exponent(self):
        a = Fq(5, Q)
        assert (a ** -2) == (a ** 2).inverse()

    def test_sqrt(self):
        a = Fq(12, Q)
        square = a * a
        root = square.sqrt()
        assert root * root == square

    def test_mixing_fields_raises(self):
        with pytest.raises(GroupError):
            Fq(1, 103) + Fq(1, 107)

    def test_int_conversion(self):
        assert int(Fq(42, Q)) == 42


class TestFq2:
    def test_requires_q_3_mod_4(self):
        with pytest.raises(ParameterError):
            Fq2(1, 1, 13)  # 13 = 1 mod 4

    def test_i_squared_is_minus_one(self):
        i = Fq2(0, 1, Q)
        assert i * i == Fq2(-1, 0, Q)

    def test_mul_against_definition(self):
        rng = random.Random(2)
        for _ in range(30):
            a, b, c, d = (rng.randrange(Q) for _ in range(4))
            left = Fq2(a, b, Q) * Fq2(c, d, Q)
            assert left == Fq2((a * c - b * d) % Q, (a * d + b * c) % Q, Q)

    def test_square_matches_mul(self):
        rng = random.Random(3)
        for _ in range(30):
            x = Fq2(rng.randrange(Q), rng.randrange(Q), Q)
            assert x.square() == x * x

    def test_inverse(self):
        rng = random.Random(4)
        for _ in range(30):
            x = Fq2(rng.randrange(Q), rng.randrange(Q), Q)
            if x.is_zero():
                continue
            assert x * x.inverse() == Fq2.one(Q)

    def test_zero_not_invertible(self):
        with pytest.raises(GroupError):
            Fq2.zero(Q).inverse()

    def test_norm_multiplicative(self):
        rng = random.Random(5)
        for _ in range(20):
            x = Fq2(rng.randrange(Q), rng.randrange(Q), Q)
            y = Fq2(rng.randrange(Q), rng.randrange(Q), Q)
            assert (x * y).norm() == x.norm() * y.norm() % Q

    def test_conjugate_is_frobenius(self):
        # For q = 3 mod 4, x^q = conjugate(x).
        rng = random.Random(6)
        for _ in range(10):
            x = Fq2(rng.randrange(Q), rng.randrange(Q), Q)
            assert x ** Q == x.conjugate()

    def test_multiplicative_group_order(self):
        # x^(q^2 - 1) = 1 for all nonzero x.
        rng = random.Random(7)
        for _ in range(10):
            x = Fq2(rng.randrange(Q), rng.randrange(Q), Q)
            if x.is_zero():
                continue
            assert (x ** (Q * Q - 1)).is_one()

    def test_pow_negative(self):
        x = Fq2(3, 5, Q)
        assert x ** -3 == (x ** 3).inverse()

    def test_from_base_embedding(self):
        a = Fq2.from_base(9, Q)
        b = Fq2.from_base(11, Q)
        assert (a * b).to_tuple() == (99, 0)

    def test_division(self):
        x, y = Fq2(3, 4, Q), Fq2(5, 6, Q)
        assert (x / y) * y == x
