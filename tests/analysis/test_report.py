"""Tests for the experiment-report aggregator."""

import pathlib

import pytest

from repro.analysis.report import EXPERIMENT_TITLES, _experiment_id, collect_report, main


@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "T1_refresh_leakage.txt").write_text("# note\nrow 1\n")
    (directory / "T10_cca2.txt").write_text("cca table\n")
    (directory / "T8b_distinguisher.txt").write_text("skeleton\n")
    (directory / "A1_coin_reuse.txt").write_text("ablation\n")
    return directory


class TestCollect:
    def test_sections_present(self, results_dir):
        report = collect_report(results_dir)
        assert "T1:" in report
        assert "T10:" in report
        assert "A1:" in report
        assert "row 1" in report

    def test_ordering_numeric_not_lexicographic(self, results_dir):
        report = collect_report(results_dir)
        assert report.index("T1:") < report.index("T8b:") < report.index("T10:")

    def test_experiment_id_parsing(self):
        assert _experiment_id(pathlib.Path("T9_dibe_costs.txt")) == "T9"
        assert _experiment_id(pathlib.Path("T8b_distinguisher.txt")) == "T8b"
        assert _experiment_id(pathlib.Path("A2_variant_surface.txt")) == "A2"

    def test_empty_directory_raises(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            collect_report(empty)

    def test_titles_cover_all_experiments(self):
        for exp in ("T1", "T6", "T8b", "T13", "A3"):
            assert exp in EXPERIMENT_TITLES

    def test_main_against_repo_results(self, capsys):
        """If the repo's results/ exists (benchmarks were run), main()
        prints the full report."""
        repo_results = pathlib.Path(__file__).resolve().parents[2] / "results"
        if not repo_results.is_dir():
            pytest.skip("benchmarks not yet run")
        assert main() == 0
        out = capsys.readouterr().out
        assert "experiment report" in out
