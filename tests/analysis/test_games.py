"""Tests for the Definition 3.2 security-game runner."""

import random

import pytest

from repro.analysis.games import Adversary, CPACMLGame, GameResult
from repro.core.dlr import DLR
from repro.core.optimal import OptimalDLR
from repro.leakage.functions import NullLeakage, PrefixBits
from repro.leakage.oracle import LeakageBudget


@pytest.fixture()
def scheme(small_params):
    return OptimalDLR(small_params)


class CountingAdversary(Adversary):
    """Runs a fixed number of leakage periods with fixed-size requests."""

    def __init__(self, rng, periods, p1_bits=0, p2_bits=0):
        super().__init__(rng)
        self.periods = periods
        self.p1_bits = p1_bits
        self.p2_bits = p2_bits

    def period_functions(self, period):
        if period >= self.periods:
            return None
        return (
            PrefixBits(self.p1_bits),
            NullLeakage(),
            PrefixBits(self.p2_bits),
            NullLeakage(),
        )


class GenLeakAdversary(Adversary):
    def __init__(self, rng, bits):
        super().__init__(rng)
        self.bits = bits

    def generation_leakage(self):
        return PrefixBits(self.bits)


class TestGameMechanics:
    def test_zero_period_game_completes(self, scheme, rng):
        game = CPACMLGame(scheme, LeakageBudget(0, 0, 0), rng)
        result = game.run(Adversary(random.Random(1)))
        assert isinstance(result, GameResult)
        assert result.periods == 0
        assert not result.aborted

    def test_multi_period_game(self, scheme, rng):
        game = CPACMLGame(scheme, LeakageBudget(0, 16, 16), rng)
        result = game.run(CountingAdversary(random.Random(2), periods=3, p1_bits=8, p2_bits=8))
        assert result.periods == 3
        assert not result.aborted

    def test_budget_abort(self, scheme, rng):
        game = CPACMLGame(scheme, LeakageBudget(0, 4, 4), rng)
        result = game.run(CountingAdversary(random.Random(3), periods=1, p1_bits=5))
        assert result.aborted
        assert "P1" in result.abort_reason

    def test_generation_leakage_within_b0(self, scheme, rng):
        game = CPACMLGame(scheme, LeakageBudget(8, 0, 0), rng)
        result = game.run(GenLeakAdversary(random.Random(4), bits=8))
        assert not result.aborted

    def test_generation_leakage_over_b0_aborts(self, scheme, rng):
        game = CPACMLGame(scheme, LeakageBudget(4, 0, 0), rng)
        result = game.run(GenLeakAdversary(random.Random(5), bits=5))
        assert result.aborted

    def test_leakage_results_delivered(self, scheme, rng):
        game = CPACMLGame(scheme, LeakageBudget(0, 8, 8), rng)
        adversary = CountingAdversary(random.Random(6), periods=2, p1_bits=8, p2_bits=8)
        game.run(adversary)
        assert adversary.view is not None
        assert len(adversary.view.leakage_log) == 2
        period0 = adversary.view.leakage_log[0][1]
        assert len(period0[(1, "normal")]) == 8

    def test_decryption_log_populated(self, scheme, rng):
        """Each period runs a background decryption drawn from C whose
        input/output the adversary sees (pub^t)."""
        game = CPACMLGame(scheme, LeakageBudget(0, 1, 1), rng)
        adversary = CountingAdversary(random.Random(7), periods=2, p1_bits=1, p2_bits=1)
        game.run(adversary)
        assert len(adversary.view.decryption_log) == 2
        for ciphertext, plaintext in adversary.view.decryption_log:
            assert scheme.reference_decrypt is not None  # shape check only

    def test_background_decryptions_are_correct(self, scheme, rng):
        """The challenger's Dec protocol must output the true plaintext of
        the C-sampled ciphertext.  Checked against reference decryption
        with the (post-refresh) shares -- refresh preserves the msk, so
        they still decrypt the old ciphertext."""
        game = CPACMLGame(scheme, LeakageBudget(0, 1, 1), rng)
        adversary = CountingAdversary(random.Random(8), periods=1, p1_bits=0, p2_bits=0)
        game.run(adversary)
        (ciphertext, plaintext), = adversary.view.decryption_log
        reference = scheme.reference_decrypt(
            scheme.recover_share1(adversary.view.device1),
            scheme.share2_of(adversary.view.device2),
            ciphertext,
        )
        assert plaintext == reference

    def test_random_adversary_near_half(self, scheme):
        wins = sum(
            CPACMLGame(scheme, LeakageBudget(0, 0, 0), random.Random(i)).run(
                Adversary(random.Random(1000 + i))
            ).won
            for i in range(30)
        )
        assert 5 <= wins <= 25

    def test_works_with_basic_dlr(self, small_params):
        game = CPACMLGame(DLR(small_params), LeakageBudget(0, 32, 32), random.Random(9))
        result = game.run(CountingAdversary(random.Random(10), periods=1, p1_bits=16, p2_bits=16))
        assert not result.aborted
        assert result.periods == 1

    def test_custom_ciphertext_sampler(self, scheme, rng):
        fixed_message = scheme.group.random_gt(random.Random(11))

        def sampler(sample_rng, public_key, period):
            return scheme.encrypt(public_key, fixed_message, sample_rng)

        game = CPACMLGame(scheme, LeakageBudget(0, 1, 1), rng, ciphertext_sampler=sampler)
        adversary = CountingAdversary(random.Random(12), periods=1, p1_bits=0, p2_bits=0)
        game.run(adversary)
        (_, plaintext), = adversary.view.decryption_log
        assert plaintext == fixed_message
