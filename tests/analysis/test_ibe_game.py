"""Tests for the DIBE CPA-CML game (extraction oracle + leakage)."""

import random

import pytest

from repro.analysis.ibe_game import IBEAdversary, IBECPACMLGame, IBEPeriodRequest
from repro.errors import ProtocolError
from repro.ibe.dlr_ibe import DLRIBE
from repro.leakage.functions import NullLeakage, PrefixBits
from repro.leakage.oracle import LeakageBudget

N_ID = 4


@pytest.fixture()
def scheme(small_params):
    return DLRIBE(small_params, n_id=N_ID)


class ExtractingAdversary(IBEAdversary):
    """Extracts a couple of identities, leaks a little, then challenges
    on a fresh identity."""

    def __init__(self, rng, periods=2, bits=8):
        super().__init__(rng)
        self.periods = periods
        self.bits = bits

    def period_request(self, period):
        if period >= self.periods:
            return None
        return IBEPeriodRequest(
            extract_identities=[f"user-{period}"],
            h1=PrefixBits(self.bits),
            h1_refresh=NullLeakage(),
            h2=PrefixBits(self.bits),
            h2_refresh=NullLeakage(),
        )


class CheatingAdversary(ExtractingAdversary):
    """Tries to challenge on an identity it extracted."""

    def choose_challenge(self):
        _, m0, m1 = super().choose_challenge()
        return "user-0", m0, m1


class TestIBEGame:
    def test_game_completes_with_extractions(self, scheme):
        game = IBECPACMLGame(scheme, LeakageBudget(0, 32, 32), random.Random(1))
        adversary = ExtractingAdversary(random.Random(2))
        result = game.run(adversary)
        assert not result.aborted
        assert result.periods == 2
        assert adversary.view.extracted == {"user-0", "user-1"}

    def test_leakage_delivered_each_period(self, scheme):
        game = IBECPACMLGame(scheme, LeakageBudget(0, 32, 32), random.Random(3))
        adversary = ExtractingAdversary(random.Random(4))
        game.run(adversary)
        assert len(adversary.view.leakage_log) == 2
        for _, results in adversary.view.leakage_log:
            assert len(results[(1, "normal")]) == 8

    def test_challenge_on_extracted_identity_forbidden(self, scheme):
        game = IBECPACMLGame(scheme, LeakageBudget(0, 32, 32), random.Random(5))
        with pytest.raises(ProtocolError):
            game.run(CheatingAdversary(random.Random(6)))

    def test_budget_abort(self, scheme):
        game = IBECPACMLGame(scheme, LeakageBudget(0, 4, 4), random.Random(7))
        result = game.run(ExtractingAdversary(random.Random(8), bits=5))
        assert result.aborted

    def test_zero_period_game(self, scheme):
        game = IBECPACMLGame(scheme, LeakageBudget(0, 0, 0), random.Random(9))
        result = game.run(IBEAdversary(random.Random(10)))
        assert result.periods == 0
        assert not result.aborted

    def test_random_adversary_near_half(self, scheme):
        wins = sum(
            IBECPACMLGame(scheme, LeakageBudget(0, 0, 0), random.Random(i)).run(
                IBEAdversary(random.Random(400 + i))
            ).won
            for i in range(16)
        )
        assert 2 <= wins <= 14

    def test_identity_shares_refresh_every_period(self, scheme):
        """The game refreshes every extracted identity's shares; after
        the run the shares are functional and distinct from extraction-
        time values (indirect: decryption still works)."""
        game = IBECPACMLGame(scheme, LeakageBudget(0, 32, 32), random.Random(11))
        adversary = ExtractingAdversary(random.Random(12))
        game.run(adversary)
        view = adversary.view
        rng = random.Random(13)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt_to(view.public_params, "user-0", message, rng)
        plaintext = scheme.decrypt_protocol_id(
            view.device1, view.device2, view.channel, "user-0", ciphertext
        )
        assert plaintext == message
