"""Tests for the statistical-test helpers."""

import random

import pytest

from repro.analysis.stattests import (
    AdvantageEstimate,
    chi_squared_two_sample,
    chi_squared_uniform,
    empirical_advantage,
)
from repro.errors import ParameterError


class TestChiSquaredUniform:
    def test_uniform_sample_accepted(self):
        rng = random.Random(1)
        samples = [rng.randrange(8) for _ in range(4000)]
        result = chi_squared_uniform(samples, 8)
        assert not result.rejects_at(0.01)

    def test_biased_sample_rejected(self):
        rng = random.Random(2)
        samples = [rng.randrange(4) for _ in range(2000)] + [0] * 500
        result = chi_squared_uniform(samples, 4)
        assert result.rejects_at(0.01)

    def test_unseen_outcomes_counted(self):
        # Samples concentrated on one outcome of a claimed 10-outcome support.
        result = chi_squared_uniform([0] * 100, 10)
        assert result.rejects_at(0.01)

    def test_support_validation(self):
        with pytest.raises(ParameterError):
            chi_squared_uniform([0, 1, 2], 2)
        with pytest.raises(ParameterError):
            chi_squared_uniform([0], 1)

    def test_p_value_in_range(self):
        rng = random.Random(3)
        result = chi_squared_uniform([rng.randrange(4) for _ in range(400)], 4)
        assert 0.0 <= result.p_value <= 1.0


class TestChiSquaredTwoSample:
    def test_same_distribution_accepted(self):
        rng = random.Random(4)
        a = [rng.randrange(6) for _ in range(3000)]
        b = [rng.randrange(6) for _ in range(3000)]
        assert not chi_squared_two_sample(a, b).rejects_at(0.01)

    def test_different_distributions_rejected(self):
        rng = random.Random(5)
        a = [rng.randrange(6) for _ in range(2000)]
        b = [rng.choice([0, 0, 0, 1, 2, 3, 4, 5]) for _ in range(2000)]
        assert chi_squared_two_sample(a, b).rejects_at(0.01)

    def test_degenerate_single_outcome(self):
        result = chi_squared_two_sample([7] * 10, [7] * 10)
        assert result.p_value == 1.0


class TestAdvantage:
    def test_win_rate(self):
        estimate = AdvantageEstimate(wins=60, trials=100)
        assert estimate.win_rate == pytest.approx(0.6)
        assert estimate.advantage == pytest.approx(0.1)

    def test_fair_coin_consistent_with_no_advantage(self):
        rng = random.Random(6)
        estimate = empirical_advantage(rng.random() < 0.5 for _ in range(400))
        assert estimate.is_consistent_with_no_advantage()

    def test_biased_coin_detected(self):
        estimate = AdvantageEstimate(wins=390, trials=400)
        assert not estimate.is_consistent_with_no_advantage()

    def test_confidence_interval_contains_estimate(self):
        estimate = AdvantageEstimate(wins=30, trials=50)
        low, high = estimate.confidence_interval()
        assert low < estimate.win_rate < high

    def test_empty_trials_rejected(self):
        with pytest.raises(ParameterError):
            empirical_advantage([])


class TestFallbackChi2:
    def test_fallback_matches_scipy(self):
        """Our pure-Python chi-squared survival function should agree with
        scipy to good precision."""
        pytest.importorskip("scipy")
        from scipy import stats

        from repro.analysis.stattests import _upper_regularized_gamma

        for stat, dof in ((0.5, 1), (3.2, 4), (10.0, 7), (25.0, 10), (1.0, 30)):
            ours = _upper_regularized_gamma(dof / 2, stat / 2)
            theirs = float(stats.chi2.sf(stat, dof))
            assert ours == pytest.approx(theirs, rel=1e-8)
