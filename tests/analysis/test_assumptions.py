"""Tests for the hardness-assumption samplers (section 2.1)."""

import random

from repro.analysis.assumptions import (
    is_bddh_consistent,
    sample_bddh,
    sample_klin,
    sample_matrix_klin,
)
from repro.math import linalg


class TestBDDH:
    def test_real_tuples_consistent(self, small_group, rng):
        for _ in range(5):
            tup = sample_bddh(small_group, rng, real=True)
            assert tup.real
            assert is_bddh_consistent(small_group, tup)

    def test_random_tuples_mostly_inconsistent(self, small_group, rng):
        inconsistent = sum(
            not is_bddh_consistent(small_group, sample_bddh(small_group, rng, real=False))
            for _ in range(10)
        )
        assert inconsistent >= 9  # collision probability 1/p

    def test_exponents_match_elements(self, small_group, rng):
        tup = sample_bddh(small_group, rng, real=True)
        a, b, c = tup.exponents
        assert tup.g_a == small_group.g ** a
        assert tup.g_b == small_group.g ** b
        assert tup.g_c == small_group.g ** c

    def test_real_t_matches_pairing(self, small_group, rng):
        """T = e(g,g)^{abc} = e(g^a, g^b)^c."""
        tup = sample_bddh(small_group, rng, real=True)
        assert tup.t == small_group.pair(tup.g_a, tup.g_b) ** tup.exponents[2]


class TestKLin:
    def test_shapes(self, small_group, rng):
        for k in (1, 2, 3):
            tup = sample_klin(small_group, k, rng, real=True)
            assert len(tup.generators) == k + 1
            assert len(tup.powers) == k

    def test_two_sides_differ(self, small_group, rng):
        """Real and random heads should (almost surely) differ for the
        same randomness consumption pattern."""
        reals = {sample_klin(small_group, 2, rng, True).head for _ in range(5)}
        randoms = {sample_klin(small_group, 2, rng, False).head for _ in range(5)}
        assert len(reals | randoms) == 10

    def test_real_flag(self, small_group, rng):
        assert sample_klin(small_group, 1, rng, True).real
        assert not sample_klin(small_group, 1, rng, False).real


class TestMatrixKLin:
    def test_dimensions(self, small_group, rng):
        matrix = sample_matrix_klin(small_group, 3, 4, 2, rng)
        assert len(matrix) == 3
        assert all(len(row) == 4 for row in matrix)

    def test_toy_rank_recoverable(self, toy_group):
        """On a toy group the exponents can be brute-forced, so we verify
        g^R really has the claimed rank by recovering R."""
        rng = random.Random(1)
        rank_target = 2
        matrix = sample_matrix_klin(toy_group, 3, 3, rank_target, rng)
        # Recover exponents by baby-step giant-step... the toy group has
        # ~2^16 elements; build a small dlog table only for the entries.
        recovered = []
        for row in matrix:
            recovered_row = []
            for element in row:
                # brute force with early exit; entries are arbitrary in
                # [0, p) so use BSGS for speed.
                recovered_row.append(_bsgs_dlog(toy_group, element))
            recovered.append(recovered_row)
        assert linalg.rank(recovered, toy_group.p) == rank_target


def _bsgs_dlog(group, element) -> int:
    """Baby-step giant-step dlog base g in the toy group."""
    import math

    p = group.p
    m = int(math.isqrt(p)) + 1
    table = {}
    current = group.g_identity()
    for j in range(m):
        table[current] = j
        current = current * group.g
    factor = (group.g ** m).inverse()
    gamma = element
    for i in range(m):
        if gamma in table:
            return (i * m + table[gamma]) % p
        gamma = gamma * factor
    raise AssertionError("dlog not found")
