"""Tests for the generation-leakage machinery (footnote 7 / Theorem 4.1
remarks)."""

import random

import pytest

from repro.analysis.generation_leakage import (
    GuessingReduction,
    assumption_budget_table,
    guessing_overhead,
    standard_b0,
    subexponential_b0,
)
from repro.errors import ParameterError
from repro.utils.bits import BitString


class TestBudgets:
    def test_standard_is_log_n(self):
        assert standard_b0(256) == 8
        assert standard_b0(1024) == 10

    def test_standard_grows_slowly(self):
        assert standard_b0(2**20) == 20

    def test_subexponential_is_n_eps(self):
        assert subexponential_b0(256, eps=0.5) == 16
        assert subexponential_b0(10_000, eps=0.5) == 100

    def test_subexponential_dominates_standard(self):
        for n in (64, 256, 4096):
            assert subexponential_b0(n) > standard_b0(n)

    def test_eps_bounds(self):
        with pytest.raises(ParameterError):
            subexponential_b0(64, eps=1.0)
        with pytest.raises(ParameterError):
            subexponential_b0(64, eps=0.0)

    def test_small_n_rejected(self):
        with pytest.raises(ParameterError):
            standard_b0(1)

    def test_overhead(self):
        assert guessing_overhead(0) == 1
        assert guessing_overhead(10) == 1024

    def test_table_shape(self):
        rows = assumption_budget_table((32, 64))
        assert len(rows) == 2
        assert rows[0]["standard_work"] == 2 ** rows[0]["standard_b0"]


class TestGuessingReduction:
    def test_finds_the_hidden_leakage(self):
        """A procedure that only succeeds when fed the true generation
        leakage: the reduction recovers it by enumeration."""
        secret_leak = BitString(0b10110, 5)

        def procedure(candidate: BitString) -> bool:
            return candidate == secret_leak

        outcome = GuessingReduction(5).run(procedure)
        assert outcome.succeeded
        assert outcome.correct_guess == secret_leak
        assert outcome.candidates_tried <= outcome.work_bound == 32

    def test_work_is_2_to_b0(self):
        """When no candidate works, the reduction exhausts exactly 2^b0."""
        outcome = GuessingReduction(6).run(lambda candidate: False)
        assert not outcome.succeeded
        assert outcome.candidates_tried == 64

    def test_zero_b0_trivial(self):
        outcome = GuessingReduction(0).run(lambda candidate: True)
        assert outcome.succeeded
        assert outcome.candidates_tried == 1

    def test_integration_with_game(self, small_params):
        """End to end: the adversary takes b0 = log n bits of generation
        leakage; a simulated reduction recovers the exact leakage string
        by guessing -- the mechanism that buys Theorem 4.1's b0 > 0."""
        from repro.analysis.games import Adversary, CPACMLGame
        from repro.core.optimal import OptimalDLR
        from repro.leakage.functions import PrefixBits
        from repro.leakage.oracle import LeakageBudget

        b0 = standard_b0(small_params.n)
        scheme = OptimalDLR(small_params)

        class GenLeaker(Adversary):
            observed = None

            def generation_leakage(self):
                return PrefixBits(b0)

            def observe_leakage(self, period, results):
                if period == -1:
                    type(self).observed = results[(0, "gen")]

        game = CPACMLGame(scheme, LeakageBudget(b0, 0, 0), random.Random(1))
        result = game.run(GenLeaker(random.Random(2)))
        assert not result.aborted
        assert GenLeaker.observed is not None
        true_leak = GenLeaker.observed

        reduction = GuessingReduction(b0)
        outcome = reduction.run(lambda candidate: candidate == true_leak)
        assert outcome.succeeded
        assert outcome.work_bound == 2 ** b0
