"""Tests for the concrete adversaries: the leakage surface is honest
(over-budget leakage breaks the scheme) and the in-budget best-known
attack is powerless."""

import random

import pytest

from repro.analysis.adversaries import (
    BruteForceAdversary,
    KeyRecoveryAdversary,
    RandomGuessAdversary,
    decode_scalars,
)
from repro.analysis.games import CPACMLGame
from repro.analysis.stattests import empirical_advantage
from repro.core.optimal import OptimalDLR
from repro.leakage.oracle import LeakageBudget
from repro.utils.bits import BitString


@pytest.fixture()
def scheme(small_params):
    return OptimalDLR(small_params)


class TestDecodeScalars:
    def test_roundtrip(self):
        width = 8
        values = [3, 255, 0, 77]
        bits = BitString.empty()
        for v in values:
            bits = bits + BitString(v, width)
        assert decode_scalars(bits, width, 4) == values

    def test_offset(self):
        bits = BitString(0xAB, 8) + BitString(0xCD, 8)
        assert decode_scalars(bits, 8, 1, offset=8) == [0xCD]


class TestKeyRecovery:
    def test_wins_with_over_budget(self, scheme):
        """With b1 >= 2 m1 and b2 >= 2 m2 the refresh snapshots determine
        the master key: advantage 1."""
        params = scheme.params
        budget = LeakageBudget(0, 2 * params.sk_comm_bits(), 2 * params.sk2_bits())
        outcomes = []
        for i in range(6):
            game = CPACMLGame(scheme, budget, random.Random(i))
            outcomes.append(game.run(KeyRecoveryAdversary(random.Random(100 + i), scheme)).won)
        assert all(outcomes)

    def test_recovers_actual_msk(self, scheme):
        params = scheme.params
        budget = LeakageBudget(0, 2 * params.sk_comm_bits(), 2 * params.sk2_bits())
        adversary = KeyRecoveryAdversary(random.Random(1), scheme)
        CPACMLGame(scheme, budget, random.Random(2)).run(adversary)
        assert adversary.master_secret is not None
        # e(g, msk) must equal the public z.
        group = scheme.group
        assert group.pair(group.g, adversary.master_secret) == adversary.view.public_key.z

    def test_aborts_under_theorem_budget(self, scheme):
        """The same adversary against the paper's budget is refused."""
        params = scheme.params
        budget = LeakageBudget(0, params.theorem_b1(), params.theorem_b2())
        result = CPACMLGame(scheme, budget, random.Random(3)).run(
            KeyRecoveryAdversary(random.Random(4), scheme)
        )
        assert result.aborted


class TestBruteForce:
    def test_wins_when_missing_bits_small(self, scheme):
        """b1 = m1 - 6: only 6 unknown bits -> enumeration succeeds."""
        params = scheme.params
        b1 = params.sk_comm_bits() - 6
        budget = LeakageBudget(0, b1, params.sk2_bits())
        adversary = BruteForceAdversary(random.Random(5), scheme, b1, max_work_bits=8)
        result = CPACMLGame(scheme, budget, random.Random(6)).run(adversary)
        assert result.won
        assert adversary.master_secret is not None
        assert adversary.attempted_candidates <= 2 ** 6

    def test_gives_up_when_missing_bits_large(self, scheme):
        """Under the theorem budget the missing entropy (~3n bits) exceeds
        any feasible work bound: the adversary reverts to guessing."""
        params = scheme.params
        b1 = params.theorem_b1()
        budget = LeakageBudget(0, b1, params.sk2_bits())
        adversary = BruteForceAdversary(random.Random(7), scheme, b1, max_work_bits=12)
        result = CPACMLGame(scheme, budget, random.Random(8)).run(adversary)
        assert not result.aborted
        assert adversary.master_secret is None

    def test_in_budget_advantage_statistically_zero(self, scheme):
        params = scheme.params
        b1 = params.theorem_b1()
        budget = LeakageBudget(0, b1, params.sk2_bits())
        outcomes = [
            CPACMLGame(scheme, budget, random.Random(i)).run(
                BruteForceAdversary(random.Random(500 + i), scheme, b1, max_work_bits=6)
            ).won
            for i in range(30)
        ]
        assert empirical_advantage(outcomes).is_consistent_with_no_advantage()


class TestRandomGuess:
    def test_no_leakage_no_advantage(self, scheme):
        outcomes = [
            CPACMLGame(scheme, LeakageBudget(0, 0, 0), random.Random(i)).run(
                RandomGuessAdversary(random.Random(900 + i))
            ).won
            for i in range(30)
        ]
        estimate = empirical_advantage(outcomes)
        assert estimate.is_consistent_with_no_advantage()


class TestTranscriptAdaptive:
    def test_adaptive_choices_flow_through_game(self, scheme):
        """The function choice depends on the transcript and earlier
        leakage; the game must deliver results for every period."""
        from repro.analysis.adversaries import TranscriptAdaptiveAdversary
        from repro.leakage.oracle import LeakageBudget

        adversary = TranscriptAdaptiveAdversary(
            random.Random(1), periods=3, bits_per_device=8
        )
        result = CPACMLGame(scheme, LeakageBudget(0, 16, 16), random.Random(2)).run(
            adversary
        )
        assert not result.aborted
        assert result.periods == 3
        assert len(adversary.view.leakage_log) == 3

    def test_choices_actually_differ_across_periods(self, scheme):
        """Adaptivity is real: the chosen projections change as the
        transcript grows."""
        from repro.analysis.adversaries import TranscriptAdaptiveAdversary
        from repro.leakage.oracle import LeakageBudget

        captured = []

        class Spy(TranscriptAdaptiveAdversary):
            def period_functions(self, period):
                request = super().period_functions(period)
                if request is not None:
                    captured.append(tuple(request[0].indices))
                return request

        CPACMLGame(scheme, LeakageBudget(0, 16, 16), random.Random(3)).run(
            Spy(random.Random(4), periods=3, bits_per_device=8)
        )
        assert len(captured) == 3
        assert len(set(captured)) == 3  # all distinct
