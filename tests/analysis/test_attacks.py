"""Tests for the baseline attacks (the paper's motivation, quantified)."""

import random

from repro.analysis.attacks import (
    elgamal_continual_break,
    elgamal_single_shot_break,
    periods_to_break,
)


class TestSingleShot:
    def test_full_budget_breaks(self, small_group):
        rng = random.Random(1)
        outcome = elgamal_single_shot_break(small_group, small_group.scalar_bits(), rng)
        assert outcome.won
        assert outcome.brute_force_work <= 1

    def test_nearly_full_budget_breaks_with_work(self, small_group):
        rng = random.Random(2)
        outcome = elgamal_single_shot_break(
            small_group, small_group.scalar_bits() - 8, rng, max_work_bits=10
        )
        assert outcome.won
        assert outcome.brute_force_work <= 256

    def test_small_budget_fails(self, small_group):
        rng = random.Random(3)
        outcome = elgamal_single_shot_break(small_group, 4, rng, max_work_bits=8)
        assert not outcome.won

    def test_leaked_bits_capped_at_key_size(self, small_group):
        rng = random.Random(4)
        outcome = elgamal_single_shot_break(small_group, 10_000, rng)
        assert outcome.leaked_bits == small_group.scalar_bits()


class TestContinual:
    def test_accumulation_breaks_unrefreshed_key(self, small_group):
        """rate * periods >= 1 -> total break: the 'hole in the bucket'."""
        rng = random.Random(5)
        assert elgamal_continual_break(small_group, rate=0.25, periods=4, rng=rng).won
        # rate 0.1 of a 32-bit key floors to 3 bits/period: 11 periods
        # are needed to cover all 32 bit positions.
        assert elgamal_continual_break(small_group, rate=0.1, periods=11, rng=rng).won

    def test_insufficient_periods_fail(self, small_group):
        rng = random.Random(6)
        assert not elgamal_continual_break(small_group, rate=0.25, periods=3, rng=rng).won
        assert not elgamal_continual_break(small_group, rate=0.05, periods=10, rng=rng).won

    def test_leak_accounting(self, small_group):
        rng = random.Random(7)
        outcome = elgamal_continual_break(small_group, rate=0.25, periods=2, rng=rng)
        per_period = int(0.25 * small_group.scalar_bits())
        assert outcome.leaked_bits == 2 * per_period

    def test_periods_to_break(self):
        assert periods_to_break(0.25) == 4
        assert periods_to_break(0.5) == 2
        assert periods_to_break(0.3) == 4
        assert periods_to_break(1.0) == 1


class TestContrastWithDLR:
    def test_same_rate_dlr_survives_many_periods(self, small_params):
        """The punchline: at a per-period rate that kills unrefreshed
        ElGamal in 4 periods, DLR runs arbitrarily many periods because
        refresh decouples the windows.  (The full statistical version is
        the T6 benchmark; here we just verify the mechanism -- leaked
        windows of *different* sharings cannot be combined.)"""
        import random as _random

        from repro.analysis.adversaries import BruteForceAdversary
        from repro.analysis.games import CPACMLGame
        from repro.core.optimal import OptimalDLR
        from repro.leakage.oracle import LeakageBudget

        scheme = OptimalDLR(small_params)
        quarter = small_params.sk_comm_bits() // 4
        budget = LeakageBudget(0, quarter, small_params.sk2_bits())

        class WindowAdversary(BruteForceAdversary):
            """Leaks a different quarter of sk_comm each period for 4
            periods -- the strategy that kills ElGamal."""

            def period_functions(self, period):
                if period >= 4:
                    return None
                from repro.leakage.functions import BitProjection, NullLeakage

                m1 = small_params.sk_comm_bits()
                m2 = small_params.sk2_bits()
                window = list(range(period * quarter, (period + 1) * quarter))
                return (
                    BitProjection(window),
                    NullLeakage(),
                    BitProjection(list(range(m2))),
                    NullLeakage(),
                )

            def observe_leakage(self, period, results):
                # Collect windows but never attempt recovery: each window
                # refers to a different post-refresh key.
                if self.view is not None:
                    self.view.leakage_log.append((period, results))

        result = CPACMLGame(scheme, budget, _random.Random(1)).run(
            WindowAdversary(_random.Random(2), scheme, quarter)
        )
        assert not result.aborted
        assert result.periods == 4
        # The adversary leaked 4 * quarter = m1 bits in total -- the same
        # amount that fully determines an ElGamal key -- yet has no
        # complete picture of ANY single sk_comm.
