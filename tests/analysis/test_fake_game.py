"""Tests for the section 6 fake-game distinguisher machinery."""

import random

import pytest

from repro.analysis.fake_game import FakeGameSampler
from repro.analysis.stattests import chi_squared_two_sample
from repro.core.params import DLRParams


@pytest.fixture()
def sampler(toy_params):
    return FakeGameSampler(toy_params, random.Random(1))


class TestSampling:
    def test_consistency(self, sampler):
        """P2's honest recomputation on the fake inputs reproduces c',
        and c' decrypts to the advised output -- 'despite using this
        flawed share, the decryption protocol produces the correct
        output'."""
        for _ in range(5):
            period = sampler.sample_period()
            assert sampler.is_consistent(period)

    def test_sk2_has_right_length(self, sampler, toy_params):
        period = sampler.sample_period()
        assert len(period.sk2) == toy_params.ell

    def test_sk1_uniform_and_independent(self, sampler):
        """sk1 exponents are fresh uniform values each sample."""
        a = sampler.sample_period().a_exps
        b = sampler.sample_period().a_exps
        assert a != b

    def test_full_rank_rarely_resampled(self, sampler):
        """The full-rank requirement fails with probability ~ (kappa+1)/p;
        on a 16-bit toy group re-sampling should be essentially absent."""
        total = sum(sampler.sample_period().resamples for _ in range(20))
        assert total <= 1

    def test_solution_space_dimension(self, sampler, toy_params):
        """Distinct draws of sk2 for *fixed* transcripts would span an
        affine space of dimension ell - (kappa+1); here we at least check
        distinct samples differ (fresh transcripts each time)."""
        sk2s = {tuple(sampler.sample_period().sk2) for _ in range(5)}
        assert len(sk2s) == 5


class TestRealVsFake:
    def test_sk2_marginal_matches_uniform(self, toy_params):
        """Paper claim (i): the joint distribution of (pk, C, sk2) is
        identical in aux and fake games.  We verify the checkable
        consequence on toy groups: the marginal of each fake-sk2
        coordinate is uniform on Z_p, like the real game's."""
        sampler = FakeGameSampler(toy_params, random.Random(2))
        p = toy_params.group.p
        rng = random.Random(3)
        # Bucket coordinates mod 8 to keep the chi-squared support small.
        fake = []
        for _ in range(60):
            period = sampler.sample_period()
            fake.extend(v % 8 for v in period.sk2)
        real = [rng.randrange(p) % 8 for _ in range(len(fake))]
        result = chi_squared_two_sample(fake, real)
        assert not result.rejects_at(0.001)

    def test_constraint_binds(self, sampler, toy_params):
        """Perturbing any sk2 coordinate breaks the transcript constraint:
        the sampled share really is conditioned on the transcript."""
        period = sampler.sample_period()
        tampered = list(period.sk2)
        tampered[0] = (tampered[0] + 1) % toy_params.group.p
        period.sk2 = tampered
        assert not sampler.is_consistent(period)

    def test_decrypts_to_advised_message(self, sampler):
        period = sampler.sample_period()
        decrypted = sampler.hpske.decrypt(period.sk_comm, period.c_prime)
        expected = sampler._gt ** period.message_exp
        assert decrypted == expected
