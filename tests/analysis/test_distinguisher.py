"""Tests for the executable section 6 distinguisher skeleton."""

import random

import pytest

from repro.analysis.assumptions import sample_bddh
from repro.analysis.distinguisher import (
    BDDHDistinguisher,
    ChallengeAdversary,
    DlogBreaker,
    _bsgs_dlog,
)


@pytest.fixture()
def distinguisher(toy_params):
    return BDDHDistinguisher(toy_params, random.Random(1))


class TestBSGS:
    def test_recovers_exponents(self, toy_group):
        rng = random.Random(2)
        for _ in range(5):
            k = toy_group.random_scalar(rng)
            assert _bsgs_dlog(toy_group, toy_group.g ** k) == k

    def test_identity(self, toy_group):
        assert _bsgs_dlog(toy_group, toy_group.g_identity()) == 0


class TestPlanting:
    def test_real_tuple_gives_valid_encryption(self, distinguisher, toy_group):
        """With T = e(g,g)^{abc}, the planted challenge is exactly
        Enc_pk(m_b) with randomness c: B / pk^c = m_b."""
        rng = random.Random(3)
        tup = sample_bddh(toy_group, rng, real=True)
        adversary = DlogBreaker(random.Random(4))
        outcome = distinguisher.fake_game(tup, adversary)
        assert outcome.adversary_won  # the breaker decrypts perfectly

    def test_random_tuple_hides_bit(self, distinguisher, toy_group):
        """With uniform T, even the unbounded breaker is at chance."""
        wins = 0
        for i in range(20):
            tup = sample_bddh(toy_group, random.Random(100 + i), real=False)
            outcome = distinguisher.fake_game(tup, DlogBreaker(random.Random(200 + i)))
            wins += outcome.adversary_won
        assert 3 <= wins <= 17  # chance-level


class TestDistinguisherAdvantage:
    def test_unbounded_adversary_breaks_toy_bddh(self, distinguisher):
        """On toy groups BDDH is easy, and D + DlogBreaker demonstrates
        it: near-perfect advantage.  (This is the reduction working as
        designed -- if an adversary wins the game, BDDH falls.)"""
        advantage = distinguisher.estimate_advantage(
            lambda rng: DlogBreaker(rng), trials=15
        )
        assert advantage > 0.3

    def test_bounded_adversary_gives_no_advantage(self, distinguisher):
        """With a guessing adversary, D distinguishes nothing: the
        reduction transfers exactly the adversary's advantage."""
        advantage = distinguisher.estimate_advantage(
            lambda rng: ChallengeAdversary(rng), trials=30
        )
        assert abs(advantage) < 0.35  # statistically ~0

    def test_output_convention(self, distinguisher, toy_group):
        tup = sample_bddh(toy_group, random.Random(5), real=True)
        bit = distinguisher.distinguish(tup, DlogBreaker(random.Random(6)))
        assert bit == 1
