"""SessionRegistry: lifecycle, eviction/rehydration, admission control."""

from __future__ import annotations

import random

import pytest

from repro.core.dlr import DLR
from repro.errors import AdmissionRejected, CheckpointError, ParameterError
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.service import SessionRegistry, StaleSessionError
from repro.service.session import ManagedSession, SessionKey


def fresh_session(registry, tenant="acme", key="k1", seed=7):
    return registry.create(tenant, key, seed=seed)


def encrypt_for(session, seed=1):
    rng = random.Random(seed)
    message = session.group.random_gt(rng)
    scheme = DLR(session.public_key.params)
    return message, scheme.encrypt(session.public_key, message, rng)


class TestLifecycle:
    def test_create_serves_decrypts(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        message, ciphertext = encrypt_for(session)
        record = session.serve_decrypt(ciphertext)
        assert record.plaintext == message
        assert record.period == 0
        assert session.next_period == 1

    def test_create_twice_rejected(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        fresh_session(registry)
        with pytest.raises(ParameterError, match="already exists"):
            fresh_session(registry)

    def test_checkpoint_written_at_create(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        assert registry.checkpoint_path(session.key).exists()

    def test_invalid_names_rejected(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        for tenant, key in [("../up", "k"), ("t", "a/b"), ("", "k"), ("t", ".hidden")]:
            with pytest.raises(ParameterError, match="invalid"):
                registry.create(tenant, key)

    def test_unknown_key_raises_keyerror(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        with pytest.raises(KeyError):
            registry.get("acme", "never-created")


class TestEvictionRehydration:
    def test_evict_then_get_rehydrates_and_continues(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        message, ciphertext = encrypt_for(session)
        session.serve_decrypt(ciphertext)

        assert registry.evict("acme", "k1")
        assert registry.resident_count() == 0

        revived = registry.get("acme", "k1")
        assert revived is not session
        # The refresh preserved pk, so the same ciphertext still decrypts,
        # and the period counter continues where the checkpoint left off.
        record = revived.serve_decrypt(ciphertext)
        assert record.plaintext == message
        assert record.period == 1

    def test_evicted_session_object_is_stale(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        _, ciphertext = encrypt_for(session)
        registry.evict("acme", "k1")
        with pytest.raises(StaleSessionError):
            session.serve_decrypt(ciphertext)

    def test_evict_missing_returns_false(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        assert registry.evict("acme", "nope") is False

    def test_capacity_evicts_lru(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=2)
        a = registry.create("t", "a", seed=1)
        b = registry.create("t", "b", seed=2)
        _, ct = encrypt_for(b)
        b.serve_decrypt(ct)  # a is now least recently used
        registry.create("t", "c", seed=3)
        assert registry.resident_count() == 2
        assert a.evicted
        assert not b.evicted
        # a's state survived on disk and rehydrates on demand
        assert "t/a" in registry.known_keys()
        assert registry.get("t", "a").next_period == 0

    def test_rehydration_counts_in_metrics(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        fresh_session(registry)
        registry.evict("acme", "k1")
        registry.get("acme", "k1")
        assert registry.metrics.counter_value("service.rehydrations") == 1
        assert registry.metrics.counter_value("service.evictions") == 1

    def test_corrupt_checkpoint_surfaces_checkpoint_error(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        registry.evict("acme", "k1")
        path = registry.checkpoint_path(session.key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointError):
            registry.get("acme", "k1")

    def test_evict_all_drains(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=8)
        for i in range(3):
            registry.create("t", f"k{i}", seed=i)
        assert registry.evict_all() == 3
        assert registry.resident_count() == 0
        assert registry.metrics.gauge("service.sessions_active").value == 0


class TestAdmissionControl:
    def test_busy_session_rejects_nonblocking_evict(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        with session.lock:
            with pytest.raises(AdmissionRejected, match="busy"):
                registry.evict("acme", "k1", wait=False)

    def test_capacity_with_all_sessions_busy_rejects(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=1)
        session = fresh_session(registry)
        with session.lock:  # resident and mid-request
            with pytest.raises(AdmissionRejected, match="capacity"):
                registry.create("acme", "k2", seed=8)

    def test_exhausted_budget_rejects_before_protocol(self, tmp_path, small_params):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        # Drain P1's current-period budget the way retries would.
        oracle = LeakageOracle(LeakageBudget(b0=0, b1=8, b2=8))
        oracle.charge_retry(1, 8)
        session.supervisor.oracle = oracle
        assert "exhausted" in session.admission_error()
        _, ciphertext = encrypt_for(session)
        with pytest.raises(AdmissionRejected, match="exhausted"):
            session.serve_decrypt(ciphertext)

    def test_frozen_session_rejects_with_reason(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        session.supervisor.frozen = True
        assert "frozen" in session.admission_error()
        _, ciphertext = encrypt_for(session)
        with pytest.raises(AdmissionRejected, match="frozen"):
            session.serve_decrypt(ciphertext)

    def test_healthy_session_admits(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        assert session.admission_error() is None


class TestSnapshot:
    def test_snapshot_shape(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        session = fresh_session(registry)
        _, ciphertext = encrypt_for(session)
        session.serve_decrypt(ciphertext)
        snap = registry.snapshot()
        assert snap["capacity"] == 4
        assert snap["resident_count"] == 1
        (row,) = snap["resident"]
        assert row["tenant"] == "acme" and row["key"] == "k1"
        assert row["next_period"] == 1
        assert row["requests_served"] == 1
        assert row["frozen"] is False
        assert set(row["budget_remaining"]) == {"P1", "P2"}
        assert snap["known_keys"] == ["acme/k1"]

    def test_view_is_json_shaped(self, tmp_path):
        import json

        registry = SessionRegistry(tmp_path, capacity=4)
        fresh_session(registry)
        json.dumps(registry.snapshot())  # must not raise


class TestSessionKey:
    def test_ordering_and_str(self):
        assert str(SessionKey("t", "k")) == "t/k"
        assert SessionKey("a", "b") < SessionKey("a", "c") < SessionKey("b", "a")
