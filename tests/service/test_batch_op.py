"""Wire behavior of the amortized ``decrypt_batch`` service op."""

from __future__ import annotations

import random

import pytest

from repro.errors import ServiceError
from repro.utils import persist


def _encrypt_many(client, tenant, key, count, seed=5):
    rng = random.Random(seed)
    public_key = client.public_key(tenant, key)
    from repro.core.dlr import DLR

    scheme = DLR(public_key.params)
    messages = [public_key.group.random_gt(rng) for _ in range(count)]
    ciphertexts = scheme.encrypt_batch(public_key, messages, rng)
    return messages, ciphertexts


class TestDecryptBatchOp:
    def test_round_trip(self, client):
        client.open_key("acme", "k", seed=1)
        messages, ciphertexts = _encrypt_many(client, "acme", "k", 5)
        assert client.decrypt_batch("acme", "k", ciphertexts) == messages

    def test_batch_is_one_period(self, client, registry):
        client.open_key("acme", "k", seed=1)
        messages, ciphertexts = _encrypt_many(client, "acme", "k", 4)
        client.decrypt_batch("acme", "k", ciphertexts)
        assert registry.get("acme", "k").next_period == 1

    def test_replay_cache_absorbs_duplicate_request_id(self, client, registry):
        client.open_key("acme", "k", seed=1)
        messages, ciphertexts = _encrypt_many(client, "acme", "k", 3)
        first = client.decrypt_batch(
            "acme", "k", ciphertexts, request_id="req-1"
        )
        replayed = client.decrypt_batch(
            "acme", "k", ciphertexts, request_id="req-1"
        )
        assert replayed == first == messages
        # The duplicate did not burn a second period.
        assert registry.get("acme", "k").next_period == 1

    def test_empty_batch_is_bad_request(self, client):
        client.open_key("acme", "k", seed=1)
        envelope = persist.dumps("ciphertext_batch", []).encode("utf-8")
        with pytest.raises(ServiceError) as excinfo:
            client.call(
                "decrypt_batch",
                envelope,
                tenant="acme",
                key="k",
                request_id="r",
            )
        assert excinfo.value.code == "bad-request"

    def test_garbage_payload_is_bad_request(self, client):
        client.open_key("acme", "k", seed=1)
        with pytest.raises(ServiceError) as excinfo:
            client.call(
                "decrypt_batch",
                b"not json",
                tenant="acme",
                key="k",
                request_id="r",
            )
        assert excinfo.value.code == "bad-request"

    def test_batch_size_histogram_exposed(self, client, service):
        client.open_key("acme", "k", seed=1)
        _, ciphertexts = _encrypt_many(client, "acme", "k", 5)
        client.decrypt_batch("acme", "k", ciphertexts)
        text = client.metrics_text()
        assert "service_batch_size" in text

    def test_unknown_key_code(self, client):
        envelope = persist.dumps("ciphertext_batch", []).encode("utf-8")
        with pytest.raises(ServiceError) as excinfo:
            client.call(
                "decrypt_batch",
                envelope,
                tenant="acme",
                key="missing",
                request_id="r",
            )
        assert excinfo.value.code == "unknown-key"


class TestRuntimeBatch:
    def test_run_request_batch_round_trip(self, registry):
        from repro.core.dlr import DLR

        session = registry.create("acme", "k", seed=3)
        rng = random.Random(9)
        public_key = session.public_key
        scheme = DLR(public_key.params)
        messages = [public_key.group.random_gt(rng) for _ in range(3)]
        ciphertexts = scheme.encrypt_batch(public_key, messages, rng)
        record = session.serve_decrypt_batch(ciphertexts)
        assert list(record.plaintexts) == messages
