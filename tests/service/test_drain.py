"""Graceful drain: idempotent stop, typed mid-drain codes, drain-under-load."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.dlr import DLR
from repro.errors import PeerDisconnected, ServiceError, TransportTimeout
from repro.runtime.checkpoint import load_checkpoint
from repro.service import (
    KeyService,
    ServiceClient,
    SessionKey,
    SessionRegistry,
)
from repro.utils import persist

#: Codes a client may legitimately see when its request races a drain:
#: the typed shed/drain responses, or a classified connection loss once
#: the drain cuts the socket.
DRAIN_CODES = {
    "draining",
    "overloaded",
    "deadline-exceeded",
    "connection-lost",
    "connection-timeout",
}


class TestStopIdempotency:
    def test_stop_before_start_is_a_no_op(self, tmp_path):
        service = KeyService(SessionRegistry(tmp_path, capacity=4))
        service.stop()  # must not raise

    def test_stop_twice_sequentially(self, tmp_path):
        service = KeyService(SessionRegistry(tmp_path, capacity=4)).start()
        service.stop()
        service.stop()  # second call returns immediately

    def test_concurrent_stops_run_the_shutdown_once(self, tmp_path):
        registry = SessionRegistry(tmp_path / "state", capacity=4)
        service = KeyService(registry, workers=2).start()
        registry.create("acme", "a", seed=1)
        registry.create("acme", "b", seed=2)

        drains: list[int] = []
        real_evict_all = registry.evict_all

        def counting_evict_all():
            drains.append(1)
            return real_evict_all()

        registry.evict_all = counting_evict_all
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def race():
            barrier.wait()
            try:
                service.stop(drain_deadline=2.0)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        # The once-lock serialized the racers: one drain, not four.
        assert drains == [1]
        assert registry.resident_count() == 0
        assert service.drain_failures == []

    def test_stop_reports_checkpoint_failures(self, tmp_path, monkeypatch):
        registry = SessionRegistry(tmp_path / "state", capacity=4)
        service = KeyService(registry).start()
        registry.create("acme", "hurt", seed=3)

        import repro.service.registry as registry_mod

        def broken_save(path, state):
            raise OSError("disk full")

        monkeypatch.setattr(registry_mod, "save_checkpoint", broken_save)
        service.stop()
        assert len(service.drain_failures) == 1
        assert "acme/hurt" in service.drain_failures[0]
        assert (
            registry.metrics.counter_value("service.drain_checkpoint_failures") == 1
        )
        # The per-commit checkpoint (written at create) is still the
        # durable truth: the key survives the failed end-of-life flush.
        state = load_checkpoint(registry.checkpoint_path(SessionKey("acme", "hurt")))
        assert state.next_period == 0


class TestDrainSignalling:
    def test_mid_drain_heavy_op_gets_the_typed_retryable_code(self, tmp_path):
        registry = SessionRegistry(tmp_path / "state", capacity=4)
        service = KeyService(registry, workers=2, client_timeout=5.0).start()
        try:
            with ServiceClient(service.address, timeout=5.0, retry=None) as client:
                public_key = client.open_key("acme", "k", seed=1)
                rng = random.Random(4)
                message = public_key.group.random_gt(rng)
                ciphertext = DLR(public_key.params).encrypt(public_key, message, rng)
                envelope = persist.dumps("ciphertext", ciphertext).encode("utf-8")

                service.begin_drain()
                assert service.health_status() == "draining"
                # The connection keeps answering during the drain:
                # protocol work is refused with the typed code...
                header, _ = client.request(
                    "decrypt", envelope, tenant="acme", key="k"
                )
                assert header["ok"] is False
                assert header["code"] == "draining"
                assert header["retry-after"] > 0
                assert (
                    service.metrics.counter_value("service.sheds", mode="drain") == 1
                )
                # ...while light ops stay served: health is observable
                # all the way through the drain.
                assert client.ping()
                health, _ = client.request("health")
                assert health["status"] == "draining"
                # stop() cuts the socket; after that the client sees a
                # classified error, never a raw socket exception.
                service.stop()
                with pytest.raises((PeerDisconnected, TransportTimeout, ServiceError)):
                    client.request("ping")
        finally:
            service.stop()
        # Nothing committed for the refused request.
        state = load_checkpoint(registry.checkpoint_path(SessionKey("acme", "k")))
        assert state.next_period == 0


class TestDrainUnderLoad:
    def test_in_flight_work_completes_and_checkpoints(self, tmp_path):
        registry = SessionRegistry(tmp_path / "state", capacity=16)
        service = KeyService(registry, workers=4, client_timeout=5.0).start()
        keys = [("acme", f"k{i}") for i in range(3)]
        with ServiceClient(service.address, timeout=5.0) as setup:
            for index, (tenant, key) in enumerate(keys):
                setup.open_key(tenant, key, seed=index)

        results: list[tuple[int, list]] = []
        mismatches: list[str] = []
        results_lock = threading.Lock()
        halt = threading.Event()

        def stream(tenant, key, index):
            rng = random.Random(index)
            successes = 0
            failures: list[BaseException] = []
            client = ServiceClient(service.address, timeout=5.0, retry=None)
            try:
                try:
                    # Each stream decodes its own public key: group
                    # elements never compose across clients' decodes.
                    public_key = client.public_key(tenant, key)
                except (ServiceError, PeerDisconnected, TransportTimeout) as exc:
                    failures.append(exc)
                    return
                while not halt.is_set():
                    message = public_key.group.random_gt(rng)
                    try:
                        recovered, _period = client.encrypt_and_decrypt(
                            tenant, key, message, rng
                        )
                    except (ServiceError, PeerDisconnected, TransportTimeout) as exc:
                        failures.append(exc)
                        break
                    if recovered != message:
                        with results_lock:
                            mismatches.append(f"{tenant}/{key}")
                        break
                    successes += 1
            finally:
                client.close()
                with results_lock:
                    results.append((successes, failures))

        threads = [
            threading.Thread(target=stream, args=(tenant, key, index))
            for index, (tenant, key) in enumerate(keys)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.4)  # let every stream commit some periods
        service.stop(drain_deadline=5.0)
        halt.set()
        for thread in threads:
            thread.join(timeout=15.0)
        assert not any(thread.is_alive() for thread in threads)

        assert mismatches == []
        assert service.drain_failures == []
        total_ok = sum(successes for successes, _ in results)
        assert total_ok >= 1, "no traffic flowed before the drain"
        # Every failure a client saw mid-drain was typed and classified.
        for _, failures in results:
            for exc in failures:
                if isinstance(exc, ServiceError):
                    assert exc.code in DRAIN_CODES
                else:
                    assert isinstance(exc, (PeerDisconnected, TransportTimeout))

        # Every key's checkpoint is loadable and carries the committed
        # work; no metric increment was lost: each committed period was
        # counted exactly once as a served decrypt.
        total_periods = 0
        for tenant, key in keys:
            state = load_checkpoint(registry.checkpoint_path(SessionKey(tenant, key)))
            total_periods += state.next_period
        ok_count = service.metrics.counter_value(
            "service.requests", op="decrypt", outcome="ok"
        )
        assert ok_count == total_periods
        # Clients never see more successes than the service committed
        # (a response can be lost in the cut; a commit cannot).
        assert total_ok <= total_periods
