"""End-to-end trace propagation: client spans parent server spans.

Three layers, increasingly live:

* a cross-thread soak -- many client threads against one in-process
  service under a single tracer; every ``service.request`` span must
  have exactly one (remote) parent and the merged JSONL must pass full
  referential validation;
* a true cross-process run -- ``repro-dlr serve --trace --prom-port``
  in a subprocess, a traced client in this process, the two JSONL files
  merged and the Prometheus endpoint scraped live;
* in-process gauge reconciliation -- the scraped per-tenant leakage
  budget gauges must equal the oracle ledgers exactly.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.service import KeyService, PrometheusEndpoint, ServiceClient
from repro.telemetry import (
    Tracer,
    merge_trace_files,
    tracing,
)

from tests.telemetry.test_prometheus import parse_exposition

STREAMS = 6
DECRYPTS_PER_STREAM = 2


def _descendant_names(spans, root_id, *, id_key, parent_key):
    """Names of every span below ``root_id`` in a parent-link forest."""
    children: dict[object, list] = {}
    for span in spans:
        children.setdefault(span[parent_key], []).append(span)
    names, stack = [], [root_id]
    while stack:
        for child in children.get(stack.pop(), ()):
            names.append(child["name"])
            stack.append(child[id_key])
    return names


class TestCrossThreadSoak:
    def test_every_request_span_has_one_parent_and_merged_trace_validates(
        self, registry, tmp_path
    ):
        with tracing(Tracer()) as tracer:
            with KeyService(registry, workers=4, client_timeout=30.0) as service:

                def stream(index: int) -> None:
                    with ServiceClient(service.address, timeout=30.0) as client:
                        rng = random.Random(1000 + index)
                        pk = client.open_key("soak", f"k{index}", seed=20 + index)
                        for _ in range(DECRYPTS_PER_STREAM):
                            message = pk.group.random_gt(rng)
                            recovered, _ = client.encrypt_and_decrypt(
                                "soak", f"k{index}", message, rng
                            )
                            assert recovered == message

                with ThreadPoolExecutor(max_workers=STREAMS) as pool:
                    # list() re-raises any worker exception.
                    list(pool.map(stream, range(STREAMS)))

        requests = tracer.spans_named("service.request")
        calls = tracer.spans_named("service.call")
        expected = STREAMS * (1 + DECRYPTS_PER_STREAM)  # open + decrypts
        assert len(requests) == expected
        assert len(calls) == expected

        # Exactly one parent each: the remote (client) ref, never an
        # ambient worker-thread span leaked across requests.
        for span in requests:
            assert span.remote_ref is not None
            assert span.parent_id is None
            assert span.trace_id is not None

        # No orphans: client attempt refs and server remote refs match 1:1.
        assert sorted(map(str, (s.remote_ref for s in requests))) == sorted(
            map(str, (s.ref for s in calls))
        )

        # One tracer lazily minted one trace id; every identified span
        # shares it.
        trace_ids = {s.trace_id for s in tracer.finished if s.trace_id is not None}
        assert trace_ids == {tracer.trace_id}

        # Each decrypt request decomposes into lock-wait, admission, a
        # protocol run with steps, and the durable checkpoint flush.
        records = [
            {"id": s.span_id, "parent": s.parent_id, "name": s.name}
            for s in tracer.finished
        ]
        decrypts = [s for s in requests if s.attrs.get("op") == "decrypt"]
        assert decrypts
        for span in decrypts:
            below = _descendant_names(
                records, span.span_id, id_key="id", parent_key="parent"
            )
            assert "service.lock_wait" in below
            assert "service.admission" in below
            assert "checkpoint.flush" in below
            assert any(name.startswith("step.") for name in below)

        # The exported JSONL merges into a fully-resolved valid trace:
        # every remote parent is present, so no exemption flags survive.
        raw = tmp_path / "soak.jsonl"
        merged_path = tmp_path / "merged.jsonl"
        tracer.export_jsonl(raw)
        spans = merge_trace_files([raw], output=merged_path)
        assert len(spans) == len(tracer.finished)
        merged_records = [
            json.loads(line)
            for line in merged_path.read_text().splitlines()
            if line.strip()
        ]
        assert not any(r.get("remote_parent") for r in merged_records)


class TestLiveServeCrossProcess:
    def test_client_span_parents_server_request_and_prom_scrape(self, tmp_path):
        announce = tmp_path / "addr.txt"
        prom_announce = tmp_path / "prom.txt"
        state = tmp_path / "state"
        server_trace = tmp_path / "server.jsonl"
        client_trace = tmp_path / "client.jsonl"

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
                "serve",
                "--checkpoint-dir", str(state),
                "--announce", str(announce),
                "--workers", "2",
                "--max-requests", "4",
                "--timeout", "15",
                "--trace", str(server_trace),
                "--prom-port", "0",
                "--prom-announce", str(prom_announce),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        client_tracer = Tracer(actor="client")
        try:
            deadline = time.monotonic() + 30.0
            while not (announce.exists() and prom_announce.exists()):
                assert proc.poll() is None, proc.communicate()[1]
                assert time.monotonic() < deadline, "serve never announced"
                time.sleep(0.05)
            host, port = announce.read_text().split()
            prom_host, prom_port = prom_announce.read_text().split()

            with tracing(client_tracer):
                with ServiceClient((host, int(port)), timeout=10.0) as client:
                    assert client.ping()
                    pk = client.open_key("acme", "k", seed=3)
                    rng = random.Random(1)
                    message = pk.group.random_gt(rng)
                    recovered, period = client.encrypt_and_decrypt(
                        "acme", "k", message, rng
                    )
                    assert recovered == message
                    assert period == 0

                    # Scrape the live endpoint while the server is up
                    # (three of four requests served; drain not begun).
                    with urllib.request.urlopen(
                        f"http://{prom_host}:{prom_port}/metrics", timeout=10.0
                    ) as response:
                        assert response.status == 200
                        assert response.headers["Content-Type"].startswith(
                            "text/plain"
                        )
                        exposition = response.read().decode("utf-8")

                    assert client.ping()  # 4th request: triggers the drain
            stdout, stderr = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr
        assert "serving on" in stdout
        client_tracer.export_jsonl(client_trace)

        # -- merged cross-process trace ---------------------------------
        merged_path = tmp_path / "merged.jsonl"
        spans = merge_trace_files([server_trace, client_trace], output=merged_path)
        by_id = {s["id"]: s for s in spans}

        client_decrypt = [
            s
            for s in spans
            if s["name"] == "service.call" and s["attrs"].get("op") == "decrypt"
        ]
        assert len(client_decrypt) == 1
        server_decrypt = [
            s
            for s in spans
            if s["name"] == "service.request" and s["attrs"].get("op") == "decrypt"
        ]
        assert len(server_decrypt) == 1
        # The server-side span is parented by the client attempt span,
        # across the process boundary, under one shared trace id.
        assert server_decrypt[0]["parent"] == client_decrypt[0]["id"]
        assert str(client_decrypt[0]["id"]).startswith("client:")
        assert str(server_decrypt[0]["id"]).startswith("server:")
        assert server_decrypt[0]["trace"] == client_decrypt[0]["trace"]
        assert server_decrypt[0]["attrs"].get("tenant") == "acme"
        # With both sides present the merge drops the remote_parent
        # exemption, so validation already proved the edge resolves.
        assert "remote_parent" not in server_decrypt[0]

        below = _descendant_names(
            spans, server_decrypt[0]["id"], id_key="id", parent_key="parent"
        )
        assert "service.lock_wait" in below
        assert "service.admission" in below
        assert "checkpoint.flush" in below
        assert "service.reply_encode" in below
        assert any(name.startswith("step.") for name in below)
        assert by_id[server_decrypt[0]["parent"]]["name"] == "service.call"

        # Every server request span in the merged trace resolved to a
        # client attempt: the wire fields propagated on every op.
        for span in spans:
            if span["name"] == "service.request":
                assert by_id[span["parent"]]["name"] == "service.call"

        # -- live scrape contents ---------------------------------------
        parsed = parse_exposition(exposition)
        assert parsed["types"]["service_requests_total"] == "counter"
        assert parsed["types"]["service_request_seconds"] == "histogram"
        key = (
            "service_requests_total",
            (("op", "decrypt"), ("outcome", "ok"), ("tenant", "acme")),
        )
        assert parsed["series"][key] == 1
        # Health/load gauges are stamped by the scrape handler itself.
        assert ("service_connections_active", ()) in parsed["series"]
        # Budget gauges carry the tenant dimension.
        remaining = (
            "service_budget_remaining_bits",
            (("device", "P1"), ("tenant", "acme")),
        )
        assert parsed["series"][remaining] > 0
        # Exemplars on the latency histogram link back to the very trace
        # the client was running: tail buckets are clickable into JSONL.
        exemplar_trace_ids = {
            exemplar["labels"].get("trace_id")
            for (name, _labels), exemplar in parsed["exemplars"].items()
            if name == "service_request_seconds_bucket"
        }
        assert client_tracer.trace_id in exemplar_trace_ids

        # -- the analyze CLI consumes the merged pair -------------------
        assert main(["trace", "analyze", str(server_trace), str(client_trace)]) == 0


class TestBudgetGaugeReconciliation:
    def test_scraped_budget_gauges_equal_oracle_ledgers(self, registry, service):
        with ServiceClient(service.address, timeout=10.0) as client:
            rng = random.Random(5)
            for tenant, decrypts in (("acme", 2), ("globex", 1)):
                pk = client.open_key(tenant, "k", seed=11)
                for _ in range(decrypts):
                    message = pk.group.random_gt(rng)
                    recovered, _ = client.encrypt_and_decrypt(
                        tenant, "k", message, rng
                    )
                    assert recovered == message

            with PrometheusEndpoint(service) as endpoint:
                host, port = endpoint.address
                with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics", timeout=10.0
                ) as response:
                    exposition = response.read().decode("utf-8")
        parsed = parse_exposition(exposition)

        # Recompute the expected totals straight from each resident
        # session's oracle -- the scrape must agree bit-for-bit.
        expected: dict[tuple[str, str], list[int]] = {}
        with registry._lock:
            resident = dict(registry._resident)
        for key, session in resident.items():
            oracle = session.supervisor.oracle
            assert oracle is not None
            for device in (1, 2):
                entry = expected.setdefault((key.tenant, f"P{device}"), [0, 0])
                entry[0] += oracle.remaining(device)
                entry[1] += oracle.retry_charged(device=device)
        assert expected  # both tenants resident

        for (tenant, device), (remaining, retry_bits) in expected.items():
            labels = (("device", device), ("tenant", tenant))
            assert parsed["series"][
                ("service_budget_remaining_bits", labels)
            ] == pytest.approx(remaining)
            assert parsed["series"][
                ("service_budget_retry_bits", labels)
            ] == pytest.approx(retry_bits)

        # Per-tenant request counters reconcile with the drive loop.
        series = parsed["series"]
        for tenant, decrypts in (("acme", 2), ("globex", 1)):
            key = (
                "service_requests_total",
                (("op", "decrypt"), ("outcome", "ok"), ("tenant", tenant)),
            )
            assert series[key] == decrypts

    def test_health_op_reports_backend_and_load(self, client):
        health = client.health()
        assert health["status"] == "ready"
        assert "backend" in health
        assert health["busy_workers"] >= 1  # the worker serving this request
        assert health["queue_depth"] >= 0

    def test_health_http_endpoint(self, service):
        with PrometheusEndpoint(service) as endpoint:
            host, port = endpoint.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/health", timeout=10.0
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
        assert payload["status"] == "ready"
        assert "backend" in payload

    def test_disabled_tracer_adds_no_spans_or_exemplars(self, registry):
        # The default NULL_TRACER path: no spans anywhere, and request
        # histograms carry no exemplars.
        with KeyService(registry, workers=2, client_timeout=10.0) as service:
            with ServiceClient(service.address, timeout=10.0) as client:
                pk = client.open_key("quiet", "k", seed=9)
                rng = random.Random(2)
                message = pk.group.random_gt(rng)
                recovered, _ = client.encrypt_and_decrypt("quiet", "k", message, rng)
                assert recovered == message
            hist = service.metrics.merged_histogram(
                "service.request_seconds", op="decrypt"
            )
            assert hist is not None
            assert "exemplars" not in hist.to_dict()
