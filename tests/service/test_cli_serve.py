"""The ``repro-dlr serve`` subcommand: announce file, bounded runs."""

from __future__ import annotations

import random
import threading
import time

from repro.cli import main
from repro.service import ServiceClient


def test_serve_bounded_run(tmp_path, capsys):
    announce = tmp_path / "addr.txt"
    state = tmp_path / "state"
    results = {}

    def run_server():
        results["exit"] = main(
            [
                "serve",
                "--checkpoint-dir", str(state),
                "--announce", str(announce),
                "--workers", "2",
                "--max-requests", "3",
                "--timeout", "10",
            ]
        )

    server = threading.Thread(target=run_server)
    server.start()
    try:
        deadline = time.monotonic() + 15.0
        while not announce.exists():
            assert time.monotonic() < deadline, "serve never announced its address"
            time.sleep(0.05)
        host, port = announce.read_text().split()
        with ServiceClient((host, int(port)), timeout=10.0) as client:
            assert client.ping()
            pk = client.open_key("cli", "k", seed=3)
            rng = random.Random(1)
            message = pk.group.random_gt(rng)
            recovered, period = client.encrypt_and_decrypt("cli", "k", message, rng)
            assert recovered == message
            assert period == 0
    finally:
        server.join(timeout=30.0)
    assert not server.is_alive(), "serve did not drain after --max-requests"
    assert results["exit"] == 0
    # The key's state survived shutdown as a durable checkpoint.
    assert (state / "cli" / "k.ckpt.json").exists()
    out = capsys.readouterr().out
    assert "serving on" in out
    assert '"requests_handled": 3' in out
