"""The resilience layer: deadlines, shedding, replay cache, retrying client."""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.core.dlr import DLR
from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    PeerDisconnected,
    RetryExhausted,
    ServiceError,
    TransportTimeout,
    WireFormatError,
)
from repro.protocol.transport import encode_frame, recv_frame
from repro.runtime.policy import RetryPolicy
from repro.service import (
    Deadline,
    KeyService,
    ResponseCache,
    ServiceClient,
    SessionRegistry,
)
from repro.service.resilience import (
    deadline_from_header,
    find_deadline_exceeded,
    is_idempotent,
    validated_request_id,
)
from repro.utils import persist


class TestDeadline:
    def test_after_counts_down_on_the_given_clock(self):
        now = [0.0]
        deadline = Deadline.after(1.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired
        now[0] = 2.0
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-1.0)

    def test_negative_budget_is_clamped_to_already_expired(self):
        deadline = Deadline.after(-5.0, clock=lambda: 0.0)
        assert deadline.expired

    def test_check_raises_typed_with_location(self):
        deadline = Deadline.after(0.0, clock=lambda: 10.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("at admission")
        assert excinfo.value.code == "deadline-exceeded"
        assert "at admission" in str(excinfo.value)

    def test_step_hook_names_the_protocol_step(self):
        deadline = Deadline(at=0.0, clock=lambda: 1.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.step_hook("dec1")
        assert "protocol step 'dec1'" in str(excinfo.value)

    def test_header_parse_absent_is_none(self):
        assert deadline_from_header({"op": "decrypt"}) is None

    def test_header_parse_accepts_numbers(self):
        deadline = deadline_from_header({"deadline": 2}, clock=lambda: 0.0)
        assert deadline.remaining() == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", ["soon", True, None, -1.0, [3]])
    def test_header_parse_rejects_malformed(self, bad):
        header = {"deadline": bad}
        if bad is None:
            assert deadline_from_header(header) is None
            return
        with pytest.raises(WireFormatError):
            deadline_from_header(header)

    def test_find_deadline_exceeded_walks_the_cause_chain(self):
        root = DeadlineExceeded("too late", where="step")
        try:
            try:
                raise root
            except DeadlineExceeded as inner:
                raise RuntimeError("rollback wrapper") from inner
        except RuntimeError as wrapped:
            assert find_deadline_exceeded(wrapped) is root
        assert find_deadline_exceeded(RuntimeError("unrelated")) is None


class TestIdempotencyMatrix:
    @pytest.mark.parametrize("op", ["ping", "describe", "stats", "health"])
    def test_light_reads_are_idempotent(self, op):
        assert is_idempotent(op, {})

    @pytest.mark.parametrize("op", ["open", "refresh", "evict", "decrypt"])
    def test_mutating_ops_are_not(self, op):
        assert not is_idempotent(op, {})

    def test_decrypt_with_request_id_is_idempotent(self):
        assert is_idempotent("decrypt", {"request_id": "abc-1"})

    @pytest.mark.parametrize("bad", [None, "", 123, "x" * 200])
    def test_request_id_validation(self, bad):
        with pytest.raises(ParameterError):
            validated_request_id(bad)
        assert validated_request_id("ok-1") == "ok-1"


class TestResponseCache:
    def test_round_trip_and_miss(self):
        cache = ResponseCache(4)
        cache.put(("t", "k", "r1"), {"period": 0}, b"bits")
        assert cache.get(("t", "k", "r1")) == ({"period": 0}, b"bits")
        assert cache.get(("t", "k", "r2")) is None

    def test_lru_bound_evicts_oldest(self):
        cache = ResponseCache(2)
        cache.put(("a",), {}, b"1")
        cache.put(("b",), {}, b"2")
        assert cache.get(("a",)) is not None  # refresh recency
        cache.put(("c",), {}, b"3")
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert len(cache) == 2

    def test_put_copies_fields(self):
        cache = ResponseCache(2)
        fields = {"period": 0}
        cache.put(("a",), fields, b"")
        fields["period"] = 99
        assert cache.get(("a",))[0] == {"period": 0}

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            ResponseCache(0)


def _ciphertext_envelope(public_key, rng):
    message = public_key.group.random_gt(rng)
    ciphertext = DLR(public_key.params).encrypt(public_key, message, rng)
    return message, persist.dumps("ciphertext", ciphertext).encode("utf-8")


class TestDeadlineOverWire:
    def test_expired_deadline_answered_at_admission(self, service, client):
        client.open_key("acme", "dl", seed=1)
        header, _ = client.request("refresh", tenant="acme", key="dl", deadline=0.0)
        assert header["ok"] is False
        assert header["code"] == "deadline-exceeded"
        assert service.metrics.counter_value("service.deadline_exceeded") == 1
        # nothing ran: the key's period counter never moved
        assert service.registry.get("acme", "dl").next_period == 0

    def test_light_ops_ignore_the_deadline_gate(self, client):
        header, _ = client.request("ping", deadline=0.0)
        assert header["ok"] is True

    def test_malformed_deadline_is_bad_request(self, client):
        client.open_key("acme", "mal", seed=2)
        header, _ = client.request("refresh", tenant="acme", key="mal", deadline="soon")
        assert header["code"] == "bad-request"

    def test_mid_protocol_expiry_rolls_back_and_stays_serviceable(self, registry):
        session = registry.create("acme", "mid", seed=7)
        rng = random.Random(1)
        message = session.public_key.group.random_gt(rng)
        ciphertext = DLR(session.public_key.params).encrypt(
            session.public_key, message, rng
        )
        # A clock that survives the lock-wait check, then jumps past the
        # deadline before the first protocol step.
        calls = {"n": 0}

        def clock():
            calls["n"] += 1
            return 0.0 if calls["n"] <= 1 else 100.0

        with pytest.raises(DeadlineExceeded) as excinfo:
            session.serve_decrypt(ciphertext, deadline=Deadline(at=1.0, clock=clock))
        assert "protocol step" in str(excinfo.value)
        # The period rolled back cleanly: nothing committed, nothing
        # frozen, and the step hook did not leak onto the transport.
        assert session.next_period == 0
        assert not session.frozen
        assert session.supervisor.transport.step_hook is None
        record = session.serve_decrypt(ciphertext)
        assert record.period == 0
        assert session.next_period == 1

    def test_expiry_while_waiting_for_the_session_lock(self, registry):
        session = registry.create("acme", "queue", seed=8)
        rng = random.Random(2)
        message = session.public_key.group.random_gt(rng)
        ciphertext = DLR(session.public_key.params).encrypt(
            session.public_key, message, rng
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            session.serve_decrypt(ciphertext, deadline=Deadline.after(0.0))
        assert "session lock" in str(excinfo.value)
        assert session.next_period == 0


class TestReplayCache:
    def test_same_request_id_replays_instead_of_burning_a_period(
        self, service, client, registry
    ):
        client.open_key("acme", "rk", seed=3)
        public_key = client.public_key("acme", "rk")
        message, envelope = _ciphertext_envelope(public_key, random.Random(9))
        first, body1 = client.request(
            "decrypt", envelope, tenant="acme", key="rk", request_id="req-1"
        )
        assert first["ok"] is True and "replayed" not in first
        second, body2 = client.request(
            "decrypt", envelope, tenant="acme", key="rk", request_id="req-1"
        )
        assert second["ok"] is True
        assert second["replayed"] is True
        assert second["period"] == first["period"] == 0
        assert body2 == body1
        assert service.metrics.counter_value("service.replayed_decrypts") == 1
        # only one period (and one leakage charge) was burned
        assert registry.get("acme", "rk").next_period == 1

    def test_without_request_id_each_call_burns_a_period(
        self, service, client, registry
    ):
        client.open_key("acme", "nr", seed=4)
        public_key = client.public_key("acme", "nr")
        _, envelope = _ciphertext_envelope(public_key, random.Random(10))
        for expected_period in (0, 1):
            header, _ = client.request("decrypt", envelope, tenant="acme", key="nr")
            assert header["ok"] is True
            assert header["period"] == expected_period
        assert registry.get("acme", "nr").next_period == 2

    @pytest.mark.parametrize("bad", [123, "", "x" * 200])
    def test_invalid_request_id_is_bad_request(self, client, bad):
        header, _ = client.request(
            "decrypt", b"{}", tenant="acme", key="missing", request_id=bad
        )
        assert header["code"] == "bad-request"


class TestStaleGroupRegression:
    def test_decode_runs_inside_the_reresolve_loop(
        self, service, client, registry, monkeypatch
    ):
        """An eviction between lookup and decode must not hand the
        rehydrated session a ciphertext decoded for its evicted twin."""
        client.open_key("acme", "stale", seed=5)
        public_key = client.public_key("acme", "stale")
        message, envelope = _ciphertext_envelope(public_key, random.Random(11))

        import repro.service.server as server_mod

        decoded_into = []
        real_loads = server_mod.persist.loads

        def spying_loads(text, group=None):
            decoded_into.append(group)
            return real_loads(text, group)

        monkeypatch.setattr(server_mod.persist, "loads", spying_loads)

        resolved = []
        real_get = registry.get

        def racing_get(tenant, key_id):
            session = real_get(tenant, key_id)
            resolved.append(session)
            if len(resolved) == 1:
                # The LRU sweep wins the race: the object the worker
                # holds is evicted before it can take the session lock.
                registry.evict(tenant, key_id)
            return session

        monkeypatch.setattr(registry, "get", racing_get)

        fields, body = service._op_decrypt(
            {"op": "decrypt", "tenant": "acme", "key": "stale", "request_id": "r-1"},
            envelope,
        )
        assert fields["period"] == 0
        # The stale resolve was decoded-then-abandoned; the decode ran
        # again against the session that actually served.
        assert len(resolved) == 2 and resolved[1] is not resolved[0]
        assert len(decoded_into) == 2
        assert decoded_into[1] is resolved[1].group


def _wait_until(predicate, *, timeout: float = 5.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.01)


class TestLoadShedding:
    def test_brownout_serves_light_ops_and_sheds_heavy(self, tmp_path):
        registry = SessionRegistry(tmp_path / "state", capacity=8)
        service = KeyService(
            registry, workers=1, backlog=1, brownout_workers=1, client_timeout=5.0
        )
        mutes: list[socket.socket] = []
        try:
            service.start()
            # Fill the normal lane: workers + backlog parked connections.
            for _ in range(2):
                mutes.append(socket.create_connection(service.address, timeout=5.0))
            _wait_until(
                lambda: service._active_connections() == 2, message="normal lane full"
            )
            with ServiceClient(
                service.address, timeout=5.0, retry=None
            ) as brownout_client:
                _wait_until(
                    lambda: service._active_connections() == 3,
                    message="brownout admission",
                )
                # Light ops still answered: health stays observable.
                assert brownout_client.ping()
                health = brownout_client.health()
                assert health["status"] == "overloaded"
                # Heavy ops shed with the typed code and a backoff hint.
                header, _ = brownout_client.request(
                    "open", tenant="acme", key="shed", scheme="dlr", seed=1
                )
                assert header["code"] == "overloaded"
                assert header["retry-after"] > 0
                with pytest.raises(ServiceError) as excinfo:
                    brownout_client.open_key("acme", "shed2", seed=2)
                assert excinfo.value.code == "overloaded"
                assert (
                    service.metrics.counter_value("service.sheds", mode="brownout") >= 2
                )
                assert (
                    service.metrics.counter_value("service.brownout_connections") == 1
                )

                # Beyond the brownout bound: shed outright from the
                # accept thread with a pre-written overloaded frame.
                hard = socket.create_connection(service.address, timeout=5.0)
                try:
                    header, _ = recv_frame(hard, "client", timeout=5.0)
                finally:
                    hard.close()
                assert header["ok"] is False
                assert header["code"] == "overloaded"
                assert header["retry-after"] > 0
                assert service.metrics.counter_value("service.sheds", mode="hard") == 1
            # Load gone: the service recovers to ready and serves again.
            for mute in mutes:
                mute.close()
            mutes.clear()
            _wait_until(
                lambda: service._active_connections() == 0, message="load to clear"
            )
            with ServiceClient(service.address, timeout=5.0) as healthy:
                assert healthy.health()["status"] == "ready"
                healthy.open_key("acme", "after", seed=3)
        finally:
            for mute in mutes:
                mute.close()
            service.stop()


class _StubServer:
    """A scripted frame server for client-behavior tests.

    ``script`` is consumed one entry per received request: ``"close"``
    drops the connection without answering; a dict is sent as the
    response header.  When the script runs out, ``final`` applies to
    every further request.  Received headers are recorded.
    """

    def __init__(self, script, final=None):
        self.script = list(script)
        self.final = final if final is not None else {"ok": True}
        self.received: list[dict] = []
        self._lock = threading.Lock()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _next_action(self, header):
        with self._lock:
            self.received.append(header)
            return self.script.pop(0) if self.script else self.final

    def _run(self):
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            connection.settimeout(5.0)
            try:
                while True:
                    header, _ = recv_frame(connection, "stub", timeout=5.0)
                    action = self._next_action(header)
                    if action == "close":
                        break
                    connection.sendall(encode_frame(dict(action), b""))
            except Exception:
                pass
            finally:
                connection.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._stopping.set()
        self._thread.join()
        self._listener.close()


def _fast_policy(attempts: int = 4) -> RetryPolicy:
    # Nonzero base so backoffs are observable via the injected sleep
    # (a zero pause is skipped); the sleep itself is a recorder, so no
    # test actually waits.
    return RetryPolicy(max_attempts=attempts, base_backoff=0.01, jitter=0.0)


class TestClientClassification:
    def test_stalled_server_surfaces_as_transport_timeout(self):
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            with ServiceClient(
                listener.getsockname(), timeout=0.3, retry=None
            ) as client:
                with pytest.raises(TransportTimeout):
                    client.request("ping")
        finally:
            listener.close()

    def test_dropped_connection_surfaces_as_peer_disconnected(self):
        with _StubServer(["close"]) as stub:
            with ServiceClient(stub.address, timeout=5.0, retry=None) as client:
                with pytest.raises(PeerDisconnected):
                    client.request("ping")

    def test_refused_connection_surfaces_as_peer_disconnected(self):
        probe = socket.create_server(("127.0.0.1", 0))
        address = probe.getsockname()
        probe.close()
        with pytest.raises(PeerDisconnected):
            ServiceClient(address, timeout=1.0, retry=None)


class TestRetryingClient:
    def test_idempotent_op_reconnects_and_replays(self):
        sleeps: list[float] = []
        with _StubServer(["close", "close"]) as stub:
            with ServiceClient(
                stub.address,
                timeout=5.0,
                retry=_fast_policy(),
                retry_seed=7,
                sleep=sleeps.append,
            ) as client:
                assert client.ping()
        assert len(sleeps) == 2  # two drops, two backoffs, then success
        assert [h["op"] for h in stub.received] == ["ping", "ping", "ping"]

    def test_retry_exhausted_carries_the_attempt_history(self):
        with _StubServer([], final="close") as stub:
            with ServiceClient(
                stub.address,
                timeout=5.0,
                retry=_fast_policy(3),
                retry_seed=7,
                sleep=lambda _s: None,
            ) as client:
                with pytest.raises(RetryExhausted) as excinfo:
                    client.ping()
        error = excinfo.value
        assert error.code == "connection-lost"
        assert error.op == "ping"
        assert len(error.attempts) == 3
        assert all(a["fault"] == "PeerDisconnected" for a in error.attempts)

    def test_non_idempotent_op_is_never_replayed_after_a_drop(self):
        with _StubServer([], final="close") as stub:
            with ServiceClient(
                stub.address, timeout=5.0, retry=_fast_policy(), retry_seed=7
            ) as client:
                with pytest.raises(RetryExhausted) as excinfo:
                    client.call("open", tenant="acme", key="k", scheme="dlr")
        assert len(excinfo.value.attempts) == 1
        assert "non-idempotent" in str(excinfo.value)
        assert [h["op"] for h in stub.received] == ["open"]

    def test_retryable_code_retried_for_any_op_honoring_retry_after(self):
        sleeps: list[float] = []
        shed = {
            "ok": False,
            "code": "overloaded",
            "error": "saturated",
            "retry-after": 0.07,
        }
        with _StubServer([shed]) as stub:
            with ServiceClient(
                stub.address,
                timeout=5.0,
                retry=_fast_policy(),
                retry_seed=7,
                sleep=sleeps.append,
            ) as client:
                # open is non-idempotent, but a shed guarantees nothing
                # ran server-side, so the retry is safe.
                header, _ = client.call("open", tenant="acme", key="k")
        assert header["ok"] is True
        assert sleeps == [pytest.approx(0.07)]

    def test_deadline_is_stamped_and_restamped_with_remaining_budget(self):
        shed = {"ok": False, "code": "draining", "error": "bye", "retry-after": 0.0}
        with _StubServer([shed]) as stub:
            with ServiceClient(
                stub.address,
                timeout=5.0,
                retry=_fast_policy(),
                retry_seed=7,
                sleep=lambda _s: None,
            ) as client:
                client.call("ping", deadline=5.0)
        first, second = stub.received
        assert 0.0 <= second["deadline"] <= first["deadline"] <= 5.0

    def test_exhausted_deadline_stops_retries(self):
        shed = {"ok": False, "code": "overloaded", "error": "saturated"}
        with _StubServer([], final=shed) as stub:
            with ServiceClient(
                stub.address,
                timeout=5.0,
                retry=_fast_policy(),
                retry_seed=7,
                sleep=lambda _s: None,
            ) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.call("ping", deadline=0.0)
        assert excinfo.value.code == "overloaded"
        # one attempt: the budget was already gone, so no retry happened
        assert len(stub.received) == 1

    def test_retry_disabled_surfaces_the_first_failure(self):
        with _StubServer(["close"]) as stub:
            with ServiceClient(stub.address, timeout=5.0, retry=None) as client:
                with pytest.raises(RetryExhausted) as excinfo:
                    client.call("ping")
        assert len(excinfo.value.attempts) == 1

    def test_request_ids_are_deterministic_under_a_seed(self):
        with _StubServer([]) as stub:
            with ServiceClient(stub.address, retry_seed=42) as one, ServiceClient(
                stub.address, retry_seed=42
            ) as two, ServiceClient(stub.address, retry_seed=43) as other:
                assert one.next_request_id() == two.next_request_id()
                assert one.next_request_id() != other.next_request_id()
