"""Service-suite fixtures: a registry on a tmp dir and a running service.

Sessions use the 32-bit ``small`` preset (one period is tens of
milliseconds), so multi-session concurrency tests stay in CI budget.
"""

from __future__ import annotations

import pytest

from repro.service import KeyService, ServiceClient, SessionRegistry


@pytest.fixture()
def registry(tmp_path):
    return SessionRegistry(tmp_path / "state", capacity=16)


@pytest.fixture()
def service(registry):
    with KeyService(registry, workers=4, client_timeout=10.0) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(service.address, timeout=10.0) as connected:
        yield connected
