"""ChaosProxy unit behavior: pass-through and each socket-level fault."""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.errors import ParameterError, PeerDisconnected
from repro.protocol.transport import encode_frame, recv_frame
from repro.runtime.policy import RetryPolicy
from repro.service import ChaosProxy, ProxyRule, ServiceClient
from repro.service.chaosproxy import DOWNSTREAM, UPSTREAM


class _PingServer:
    """Answers ``{"ok": True}`` to every frame; the minimal upstream."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve, args=(connection,), daemon=True
            ).start()

    def _serve(self, connection):
        connection.settimeout(5.0)
        try:
            while True:
                header, _ = recv_frame(connection, "ping-server", timeout=5.0)
                connection.sendall(encode_frame({"ok": True, "op": header.get("op")}, b""))
        except Exception:
            pass
        finally:
            connection.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._stopping.set()
        self._thread.join()
        self._listener.close()


class TestProxyRuleValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            ProxyRule(mode="explode")

    def test_bad_direction_rejected(self):
        with pytest.raises(ParameterError):
            ProxyRule(direction="sideways")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"occurrence": 0},
            {"repeat": 0},
            {"probability": 0.0},
            {"probability": 1.5},
            {"delay_seconds": -1.0},
            {"keep_bytes": -1},
            {"dribble_bytes": 0},
        ],
    )
    def test_bad_numbers_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            ProxyRule(**kwargs)


class TestPassThrough:
    def test_no_rules_is_a_transparent_proxy(self):
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, seed=1) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    assert client.ping()
                    assert client.ping()
                assert proxy.connections_seen == 1
                assert proxy.injected == []

    def test_refused_upstream_drops_the_client_connection(self):
        probe = socket.create_server(("127.0.0.1", 0))
        dead_address = probe.getsockname()
        probe.close()
        with ChaosProxy(dead_address, seed=1) as proxy:
            with pytest.raises(PeerDisconnected):
                with ServiceClient(proxy.address, timeout=2.0, retry=None) as client:
                    client.request("ping")


class TestFaultModes:
    def test_delay_holds_the_response(self):
        rule = ProxyRule(mode="delay", direction=DOWNSTREAM, delay_seconds=0.2)
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=2) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    started = time.monotonic()
                    assert client.ping()
                    assert time.monotonic() - started >= 0.2
                assert proxy.injected == [(rule, DOWNSTREAM)]

    def test_reset_surfaces_as_peer_disconnected(self):
        rule = ProxyRule(mode="reset", direction=DOWNSTREAM)
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=3) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    with pytest.raises(PeerDisconnected):
                        client.request("ping")
                assert proxy.injected == [(rule, DOWNSTREAM)]

    def test_truncate_tears_the_frame_mid_read(self):
        rule = ProxyRule(mode="truncate", direction=DOWNSTREAM, keep_bytes=3)
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=4) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    with pytest.raises(PeerDisconnected):
                        client.request("ping")
                assert proxy.injected == [(rule, DOWNSTREAM)]

    def test_dribble_slows_but_still_delivers(self):
        rule = ProxyRule(
            mode="dribble",
            direction=DOWNSTREAM,
            dribble_bytes=8,
            dribble_delay=0.01,
        )
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=5) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    started = time.monotonic()
                    assert client.ping()
                    assert time.monotonic() - started >= 0.02
                assert proxy.injected == [(rule, DOWNSTREAM)]

    def test_direction_filter_spares_the_other_flow(self):
        rule = ProxyRule(mode="delay", direction=UPSTREAM, delay_seconds=0.0)
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=6) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    assert client.ping()
                directions = {direction for _, direction in proxy.injected}
                assert directions == {UPSTREAM}

    def test_occurrence_arms_on_the_kth_chunk(self):
        rule = ProxyRule(mode="reset", direction=DOWNSTREAM, occurrence=2)
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=7) as proxy:
                with ServiceClient(proxy.address, timeout=5.0, retry=None) as client:
                    assert client.ping()  # first response passes untouched
                    with pytest.raises(PeerDisconnected):
                        client.request("ping")

    def test_retrying_client_heals_a_reset(self):
        # Each connection arms its own rule copy: the reset fires on the
        # second response of every connection, so the reconnect that the
        # retrying client performs starts with a clean slate.
        rule = ProxyRule(mode="reset", direction=DOWNSTREAM, occurrence=2)
        sleeps: list[float] = []
        with _PingServer() as upstream:
            with ChaosProxy(upstream.address, [rule], seed=8) as proxy:
                with ServiceClient(
                    proxy.address,
                    timeout=5.0,
                    retry=RetryPolicy(max_attempts=4, base_backoff=0.01, jitter=0.0),
                    retry_seed=9,
                    sleep=sleeps.append,
                ) as client:
                    assert client.ping()
                    assert client.ping()  # reset, reconnect, replayed
                assert len(sleeps) == 1
                assert proxy.connections_seen == 2

    def test_probability_draws_are_seeded_per_connection(self):
        rule = ProxyRule(
            mode="delay", probability=0.5, repeat=None, delay_seconds=0.0
        )

        def count(seed):
            with _PingServer() as upstream:
                with ChaosProxy(upstream.address, [rule], seed=seed) as proxy:
                    with ServiceClient(
                        proxy.address, timeout=5.0, retry=None
                    ) as client:
                        for _ in range(8):
                            assert client.ping()
                    return len(proxy.injected)

        assert count(123) == count(123)  # same seed, same draw sequence


class TestAgainstLiveService:
    def test_truncated_response_is_absorbed_by_the_replay_cache(
        self, service, registry
    ):
        with ServiceClient(service.address, timeout=5.0) as direct:
            direct.open_key("acme", "px", seed=6)
        rng = random.Random(13)
        rules = [
            ProxyRule(mode="truncate", direction=DOWNSTREAM, occurrence=2, keep_bytes=6)
        ]
        with ChaosProxy(service.address, rules, seed=10) as proxy:
            with ServiceClient(
                proxy.address,
                timeout=5.0,
                retry=RetryPolicy(max_attempts=6, base_backoff=0.01, jitter=0.0),
                retry_seed=11,
            ) as client:
                # Work in this client's own decoded copy of the public
                # key: group elements never compose across decodes.
                public_key = client.public_key("acme", "px")
                message = public_key.group.random_gt(rng)
                recovered, period = client.encrypt_and_decrypt(
                    "acme", "px", message, rng
                )
        assert recovered == message
        assert period == 0
        assert proxy.injected, "the truncate rule never fired"
        # Exactly one period was burned no matter which response the
        # truncation tore: a retried decrypt replays by request id.
        assert registry.get("acme", "px").next_period == 1
