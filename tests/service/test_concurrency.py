"""Concurrency: many threads, many sessions, nothing lost or torn.

The acceptance bar for the service is a 3-worker loopback run
sustaining >= 8 concurrent sessions with zero lost metric increments.
These tests drive the registry and the full TCP service from N client
threads and then check *exact* balances: every request accounted for in
the per-session ledgers, every period committed exactly once, snapshot
invariants never violated mid-flight.
"""

from __future__ import annotations

import random
import threading

from repro.core.dlr import DLR
from repro.errors import AdmissionRejected
from repro.service import (
    KeyService,
    ServiceClient,
    SessionRegistry,
    StaleSessionError,
)

SESSIONS = 8
REQUESTS_PER_SESSION = 3


def run_in_threads(workers):
    """Start one thread per worker behind a barrier, join them, and
    re-raise the first failure (a failed worker must fail the test)."""
    barrier = threading.Barrier(len(workers))
    failures = []

    def wrap(fn):
        def runner():
            barrier.wait()
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestRegistryUnderThreads:
    def test_parallel_decrypts_keep_every_ledger_balanced(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=SESSIONS)
        jobs = []
        for i in range(SESSIONS):
            session = registry.create("t", f"k{i}", seed=i)
            rng = random.Random(1000 + i)
            scheme = DLR(session.public_key.params)
            pairs = []
            for _ in range(REQUESTS_PER_SESSION):
                message = session.group.random_gt(rng)
                pairs.append((message, scheme.encrypt(session.public_key, message, rng)))
            jobs.append((session, pairs))

        def worker_for(session, pairs):
            def worker():
                for message, ciphertext in pairs:
                    record = session.serve_decrypt(ciphertext)
                    assert record.plaintext == message

            return worker

        run_in_threads([worker_for(s, p) for s, p in jobs])

        for session, pairs in jobs:
            assert session.requests_served == REQUESTS_PER_SESSION
            assert session.next_period == REQUESTS_PER_SESSION
        assert registry.resident_count() == SESSIONS

    def test_snapshot_stays_consistent_during_churn(self, tmp_path):
        """A reader polling ``snapshot()`` while writers create, serve,
        and evict must never observe a violated invariant."""
        registry = SessionRegistry(tmp_path, capacity=4)
        stop = threading.Event()

        def churn(base):
            def worker():
                rng = random.Random(base)
                for i in range(6):
                    name = f"k{base}-{i}"
                    session = registry.create("t", name, seed=base * 100 + i)
                    scheme = DLR(session.public_key.params)
                    message = session.group.random_gt(rng)
                    ciphertext = scheme.encrypt(session.public_key, message, rng)
                    try:
                        session.serve_decrypt(ciphertext)
                    except Exception:
                        # The LRU sweep may evict this session between
                        # create and serve; staleness is the reader's
                        # churn, not a consistency violation.
                        pass

            return worker

        observations = []

        def reader():
            while not stop.is_set():
                snap = registry.snapshot()
                observations.append(snap)
                assert snap["resident_count"] == len(snap["resident"])
                assert snap["resident_count"] <= snap["capacity"]
                names = [f"{r['tenant']}/{r['key']}" for r in snap["resident"]]
                assert names == sorted(names)
                assert len(set(names)) == len(names)
                for row in snap["resident"]:
                    assert row["next_period"] >= 0
                    assert row["requests_served"] >= 0

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            run_in_threads([churn(base) for base in range(1, 4)])
        finally:
            stop.set()
            reader_thread.join()
        assert observations, "reader never got a snapshot in"
        # Conservation: every created session is either resident or on disk.
        assert len(registry.known_keys()) == 18

    def test_eviction_churn_loses_no_periods(self, tmp_path):
        """Aggressive capacity (2 slots, 6 keys) forces constant
        evict/rehydrate churn; each key's on-disk period counter must
        still land exactly on its request count."""
        registry = SessionRegistry(tmp_path, capacity=2)
        keys = [f"k{i}" for i in range(6)]
        for i, name in enumerate(keys):
            registry.create("t", name, seed=i)

        def worker_for(name, base):
            def worker():
                rng = random.Random(base)
                for _ in range(REQUESTS_PER_SESSION):
                    while True:
                        try:
                            session = registry.get("t", name)
                        except AdmissionRejected:
                            continue  # all slots busy; try again
                        scheme = DLR(session.public_key.params)
                        message = session.group.random_gt(rng)
                        ciphertext = scheme.encrypt(session.public_key, message, rng)
                        try:
                            record = session.serve_decrypt(ciphertext)
                        except StaleSessionError:
                            continue  # evicted between lookup and lock
                        break
                    assert record.plaintext == message

            return worker

        # Serve each key from its own thread; only 2 can be resident.
        workers = [worker_for(name, 10 + i) for i, name in enumerate(keys)]
        run_in_threads(workers)
        # No period lost or double-committed despite the churn: each
        # key's durable counter lands exactly on its request count.
        for name in keys:
            assert registry.get("t", name).next_period == REQUESTS_PER_SESSION


class TestServiceLoopback:
    def test_three_workers_eight_sessions_zero_lost_increments(self, tmp_path):
        """The ISSUE acceptance run: 3 workers, 8 concurrent client
        streams (one session each), exact metric balance at the end."""
        registry = SessionRegistry(tmp_path, capacity=SESSIONS)
        with KeyService(registry, workers=3, client_timeout=30.0) as service:

            def stream(i):
                def worker():
                    with ServiceClient(service.address, timeout=30.0) as client:
                        pk = client.open_key("t", f"k{i}", seed=i)
                        rng = random.Random(500 + i)
                        for _ in range(REQUESTS_PER_SESSION):
                            message = pk.group.random_gt(rng)
                            recovered, _ = client.encrypt_and_decrypt(
                                "t", f"k{i}", message, rng
                            )
                            assert recovered == message

                return worker

            run_in_threads([stream(i) for i in range(SESSIONS)])

            metrics = service.metrics
            assert (
                metrics.counter_value("service.requests", op="open", outcome="ok")
                == SESSIONS
            )
            assert (
                metrics.counter_value("service.requests", op="decrypt", outcome="ok")
                == SESSIONS * REQUESTS_PER_SESSION
            )
            assert metrics.counter_value("service.sessions_created") == SESSIONS
            assert metrics.gauge("service.sessions_active").value == SESSIONS
            snap = registry.snapshot()
            assert snap["resident_count"] == SESSIONS
            for row in snap["resident"]:
                assert row["requests_served"] == REQUESTS_PER_SESSION
                assert row["next_period"] == REQUESTS_PER_SESSION
            # Latency histogram observed every request exactly once
            # (merged across the per-tenant series).
            decrypt_hist = metrics.merged_histogram(
                "service.request_seconds", op="decrypt"
            ).to_dict()
            assert decrypt_hist["count"] == SESSIONS * REQUESTS_PER_SESSION
        # Shutdown evicted everything; the gauge must balance to zero.
        assert metrics.gauge("service.sessions_active").value == 0

    def test_two_clients_one_key_serialized_not_corrupted(self, tmp_path):
        """Contending clients on the *same* key are serialized by the
        session lock: both see correct plaintexts, periods interleave
        without gaps or duplicates."""
        registry = SessionRegistry(tmp_path, capacity=4)
        with KeyService(registry, workers=3, client_timeout=30.0) as service:
            with ServiceClient(service.address, timeout=30.0) as opener:
                opener.open_key("t", "shared", seed=42)
            periods = []
            periods_lock = threading.Lock()

            def contender(i):
                def worker():
                    with ServiceClient(service.address, timeout=30.0) as client:
                        pk = client.public_key("t", "shared")
                        rng = random.Random(i)
                        for _ in range(3):
                            message = pk.group.random_gt(rng)
                            recovered, period = client.encrypt_and_decrypt(
                                "t", "shared", message, rng
                            )
                            assert recovered == message
                            with periods_lock:
                                periods.append(period)

                return worker

            run_in_threads([contender(i) for i in range(2)])
        assert sorted(periods) == list(range(6))
