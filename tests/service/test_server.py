"""KeyService wire behavior: error codes, rejection, silent clients."""

from __future__ import annotations

import random
import socket
import time

import pytest

from repro.errors import AdmissionRejected, ServiceError
from repro.protocol.transport import encode_frame
from repro.service import KeyService, ServiceClient, SessionKey, SessionRegistry


class TestRequestErrors:
    def test_ping(self, client):
        assert client.ping()

    def test_unknown_op_is_bad_request(self, client):
        header, _ = client.request("frobnicate")
        assert header["ok"] is False
        assert header["code"] == "bad-request"

    def test_unknown_key_code(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.describe("acme", "missing")
        assert excinfo.value.code == "unknown-key"

    def test_invalid_tenant_name_is_bad_request(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("describe", tenant="../escape", key="k")
        assert excinfo.value.code == "bad-request"

    def test_duplicate_open_is_bad_request(self, client):
        client.open_key("acme", "dup", seed=1)
        with pytest.raises(ServiceError) as excinfo:
            client.open_key("acme", "dup", seed=1)
        assert excinfo.value.code == "bad-request"

    def test_garbage_ciphertext_is_bad_request(self, client):
        client.open_key("acme", "k", seed=1)
        with pytest.raises(ServiceError) as excinfo:
            client.call("decrypt", b"not json at all", tenant="acme", key="k")
        assert excinfo.value.code == "bad-request"

    def test_worker_survives_errors(self, client):
        """The same connection keeps serving after failed requests."""
        for _ in range(3):
            header, _ = client.request("nope")
            assert header["code"] == "bad-request"
        assert client.ping()

    def test_corrupt_checkpoint_code(self, service, client, registry):
        client.open_key("acme", "hurt", seed=1)
        assert client.evict("acme", "hurt")
        path = registry.checkpoint_path(SessionKey("acme", "hurt"))
        path.write_text("{ truncated")
        with pytest.raises(ServiceError) as excinfo:
            client.describe("acme", "hurt")
        assert excinfo.value.code == "checkpoint-corrupt"


class TestRejection:
    def test_frozen_session_rejected_over_wire(self, service, client, registry):
        client.open_key("acme", "cold", seed=1)
        registry.get("acme", "cold").supervisor.frozen = True
        pk = client.public_key("acme", "cold")
        rng = random.Random(5)
        message = pk.group.random_gt(rng)
        with pytest.raises(AdmissionRejected) as excinfo:
            client.encrypt_and_decrypt("acme", "cold", message, rng)
        assert excinfo.value.code == "rejected"
        assert "frozen" in excinfo.value.reason
        assert service.metrics.counter_value("service.rejections") == 1


class TestSilentClient:
    def test_silent_client_times_out_and_frees_the_worker(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        with KeyService(registry, workers=1, client_timeout=0.5) as service:
            # A mute connection parks the single worker...
            mute = socket.create_connection(service.address, timeout=5.0)
            try:
                # ...until the client timeout drops it: the *same lone
                # worker* must come back and serve a real client.
                with ServiceClient(service.address, timeout=5.0) as real:
                    assert real.ping()
                # The server closed the mute connection on its side.
                mute.settimeout(5.0)
                assert mute.recv(1) == b""
            finally:
                mute.close()
            assert service.metrics.counter_value("service.client_timeouts") == 1

    def test_half_frame_then_silence_is_dropped(self, tmp_path):
        registry = SessionRegistry(tmp_path, capacity=4)
        with KeyService(registry, workers=2, client_timeout=0.5) as service:
            torn = socket.create_connection(service.address, timeout=5.0)
            try:
                frame = encode_frame({"op": "ping"}, b"")
                torn.sendall(frame[: len(frame) // 2])  # half a request, then silence
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if service.metrics.counter_value("service.client_timeouts"):
                        break
                    time.sleep(0.05)
                assert service.metrics.counter_value("service.client_timeouts") == 1
            finally:
                torn.close()


class TestStats:
    def test_stats_roundtrip(self, client):
        client.open_key("acme", "k", seed=1)
        stats = client.stats()
        assert stats["registry"]["resident_count"] == 1
        assert (
            "service.requests{op=open,outcome=ok,tenant=acme}"
            in stats["metrics"]["counters"]
        )
        # The stats request itself is only counted after its response
        # ships, so it sees every *prior* request (here: the open).
        assert stats["requests_handled"] == 1

    def test_stats_report_active_backend(self, client):
        from repro.math.backend import active_backend

        stats = client.stats()
        assert stats["backend"] == active_backend().name
        # The info-metric spelling is in the shared registry too.
        gauge = f"backend.active{{backend={active_backend().name}}}"
        assert stats["metrics"]["gauges"][gauge] == 1
