"""Unit tests for the structured session log."""

import json

from repro.protocol.transport import InMemoryTransport
from repro.runtime import (
    OK,
    RETRY,
    TRANSIENT,
    AttemptRecord,
    PeriodSummary,
    SessionLog,
)
from repro.utils.bits import BitString


def _attempt(period, attempt, outcome, **kwargs):
    defaults = dict(
        fault=None,
        classification=None,
        backoff_seconds=0.0,
        bits_on_wire=0,
        charged_bits={},
        wall_seconds=0.0,
    )
    defaults.update(kwargs)
    return AttemptRecord(period=period, attempt=attempt, outcome=outcome, **defaults)


class TestQueries:
    def _log(self):
        log = SessionLog(scheme="dlr", seed=7)
        log.record_attempt(
            _attempt(0, 1, RETRY, fault="FaultInjected", classification=TRANSIENT,
                     bits_on_wire=100, charged_bits={"P1": 100, "P2": 100})
        )
        log.record_attempt(_attempt(0, 2, OK, bits_on_wire=900))
        log.record_attempt(_attempt(1, 1, OK, bits_on_wire=950))
        log.record_period(PeriodSummary(0, 2, 1000, "aa" * 32))
        log.record_period(PeriodSummary(1, 1, 950, "bb" * 32))
        return log

    def test_attempts_for_period(self):
        log = self._log()
        assert [a.attempt for a in log.attempts_for(0)] == [1, 2]
        assert len(log.attempts_for(1)) == 1

    def test_retried_and_charges(self):
        log = self._log()
        assert len(log.retried()) == 1
        assert log.charged_by_period() == {0: 200}
        assert log.faults_by_classification() == {TRANSIENT: 1}

    def test_json_round_trip(self):
        log = self._log()
        data = json.loads(log.to_json())
        assert data["summary"]["periods_committed"] == 2
        assert data["summary"]["retries"] == 1
        restored = SessionLog.from_dict(data)
        assert restored.attempts == log.attempts
        assert restored.periods == log.periods
        assert restored.scheme == "dlr" and restored.seed == 7


class TestQuarantine:
    def test_quarantine_keeps_shape_not_payload(self):
        transport = InMemoryTransport()
        transport.send("P1", "P2", "dec.d", BitString(0b1011, 4))
        transport.send("P2", "P1", "dec.c_prime", BitString(0b1, 1))
        log = SessionLog(scheme="dlr")
        log.quarantine_transcript(0, "WireFormatError", transport.transcript(0))

        (entry,) = log.quarantine
        assert entry["period"] == 0
        assert entry["fault"] == "WireFormatError"
        assert [f["label"] for f in entry["frames"]] == ["dec.d", "dec.c_prime"]
        assert [f["bits"] for f in entry["frames"]] == [4, 1]
        assert len(entry["transcript_sha256"]) == 64
        # Raw payload bytes never enter the log.
        text = json.dumps(entry)
        assert "payload" not in text

    def test_quarantine_survives_serialization(self):
        transport = InMemoryTransport()
        transport.send("P1", "P2", "x", BitString(1, 1))
        log = SessionLog(scheme="dlr")
        log.quarantine_transcript(2, "DecryptionError", transport.transcript())
        restored = SessionLog.from_dict(json.loads(log.to_json()))
        assert restored.quarantine == log.quarantine
