"""Unit tests for durable session checkpoints."""

import json
import random

import pytest

from repro.core.dlr import DLR
from repro.errors import CheckpointError, ParameterError
from repro.runtime import (
    SessionState,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.checkpoint import dump_state, load_state


@pytest.fixture()
def state(small_params):
    scheme = DLR(small_params)
    generation = scheme.generate(random.Random(4))
    return SessionState(
        scheme="dlr",
        seed=99,
        periods_total=5,
        next_period=2,
        public_key=generation.public_key,
        share1=generation.share1,
        share2=generation.share2,
    )


class TestStateValidation:
    def test_unknown_scheme_rejected(self, state):
        with pytest.raises(ParameterError):
            SessionState("mystery", 0, 1, 0, state.public_key, state.share1, state.share2)

    def test_next_period_out_of_range_rejected(self, state):
        with pytest.raises(ParameterError):
            SessionState("dlr", 0, 3, 4, state.public_key, state.share1, state.share2)

    def test_progress_properties(self, state):
        assert not state.complete
        assert state.remaining_periods == 3


class TestRoundTrip:
    def test_self_contained_round_trip(self, state, tmp_path):
        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        loaded = load_checkpoint(path)
        assert loaded.scheme == "dlr"
        assert loaded.seed == 99
        assert loaded.next_period == 2
        # Elements round-trip bit-exactly (fresh group, equal encodings).
        assert loaded.share2.s == state.share2.s
        assert loaded.share1.phi.to_bits() == state.share1.phi.to_bits()
        assert loaded.public_key.z.to_bits() == state.public_key.z.to_bits()

    def test_shares_stay_functional_after_round_trip(self, state, tmp_path):
        """A resumed session must decrypt: reconstruct from the loaded
        shares and check against a fresh encryption."""
        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        loaded = load_checkpoint(path)
        scheme = DLR(loaded.public_key.params)
        rng = random.Random(1)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(loaded.public_key, message, rng)
        assert scheme.reference_decrypt(loaded.share1, loaded.share2, ciphertext) == message

    def test_load_into_existing_group(self, state, tmp_path):
        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        group = state.public_key.group
        loaded = load_checkpoint(path, group=group)
        # Elements decode into *that* group, so they interoperate.
        assert loaded.public_key.group is group
        assert loaded.share1.phi * group.g  # no GroupError

    def test_load_into_mismatched_group_rejected(self, state, tmp_path):
        from repro.groups import preset_group

        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        with pytest.raises(ParameterError):
            load_checkpoint(path, group=preset_group(16))

    def test_unsupported_version_rejected(self, state):
        data = dump_state(state)
        data["version"] = 999
        with pytest.raises(ParameterError):
            load_state(data)


class TestAtomicity:
    def test_no_temp_file_left_behind(self, state, tmp_path):
        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        save_checkpoint(path, state)  # overwrite path too
        assert [p.name for p in tmp_path.iterdir()] == ["session.json"]

    def test_checkpoint_is_valid_json_after_overwrite(self, state, tmp_path):
        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        state.next_period = 3
        save_checkpoint(path, state)
        assert json.loads(path.read_text())["next_period"] == 3


class TestCorruptCheckpoints:
    """Damage on disk surfaces as a classified, clearly-messaged
    CheckpointError (fatal), never a raw JSONDecodeError/KeyError."""

    def _saved(self, state, tmp_path):
        path = tmp_path / "session.json"
        save_checkpoint(path, state)
        return path

    def test_truncated_file_raises_checkpoint_error(self, state, tmp_path):
        path = self._saved(state, tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.path == path

    def test_empty_file_raises_checkpoint_error(self, state, tmp_path):
        path = tmp_path / "session.json"
        path.write_text("")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_non_object_payload_raises_checkpoint_error(self, state, tmp_path):
        path = tmp_path / "session.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_field_raises_checkpoint_error(self, state, tmp_path):
        path = self._saved(state, tmp_path)
        data = json.loads(path.read_text())
        del data["share1"]
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert "KeyError" in str(excinfo.value)

    def test_undecodable_element_raises_checkpoint_error(self, state, tmp_path):
        path = self._saved(state, tmp_path)
        data = json.loads(path.read_text())
        data["public_key"]["z"] = "zz-not-hex"
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_keeps_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "never-written.json")

    def test_corruption_is_classified_fatal(self, state, tmp_path):
        """The service must abort rehydration, not hot-loop retries."""
        from repro.runtime import FATAL, classify_fault

        path = self._saved(state, tmp_path)
        path.write_text(path.read_text()[:40])
        try:
            load_checkpoint(path)
        except CheckpointError as exc:
            assert classify_fault(exc) == FATAL
        else:  # pragma: no cover
            raise AssertionError("corrupt checkpoint loaded")

    def test_version_mismatch_stays_parameter_error(self, state, tmp_path):
        path = self._saved(state, tmp_path)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ParameterError):
            load_checkpoint(path)
