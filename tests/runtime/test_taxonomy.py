"""Unit tests for the fault taxonomy."""

import pytest

from repro.errors import (
    DecryptionError,
    FaultInjected,
    GroupError,
    LeakageBudgetExceeded,
    ParameterError,
    PeerDisconnected,
    ProtocolError,
    RefreshAborted,
    TransportTimeout,
    WireFormatError,
)
from repro.runtime import (
    CLASSIFICATIONS,
    FATAL,
    POISONED,
    TRANSIENT,
    classify_fault,
    fault_name,
    root_cause,
)


class TestClassificationTable:
    @pytest.mark.parametrize(
        "exc",
        [
            FaultInjected("dropped"),
            TransportTimeout("silent", timeout=1.0),
            PeerDisconnected("eof"),
        ],
    )
    def test_transient(self, exc):
        assert classify_fault(exc) == TRANSIENT

    @pytest.mark.parametrize(
        "exc",
        [
            WireFormatError("bad frame"),
            DecryptionError("integrity check failed"),
        ],
    )
    def test_poisoned(self, exc):
        assert classify_fault(exc) == POISONED

    @pytest.mark.parametrize(
        "exc",
        [
            LeakageBudgetExceeded("P1", 10, 0),
            ParameterError("bad ell"),
            GroupError("mixing groups"),
            ProtocolError("expected ref.f, got dec.d"),
        ],
    )
    def test_fatal(self, exc):
        assert classify_fault(exc) == FATAL

    def test_unknown_exception_is_fatal(self):
        assert classify_fault(ValueError("boom")) == FATAL

    def test_constants(self):
        assert set(CLASSIFICATIONS) == {TRANSIENT, FATAL, POISONED}


class TestCauseChains:
    def _chained(self, outer, inner):
        try:
            try:
                raise inner
            except Exception as exc:
                raise outer from exc
        except Exception as exc:
            return exc

    def test_refresh_aborted_is_transparent(self):
        exc = self._chained(RefreshAborted("rolled back"), FaultInjected("drop"))
        assert classify_fault(exc) == TRANSIENT

    def test_refresh_aborted_over_poisoned_quarantines(self):
        exc = self._chained(RefreshAborted("rolled back"), WireFormatError("junk"))
        assert classify_fault(exc) == POISONED

    def test_refresh_aborted_over_fatal_aborts(self):
        exc = self._chained(RefreshAborted("rolled back"), ParameterError("bad"))
        assert classify_fault(exc) == FATAL

    def test_bare_refresh_aborted_is_transient(self):
        # No recorded cause: the rollback restored consistent shares, so
        # the period can simply re-run.
        assert classify_fault(RefreshAborted("rolled back")) == TRANSIENT

    def test_transient_buried_under_scheme_error(self):
        exc = self._chained(ProtocolError("decrypt failed"), TransportTimeout("t"))
        # The *outer* classification wins on the first concrete node: a
        # ProtocolError that is not a wrapper classifies fatal before the
        # walk reaches its cause -- except the walk checks the outer node
        # first only for non-wrapper types.  The transparent wrapper is
        # RefreshAborted, so this is fatal by design: the scheme said the
        # protocol itself misbehaved.
        assert classify_fault(exc) == FATAL

    def test_root_cause_walks_to_the_bottom(self):
        exc = self._chained(
            RefreshAborted("rolled back"),
            self._chained(ProtocolError("mid"), FaultInjected("drop")),
        )
        assert isinstance(root_cause(exc), FaultInjected)

    def test_fault_name(self):
        assert fault_name(TransportTimeout("t")) == "TransportTimeout"
