"""Unit tests for the classified retry loop and the session supervisor."""

import random

import pytest

from repro.core.dlr import DLR
from repro.core.keys import PublicKey
from repro.core.optimal import OptimalDLR
from repro.errors import (
    FaultInjected,
    LeakageBudgetExceeded,
    ParameterError,
    ProtocolError,
    WireFormatError,
)
from repro.ibe.dlr_ibe import DLRIBE
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.faults import DROP, FaultRule, FaultyTransport
from repro.protocol.transport import InMemoryTransport
from repro.runtime import (
    ABORTED,
    EXHAUSTED,
    FATAL,
    FROZEN,
    OK,
    POISONED,
    RETRY,
    RetryPolicy,
    SessionLog,
    SessionState,
    SessionSupervisor,
    load_checkpoint,
    run_with_retries,
    scheme_for_state,
    scheme_kind_of,
)
from repro.utils.bits import BitString


# ---------------------------------------------------------------------------
# run_with_retries
# ---------------------------------------------------------------------------


def _retry_kwargs(transport=None, **overrides):
    kwargs = dict(
        period=0,
        policy=RetryPolicy(base_backoff=0.0, jitter=0.0),
        transport=transport if transport is not None else InMemoryTransport(),
        log=SessionLog(scheme="dlr"),
        jitter_rng=random.Random(0),
        sleep=lambda seconds: None,
    )
    kwargs.update(overrides)
    return kwargs


class TestRunWithRetries:
    def test_success_first_try(self):
        kwargs = _retry_kwargs()
        result = run_with_retries(lambda: "done", **kwargs)
        assert result == "done"
        (record,) = kwargs["log"].attempts
        assert record.outcome == OK

    def test_transient_retries_until_success(self):
        failures = iter([FaultInjected("drop"), FaultInjected("drop")])

        def attempt():
            try:
                raise next(failures)
            except StopIteration:
                return "done"

        kwargs = _retry_kwargs(policy=RetryPolicy(max_attempts=5, base_backoff=0.0, jitter=0.0))
        assert run_with_retries(attempt, **kwargs) == "done"
        outcomes = [a.outcome for a in kwargs["log"].attempts]
        assert outcomes == [RETRY, RETRY, OK]

    def test_fatal_raises_original_exception_unwrapped(self):
        boom = ParameterError("bad ell")

        def attempt():
            raise boom

        kwargs = _retry_kwargs()
        with pytest.raises(ParameterError) as info:
            run_with_retries(attempt, **kwargs)
        assert info.value is boom  # not wrapped, not retried
        (record,) = kwargs["log"].attempts
        assert record.outcome == ABORTED and record.classification == FATAL

    def test_poisoned_quarantines_transcript_then_raises(self):
        transport = InMemoryTransport()

        def attempt():
            transport.send("P1", "P2", "dec.d", BitString(0b101, 3))
            raise WireFormatError("garbage frame")

        kwargs = _retry_kwargs(transport)
        with pytest.raises(WireFormatError):
            run_with_retries(attempt, **kwargs)
        log = kwargs["log"]
        (record,) = log.attempts
        assert record.outcome == ABORTED and record.classification == POISONED
        (entry,) = log.quarantine
        assert entry["fault"] == "WireFormatError"
        assert [f["label"] for f in entry["frames"]] == ["dec.d"]

    def test_exhaustion_names_the_attempt_cap_and_chains_cause(self):
        def attempt():
            raise FaultInjected("always")

        kwargs = _retry_kwargs(policy=RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0))
        with pytest.raises(ProtocolError, match="did not complete within 2 attempts") as info:
            run_with_retries(attempt, **kwargs)
        assert isinstance(info.value.__cause__, FaultInjected)
        outcomes = [a.outcome for a in kwargs["log"].attempts]
        assert outcomes == [RETRY, EXHAUSTED]

    def test_deadline_stops_retrying(self):
        now = [0.0]

        def clock():
            now[0] += 10.0
            return now[0]

        kwargs = _retry_kwargs(
            policy=RetryPolicy(max_attempts=100, base_backoff=0.0, jitter=0.0, deadline=5.0),
            clock=clock,
        )
        with pytest.raises(ProtocolError, match="5.0s deadline"):
            run_with_retries(lambda: (_ for _ in ()).throw(FaultInjected("x")), **kwargs)

    def test_backoff_schedule_is_exponential(self):
        sleeps = []
        failures = iter(range(3))

        def attempt():
            try:
                next(failures)
            except StopIteration:
                return "done"
            raise FaultInjected("drop")

        kwargs = _retry_kwargs(
            policy=RetryPolicy(
                max_attempts=10, base_backoff=0.1, multiplier=2.0, jitter=0.0
            ),
            sleep=sleeps.append,
        )
        run_with_retries(attempt, **kwargs)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_retry_charges_both_devices(self):
        transport = InMemoryTransport()
        oracle = LeakageOracle(LeakageBudget(0, 1000, 1000))
        failures = iter([FaultInjected("drop")])

        def attempt():
            transport.send("P1", "P2", "dec.d", BitString(0b1111, 4))
            try:
                raise next(failures)
            except StopIteration:
                return "done"

        kwargs = _retry_kwargs(transport, oracle=oracle)
        run_with_retries(attempt, **kwargs)
        assert oracle.retry_ledger == {0: {1: 4, 2: 4}}
        retried = kwargs["log"].retried()
        assert retried[0].charged_bits == {"P1": 4, "P2": 4}

    def test_budget_overflow_freezes_instead_of_retrying(self):
        transport = InMemoryTransport()
        oracle = LeakageOracle(LeakageBudget(0, 2, 2))  # cannot absorb 4 bits
        froze = []

        def attempt():
            transport.send("P1", "P2", "dec.d", BitString(0b1111, 4))
            raise FaultInjected("drop")

        kwargs = _retry_kwargs(transport, oracle=oracle, on_freeze=lambda: froze.append(True))
        with pytest.raises(LeakageBudgetExceeded):
            run_with_retries(attempt, **kwargs)
        assert froze == [True]
        (record,) = kwargs["log"].attempts
        assert record.outcome == FROZEN


# ---------------------------------------------------------------------------
# Scheme-kind plumbing
# ---------------------------------------------------------------------------


class TestSchemeKinds:
    def test_kind_of_each_scheme(self, small_params):
        assert scheme_kind_of(DLR(small_params)) == "dlr"
        assert scheme_kind_of(OptimalDLR(small_params)) == "optimal"
        assert scheme_kind_of(DLRIBE(small_params)) == "dlribe"

    def test_non_scheme_rejected(self):
        with pytest.raises(ParameterError):
            scheme_kind_of(object())

    def test_scheme_for_state_rebuilds_matching_kind(self, small_params):
        scheme = OptimalDLR(small_params)
        generation = scheme.generate(random.Random(3))
        state = SessionState(
            scheme="optimal",
            seed=0,
            periods_total=1,
            next_period=0,
            public_key=generation.public_key,
            share1=generation.share1,
            share2=generation.share2,
        )
        assert isinstance(scheme_for_state(state), OptimalDLR)

    def test_supervisor_rejects_scheme_state_mismatch(self, small_params):
        scheme = DLR(small_params)
        generation = scheme.generate(random.Random(3))
        state = SessionState(
            scheme="optimal",
            seed=0,
            periods_total=1,
            next_period=0,
            public_key=generation.public_key,
            share1=generation.share1,
            share2=generation.share2,
        )
        with pytest.raises(ParameterError, match="does not match"):
            SessionSupervisor(scheme, InMemoryTransport(), state)


# ---------------------------------------------------------------------------
# The supervisor lifecycle
# ---------------------------------------------------------------------------


class _Interrupt(Exception):
    """Simulated crash between period commit and the next period."""


class TestSupervisorLifecycle:
    def _start(self, scheme, transport, *, seed=5, periods=3, **kwargs):
        generation = scheme.generate(random.Random(1))
        return SessionSupervisor.start(
            scheme,
            transport,
            public_key=generation.public_key,
            share1=generation.share1,
            share2=generation.share2,
            periods=periods,
            seed=seed,
            policy=RetryPolicy(base_backoff=0.0, jitter=0.0),
            **kwargs,
        )

    def test_dlr_session_completes_and_checkpoints(self, small_params, tmp_path):
        path = tmp_path / "dlr.json"
        supervisor = self._start(DLR(small_params), InMemoryTransport(), checkpoint_path=path)
        result = supervisor.run()
        assert result.periods_completed == 3
        assert result.state.complete
        loaded = load_checkpoint(path)
        assert loaded.next_period == 3 and loaded.complete
        # Final checkpointed shares still decrypt.
        scheme = DLR(loaded.public_key.params)
        rng = random.Random(2)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(loaded.public_key, message, rng)
        assert scheme.reference_decrypt(loaded.share1, loaded.share2, ciphertext) == message

    def test_optimal_session_completes(self, small_params):
        supervisor = self._start(OptimalDLR(small_params), InMemoryTransport(), periods=2)
        result = supervisor.run()
        assert result.periods_completed == 2

    def test_dlribe_identity_session_keeps_master_shares(self, small_params, tmp_path):
        scheme = DLRIBE(small_params)
        setup = scheme.setup(random.Random(1))
        pk = PublicKey(small_params, setup.public_params.z)
        path = tmp_path / "ibe.json"
        supervisor = SessionSupervisor.start(
            scheme,
            InMemoryTransport(),
            public_key=pk,
            share1=setup.share1,
            share2=setup.share2,
            periods=2,
            seed=5,
            checkpoint_path=path,
            public_params=setup.public_params,
            identity="bob",
            policy=RetryPolicy(base_backoff=0.0, jitter=0.0),
        )
        result = supervisor.run()
        assert result.periods_completed == 2
        # Identity keys rotate; the checkpointed *master* shares do not.
        loaded = load_checkpoint(path)
        assert loaded.share2.s == setup.share2.s
        assert loaded.share1.phi.to_bits() == setup.share1.phi.to_bits()

    def test_resume_replays_like_uninterrupted_run_from_checkpoint(
        self, small_params, tmp_path
    ):
        """The determinism contract: interrupt after one committed
        period, then drive the session to completion twice from copies
        of that checkpoint -- the "crashed and resumed" run and the
        "uninterrupted from the same checkpoint" run produce identical
        per-period transcripts and identical final shares."""
        import shutil

        path = tmp_path / "ckpt.json"
        copy = tmp_path / "ckpt-copy.json"

        def interrupt_after_first(state):
            if state.next_period == 1:
                raise _Interrupt

        interrupted = self._start(
            DLR(small_params),
            InMemoryTransport(),
            checkpoint_path=path,
            on_period_commit=interrupt_after_first,
        )
        with pytest.raises(_Interrupt):
            interrupted.run()
        shutil.copy(path, copy)

        def finish(checkpoint):
            supervisor = SessionSupervisor.resume(
                checkpoint,
                InMemoryTransport(),
                policy=RetryPolicy(base_backoff=0.0, jitter=0.0),
            )
            result = supervisor.run()
            return (
                [p.transcript_sha256 for p in result.log.periods],
                result.state.share2.s,
            )

        resumed_hashes, resumed_s = finish(path)
        replay_hashes, replay_s = finish(copy)
        assert resumed_hashes == replay_hashes
        assert resumed_s == replay_s
        assert [p.period for p in interrupted.log.periods] == [0]

    def test_frozen_supervisor_refuses_to_run(self, small_params):
        faulty = FaultyTransport(inner=InMemoryTransport(), seed=0)
        # Drop the refresh message: the failed attempt has already put
        # the decryption frames on the wire, and a 1-bit budget cannot
        # absorb charging them for a retry.
        faulty.add_rule(FaultRule(mode=DROP, label="ref.f"))
        oracle = LeakageOracle(LeakageBudget(0, 1, 1))  # no room for any retry
        supervisor = self._start(DLR(small_params), faulty, periods=1, oracle=oracle)
        with pytest.raises(LeakageBudgetExceeded):
            supervisor.run()
        assert supervisor.frozen
        with pytest.raises(ProtocolError, match="frozen"):
            supervisor.run()

    def test_transient_faults_do_not_stop_the_lifecycle(self, small_params):
        faulty = FaultyTransport(inner=InMemoryTransport(), seed=0)
        faulty.add_rule(FaultRule(mode=DROP, label="ref.f", period=1))
        supervisor = self._start(DLR(small_params), faulty)
        result = supervisor.run()
        assert result.periods_completed == 3
        retried = result.log.retried()
        assert len(retried) == 1 and retried[0].period == 1
