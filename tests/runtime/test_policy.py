"""Unit tests for the retry policy."""

import random

import pytest

from repro.errors import ParameterError
from repro.runtime import NO_RETRY, RetryPolicy


class TestValidation:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff": -0.1},
            {"max_backoff": -1.0},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.0},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            RetryPolicy(**kwargs)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, max_backoff=10.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff(1, rng) == pytest.approx(0.1)
        assert policy.backoff(2, rng) == pytest.approx(0.2)
        assert policy.backoff(3, rng) == pytest.approx(0.4)

    def test_clamped_at_max_backoff(self):
        policy = RetryPolicy(base_backoff=1.0, multiplier=10.0, max_backoff=2.5, jitter=0.0)
        assert policy.backoff(5, random.Random(0)) == pytest.approx(2.5)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_backoff=1.0, multiplier=1.0, jitter=0.2)
        rng = random.Random(7)
        for _ in range(100):
            value = policy.backoff(1, rng)
            assert 0.8 <= value <= 1.2

    def test_zero_failures_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy().backoff(0, random.Random(0))

    def test_jitter_stream_is_deterministic_per_seed_and_period(self):
        policy = RetryPolicy(base_backoff=0.5, jitter=0.3)
        a = [policy.backoff(k, RetryPolicy.jitter_rng(42, 3)) for k in (1, 2, 3)]
        b = [policy.backoff(k, RetryPolicy.jitter_rng(42, 3)) for k in (1, 2, 3)]
        c = [policy.backoff(k, RetryPolicy.jitter_rng(42, 4)) for k in (1, 2, 3)]
        assert a == b
        assert a != c  # different period, different stream
