"""Tests that the cost models carry the paper's cited numbers exactly."""

import math

from repro.baselines.cost_models import (
    BKKV10,
    COMPARISON_SCHEMES,
    DHLW10,
    DLWW11,
    LLW11,
    LRW11,
    dlr_model,
)


class TestCitedNumbers:
    """Section 1.2.1: refresh-leakage fractions as the paper reports them."""

    def test_llw11_is_1_over_258(self):
        assert LLW11.refresh_leakage_fn(128) == 1 / 258

    def test_dlww11_is_1_over_672(self):
        assert DLWW11.refresh_leakage_fn(128) == 1 / 672

    def test_dhlw10_tolerates_none(self):
        assert DHLW10.refresh_leakage_fn(128) == 0.0

    def test_bkkv10_lrw11_are_o1(self):
        for model in (BKKV10, LRW11):
            values = [model.refresh_leakage_fn(n) for n in (16, 64, 256, 4096)]
            assert values == sorted(values, reverse=True)  # decreasing
            assert values[-1] < 0.1

    def test_dlr_dominates_all_baselines_during_refresh(self):
        """The paper's headline: (1/2 - o(1)) beats o(1), 1/258, 1/672, 0."""
        ours = dlr_model()
        for n in (64, 128, 256):
            ours_rate = ours.refresh_leakage_fn(n)
            for model in COMPARISON_SCHEMES:
                assert ours_rate > model.refresh_leakage_fn(n)

    def test_dlr_refresh_rate_approaches_half(self):
        ours = dlr_model()
        assert ours.refresh_leakage_fn(2**20) > 0.45
        assert ours.refresh_leakage_fn(2**20) < 0.5


class TestFootnote3:
    """Footnote 3: efficiency comparison."""

    def test_dlr_ciphertext_two_elements(self):
        assert dlr_model().ciphertext_elements_fn(128) == 2.0

    def test_dlr_two_exponentiations(self):
        assert dlr_model().exponentiations_fn(128) == 2.0

    def test_bkkv10_omega_n_growth(self):
        assert BKKV10.ciphertext_elements_fn(256) > BKKV10.ciphertext_elements_fn(64) * 3

    def test_lrw11_omega_1_growth(self):
        assert LRW11.ciphertext_elements_fn(2**16) > LRW11.ciphertext_elements_fn(2**4)

    def test_llw11_composite_order(self):
        assert "composite" in LLW11.group_type
        assert "4 primes" in LLW11.group_type

    def test_only_dlr_is_distributed(self):
        assert dlr_model().distributed
        assert not any(m.distributed for m in COMPARISON_SCHEMES)

    def test_bit_by_bit_encrypters(self):
        assert BKKV10.encrypts == "bit-by-bit"
        assert LLW11.encrypts == "bit-by-bit"
        assert dlr_model().encrypts == "group elements"

    def test_msk_leakage_column(self):
        assert BKKV10.msk_leakage == "none allowed"
        assert "1 - o(1)" in dlr_model().msk_leakage
