"""Unit tests for the Naor-Segev bounded-leakage baseline."""

import random

import pytest

from repro.baselines.naor_segev import NaorSegevPKE
from repro.errors import ParameterError

ELL = 4


@pytest.fixture()
def scheme(small_group):
    return NaorSegevPKE(small_group, ELL)


class TestRoundtrip:
    def test_encrypt_decrypt(self, scheme, small_group, rng):
        pk, sk = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        assert scheme.decrypt(sk, scheme.encrypt(pk, message, rng)) == message

    def test_wrong_key_fails(self, scheme, small_group, rng):
        pk1, _ = scheme.keygen(rng)
        _, sk2 = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        assert scheme.decrypt(sk2, scheme.encrypt(pk1, message, rng)) != message

    def test_pk_relation(self, scheme, small_group, rng):
        pk, sk = scheme.keygen(rng)
        h = small_group.gt_identity()
        for g_i, x_i in zip(pk.generators, sk.x):
            h = h * (g_i ** x_i)
        assert h == pk.h

    def test_ell_too_small(self, small_group):
        with pytest.raises(ParameterError):
            NaorSegevPKE(small_group, 1)


class TestLeakageBounds:
    def test_capacity_formula(self, scheme, small_group):
        expected = (ELL - 1) * small_group.scalar_bits() - 2 * 40
        assert scheme.leakage_capacity(epsilon_log2=40) == max(expected, 0)

    def test_rate_approaches_one_with_ell(self, small_group):
        rates = [
            NaorSegevPKE(small_group, ell).leakage_rate(epsilon_log2=16)
            for ell in (2, 4, 8, 16)
        ]
        assert rates == sorted(rates)
        assert rates[-1] > 0.8

    def test_key_bits(self, scheme, small_group):
        assert scheme.key_bits() == ELL * small_group.scalar_bits()

    def test_no_refresh_exists(self, scheme):
        """Naor-Segev is *bounded* leakage: the API deliberately has no
        refresh operation -- the gap DLR fills."""
        assert not hasattr(scheme, "refresh")

    def test_key_equivalence_class(self, scheme, small_group, rng):
        """Many secret keys decrypt the same pk's ciphertexts (kernel
        freedom) -- the redundancy that buys leakage resilience."""
        pk, sk = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        ct = scheme.encrypt(pk, message, rng)
        assert scheme.decrypt(sk, ct) == message
        # A different key with the same h-value (constructed by shifting
        # along a relation) also works whenever h matches; we verify at
        # least that decryption depends on sk only through the mask.
        mask = small_group.gt_identity()
        for a_i, x_i in zip(ct.a, sk.x):
            mask = mask * (a_i ** x_i)
        assert ct.b / mask == message
