"""Tests for the single-memory strawman and the msk-extraction leakage
function -- the executable version of the paper's section 1.1 argument."""

import random

import pytest

from repro.baselines.single_memory import (
    MskExtractionLeakage,
    SingleMemoryDLR,
    decrypt_with_leaked_msk,
)
from repro.leakage.functions import LeakageInput
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.memory import MemoryRegion


@pytest.fixture()
def setting(small_params):
    scheme = SingleMemoryDLR(small_params)
    rng = random.Random(1)
    generation = scheme.generate(rng)
    memory = MemoryRegion("combined")
    scheme.install(memory, generation.share1, generation.share2)
    return scheme, generation, memory, rng


class TestFunctionality:
    def test_local_decryption_works(self, setting):
        scheme, generation, memory, rng = setting
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        assert scheme.decrypt(memory, ciphertext) == message

    def test_reconstruct_msk_matches_pk(self, setting):
        scheme, generation, _, _ = setting
        msk = scheme.reconstruct_msk(generation.share1, generation.share2)
        assert scheme.group.pair(scheme.group.g, msk) == generation.public_key.z

    def test_memory_holds_everything(self, setting, small_params):
        scheme, _, memory, _ = setting
        expected = small_params.sk1_bits() + small_params.sk2_bits()
        assert scheme.secret_memory_bits(memory) == expected


class TestOneShotBreak:
    def test_msk_extraction_is_tiny(self, setting, small_params):
        """The killer function outputs log q + 2 bits -- a small fraction
        of the combined memory AND far below DLR's own b2 budget."""
        scheme, _, memory, _ = setting
        fn = MskExtractionLeakage(scheme.group)
        assert fn.output_length == scheme.group.g_element_bits()
        assert fn.output_length < 0.1 * scheme.secret_memory_bits(memory)
        assert fn.output_length < small_params.theorem_b2()

    def test_one_leak_breaks_everything(self, setting):
        scheme, generation, memory, rng = setting
        snap = memory.open_phase("t0")
        memory.close_phase()
        leaked = MskExtractionLeakage(scheme.group)(LeakageInput(snap, []))
        # The adversary now decrypts arbitrary ciphertexts offline.
        for _ in range(3):
            message = scheme.group.random_gt(rng)
            ciphertext = scheme.encrypt(generation.public_key, message, rng)
            assert decrypt_with_leaked_msk(scheme.group, leaked, ciphertext) == message

    def test_break_fits_in_dlr_budgets(self, setting, small_params):
        """Formally: run the leakage through the same oracle with DLR's
        (b1, b2) budgets -- it is comfortably in budget.  The SAME budget
        that provably protects the distributed scheme is a total loss for
        the single-memory one."""
        scheme, generation, memory, rng = setting
        budget = LeakageBudget(0, small_params.theorem_b1(), small_params.theorem_b2())
        oracle = LeakageOracle(budget)
        snap = memory.open_phase("t0")
        memory.close_phase()
        leaked = oracle.leak(
            2, MskExtractionLeakage(scheme.group), LeakageInput(snap, [])
        )
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        assert decrypt_with_leaked_msk(scheme.group, leaked, ciphertext) == message

    def test_function_cannot_exist_in_distributed_setting(self, setting, small_params):
        """Mechanical impossibility: per-device snapshots lack the other
        share, so the extraction function fails on either device's
        leakage input."""
        from repro.core.dlr import DLR
        from repro.protocol.channel import Channel
        from repro.protocol.device import Device

        scheme, generation, _, rng = setting
        distributed = DLR(small_params)
        p1 = Device("P1", distributed.group, rng)
        p2 = Device("P2", distributed.group, rng)
        distributed.install(p1, p2, generation.share1, generation.share2)
        ciphertext = distributed.encrypt(
            generation.public_key, distributed.group.random_gt(rng), rng
        )
        record = distributed.run_period(p1, p2, Channel(), ciphertext)
        fn = MskExtractionLeakage(distributed.group)
        from repro.errors import ProtocolError

        for key in ((1, "normal"), (2, "normal")):
            with pytest.raises((ProtocolError, AssertionError)):
                fn(LeakageInput(record.snapshots[key], record.messages))
