"""Unit tests for the ElGamal baseline."""

import random

from repro.baselines.elgamal import ElGamal


class TestElGamal:
    def test_roundtrip(self, small_group, rng):
        scheme = ElGamal(small_group)
        keypair = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        assert scheme.decrypt(keypair, scheme.encrypt(keypair, message, rng)) == message

    def test_encrypt_with_public_key_only(self, small_group, rng):
        scheme = ElGamal(small_group)
        keypair = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        ct = scheme.encrypt(keypair.h, message, rng)
        assert scheme.decrypt(keypair, ct) == message

    def test_wrong_key_fails(self, small_group, rng):
        scheme = ElGamal(small_group)
        k1, k2 = scheme.keygen(rng), scheme.keygen(rng)
        message = small_group.random_gt(rng)
        assert scheme.decrypt(k2, scheme.encrypt(k1, message, rng)) != message

    def test_decrypt_with_leaked_exponent(self, small_group, rng):
        """The attack code path: knowing x decrypts everything."""
        scheme = ElGamal(small_group)
        keypair = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        ct = scheme.encrypt(keypair, message, rng)
        assert scheme.decrypt_with_exponent(keypair.x, ct) == message

    def test_secret_memory_is_single_exponent(self, small_group, rng):
        scheme = ElGamal(small_group)
        keypair = scheme.keygen(rng)
        assert len(keypair.secret_bits()) == small_group.scalar_bits()

    def test_randomized(self, small_group, rng):
        scheme = ElGamal(small_group)
        keypair = scheme.keygen(rng)
        message = small_group.random_gt(rng)
        assert scheme.encrypt(keypair, message, rng) != scheme.encrypt(keypair, message, rng)
