"""Tests for secure storage on leaky devices (section 4.4)."""

import random

import pytest

from repro.core.dlr import DLR
from repro.errors import ProtocolError
from repro.storage.leaky_store import LeakyStore


@pytest.fixture()
def store(small_params):
    return LeakyStore(small_params, random.Random(1))


class TestElementStorage:
    def test_store_retrieve(self, store, rng):
        value = store.group.random_gt(rng)
        handle = store.store_element("k", value)
        assert store.retrieve_element(handle) == value

    def test_survives_refreshes(self, store, rng):
        value = store.group.random_gt(rng)
        handle = store.store_element("k", value)
        for _ in range(4):
            store.refresh()
        assert store.retrieve_element(handle) == value
        assert store.periods_completed == 4

    def test_ciphertext_rerandomized_each_refresh(self, store, rng):
        handle = store.store_element("k", store.group.random_gt(rng))
        slot = f"stored_ciphertext.{handle.label}"
        before = store.device1.public.read(slot)
        store.refresh()
        after = store.device1.public.read(slot)
        assert before != after

    def test_duplicate_label_rejected(self, store, rng):
        store.store_element("k", store.group.random_gt(rng))
        with pytest.raises(ProtocolError):
            store.store_element("k", store.group.random_gt(rng))

    def test_multiple_labels(self, store, rng):
        values = {f"k{i}": store.group.random_gt(rng) for i in range(3)}
        handles = {label: store.store_element(label, v) for label, v in values.items()}
        store.refresh()
        for label, value in values.items():
            assert store.retrieve_element(handles[label]) == value
        assert sorted(store.labels()) == sorted(values)

    def test_wrong_handle_type(self, store, rng):
        handle = store.store_element("k", store.group.random_gt(rng))
        with pytest.raises(ProtocolError):
            store.retrieve_bytes(handle)


class TestByteStorage:
    def test_store_retrieve(self, store):
        payload = b"the launch codes are 0000"
        handle = store.store_bytes("blob", payload)
        assert store.retrieve_bytes(handle) == payload

    def test_survives_refreshes(self, store):
        payload = bytes(range(256))
        handle = store.store_bytes("blob", payload)
        for _ in range(3):
            store.refresh()
        assert store.retrieve_bytes(handle) == payload

    def test_empty_payload(self, store):
        handle = store.store_bytes("empty", b"")
        assert store.retrieve_bytes(handle) == b""

    def test_wrong_handle_type(self, store):
        handle = store.store_bytes("blob", b"x")
        with pytest.raises(ProtocolError):
            store.retrieve_element(handle)

    def test_pad_ciphertext_is_not_plaintext(self, store):
        payload = b"super secret"
        handle = store.store_bytes("blob", payload)
        masked = store.device1.public.read(f"stored_pad_ciphertext.{handle.label}")
        assert masked != payload


class TestLeakySurface:
    def test_run_leaky_period_snapshots(self, store, rng):
        value = store.group.random_gt(rng)
        handle = store.store_element("k", value)
        record = store.run_leaky_period("k")
        assert set(record.snapshots) == {
            (1, "normal"), (1, "refresh"), (2, "normal"), (2, "refresh")
        }
        assert record.plaintext == value

    def test_value_never_in_device_secret_memory(self, store, rng):
        """The stored plaintext appears in no secret-memory slot: only the
        ciphertext (public) and the key shares (secret) exist at rest."""
        value = store.group.random_gt(rng)
        store.store_element("k", value)
        for region in (store.device1.secret, store.device2.secret):
            for name in region.names():
                assert region.read(name) != value

    def test_basic_scheme_variant(self, small_params):
        """The store also works over the basic (non-optimal) DLR."""
        rng = random.Random(2)
        store = LeakyStore(small_params, rng, scheme=DLR(small_params))
        value = store.group.random_gt(rng)
        handle = store.store_element("k", value)
        store.refresh()
        assert store.retrieve_element(handle) == value
