"""T7 -- the leftover-hash-lemma entropy cliff.

Sweep the P1 leakage budget from "theorem bound" toward "everything":
the brute-force adversary's success flips from 0 to 1 exactly when the
*unleaked* key entropy drops inside its work bound.  This is the
computational shadow of the LHL argument behind Pi_ss / Definition 5.1
part 2: security is governed by the residual min-entropy of the key
given the leakage.
"""

import random

import pytest

from repro.analysis.adversaries import BruteForceAdversary
from repro.analysis.games import CPACMLGame
from repro.core.optimal import OptimalDLR
from repro.leakage.oracle import LeakageBudget
from repro.math.entropy import lhl_extractable_bits

MISSING_BITS = (0, 2, 4, 6, 8, 16, 32, 64)
WORK_BOUND_BITS = 10


class TestEntropyCliff:
    def test_generate_series(self, benchmark, small_params, table_writer):
        scheme = OptimalDLR(small_params)
        m1 = small_params.sk_comm_bits()
        m2 = small_params.sk2_bits()

        def one_trial(missing, seed):
            b1 = m1 - missing
            budget = LeakageBudget(0, max(b1, 0), m2)
            adversary = BruteForceAdversary(
                random.Random(seed + 5000), scheme, max(b1, 0),
                max_work_bits=WORK_BOUND_BITS,
            )
            result = CPACMLGame(scheme, budget, random.Random(seed)).run(adversary)
            recovered = adversary.master_secret is not None
            return result.won and recovered, adversary.attempted_candidates

        benchmark.pedantic(lambda: one_trial(4, 0), rounds=2, iterations=1)

        rows = []
        outcomes = {}
        for missing in MISSING_BITS:
            trials = [one_trial(missing, seed) for seed in range(3)]
            wins = sum(w for w, _ in trials)
            work = max(c for _, c in trials)
            outcomes[missing] = wins
            feasible = missing <= WORK_BOUND_BITS
            rows.append(
                [
                    missing,
                    m1 - missing,
                    "yes" if feasible else "no",
                    f"{wins}/3",
                    work,
                ]
            )
        table_writer(
            "T7_entropy_cliff",
            ["missing key bits", "b1 (leaked)", "within work bound", "wins", "max candidates tried"],
            rows,
            note=(
                f"Brute-force completion attack vs residual key entropy "
                f"(work bound 2^{WORK_BOUND_BITS}). 'wins' counts certain "
                "wins (key actually recovered), not lucky coin flips. The "
                "cliff sits exactly at the work bound -- security = "
                "residual entropy."
            ),
        )

        # Below the work bound: key always recovered. Above: never.
        for missing in MISSING_BITS:
            if missing <= WORK_BOUND_BITS:
                assert outcomes[missing] == 3, f"missing={missing}"
            else:
                assert outcomes[missing] == 0, f"missing={missing}"

    def test_lhl_parameters_consistent(self, benchmark, small_params, table_writer):
        """The parameter schedule leaves >= log p + 2 log(1/eps) residual
        entropy after lambda bits of leakage -- exactly what Definition
        5.1 part 2 demands."""
        params = small_params

        def residual():
            key_entropy = params.sk_comm_bits()
            return key_entropy - params.lam

        benchmark(residual)
        leftover = residual()
        needed = params.log_p + 2 * params.epsilon_log2
        rows = [
            ["|sk_comm| (bits)", params.sk_comm_bits()],
            ["lambda (leakage)", params.lam],
            ["residual entropy", leftover],
            ["needed: log p + 2 log(1/eps)", needed],
            ["LHL-extractable bits", f"{lhl_extractable_bits(leftover, 2.0 ** -params.n):.0f}"],
        ]
        table_writer(
            "T7_lhl_parameters",
            ["quantity", "value"],
            rows,
            note="Residual-entropy accounting behind kappa = 1 + (lambda + 2n)/log p.",
        )
        assert leftover >= needed
