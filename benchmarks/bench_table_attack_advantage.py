"""T6 -- adversary advantage in the Definition 3.2 game.

Three columns of the story:

1. **DLR, theorem budget**: the best-known attack (leak everything
   allowed, brute-force the rest) has advantage statistically
   indistinguishable from 0.
2. **DLR, over-budget**: with ``b1 >= 2 m1`` the key is recovered and
   advantage is 1 -- the leakage surface is honest.
3. **ElGamal victim, same per-period rate**: the single-memory baseline
   with no refresh is fully broken after ceil(1/rate) periods.
"""

import random

import pytest

from repro.analysis.adversaries import BruteForceAdversary, KeyRecoveryAdversary
from repro.analysis.attacks import elgamal_continual_break
from repro.analysis.games import CPACMLGame
from repro.analysis.stattests import empirical_advantage
from repro.core.optimal import OptimalDLR
from repro.leakage.oracle import LeakageBudget

TRIALS_IN_BUDGET = 40
TRIALS_OVER_BUDGET = 5


class TestAttackAdvantage:
    def test_generate_table(self, benchmark, small_params, small_group, table_writer):
        scheme = OptimalDLR(small_params)
        params = small_params
        m1, m2 = params.sk_comm_bits(), params.sk2_bits()

        def one_in_budget_game(seed=0):
            budget = LeakageBudget(0, params.theorem_b1(), params.theorem_b2())
            adversary = BruteForceAdversary(
                random.Random(10_000 + seed), scheme, params.theorem_b1(), max_work_bits=8
            )
            return CPACMLGame(scheme, budget, random.Random(seed)).run(adversary)

        benchmark.pedantic(one_in_budget_game, rounds=2, iterations=1)

        # (1) in-budget: advantage ~ 0
        in_budget = empirical_advantage(
            one_in_budget_game(seed).won for seed in range(TRIALS_IN_BUDGET)
        )

        # (2) over-budget: advantage ~ 1
        over_budget_wins = 0
        for seed in range(TRIALS_OVER_BUDGET):
            budget = LeakageBudget(0, 2 * m1, 2 * m2)
            adversary = KeyRecoveryAdversary(random.Random(20_000 + seed), scheme)
            over_budget_wins += CPACMLGame(scheme, budget, random.Random(seed)).run(adversary).won
        over_budget = empirical_advantage(
            [True] * over_budget_wins + [False] * (TRIALS_OVER_BUDGET - over_budget_wins)
        )

        # (3) single-memory DLR: identical algebra, one memory -- the
        # msk-extraction leakage function breaks it in ONE period within
        # the SAME budget.
        from repro.baselines.single_memory import (
            MskExtractionLeakage,
            SingleMemoryDLR,
            decrypt_with_leaked_msk,
        )
        from repro.leakage.functions import LeakageInput
        from repro.leakage.oracle import LeakageOracle
        from repro.protocol.memory import MemoryRegion

        single_wins = 0
        single_trials = 5
        for seed in range(single_trials):
            rng_local = random.Random(40_000 + seed)
            single = SingleMemoryDLR(params)
            generation = single.generate(rng_local)
            memory = MemoryRegion("combined")
            single.install(memory, generation.share1, generation.share2)
            snap = memory.open_phase("t0")
            memory.close_phase()
            oracle = LeakageOracle(LeakageBudget(0, params.theorem_b1(), params.theorem_b2()))
            leaked = oracle.leak(
                2, MskExtractionLeakage(single.group), LeakageInput(snap, [])
            )
            message = single.group.random_gt(rng_local)
            ciphertext = single.encrypt(generation.public_key, message, rng_local)
            single_wins += (
                decrypt_with_leaked_msk(single.group, leaked, ciphertext) == message
            )

        # (4) ElGamal victim at an equivalent per-period rate.
        rate = params.theorem_b1() / m1  # DLR's per-period P1 rate
        elgamal_outcomes = [
            elgamal_continual_break(
                small_group, rate=rate, periods=10, rng=random.Random(seed)
            ).won
            for seed in range(10)
        ]
        elgamal_break_fraction = sum(elgamal_outcomes) / len(elgamal_outcomes)

        rows = [
            [
                "DLR, theorem budget (b1, m2)",
                TRIALS_IN_BUDGET,
                f"{in_budget.win_rate:.2f}",
                f"{in_budget.advantage:+.2f}",
                "~0 (secure)",
            ],
            [
                "DLR, budget 2m1/2m2 (over)",
                TRIALS_OVER_BUDGET,
                f"{over_budget.win_rate:.2f}",
                f"{over_budget.advantage:+.2f}",
                "1 (surface honest)",
            ],
            [
                "single-memory DLR, same budget, 1 period",
                single_trials,
                f"{single_wins / single_trials:.2f}",
                f"{single_wins / single_trials - 0.5:+.2f}",
                "1 (victim: msk computed in-function)",
            ],
            [
                f"ElGamal, rate {rate:.2f}/period, no refresh",
                len(elgamal_outcomes),
                f"{elgamal_break_fraction:.2f}",
                f"{elgamal_break_fraction - 0.5:+.2f}",
                "1 (victim)",
            ],
        ]
        table_writer(
            "T6_attack_advantage",
            ["configuration", "trials", "win rate", "advantage", "expected"],
            rows,
            note="Definition 3.2 game outcomes: in-budget DLR is safe; the same leakage rate kills unrefreshed ElGamal.",
        )

        assert in_budget.is_consistent_with_no_advantage()
        assert over_budget.win_rate == 1.0
        assert single_wins == single_trials
        assert elgamal_break_fraction == 1.0

        benchmark.extra_info["in_budget_win_rate"] = in_budget.win_rate
        benchmark.extra_info["over_budget_win_rate"] = over_budget.win_rate
        benchmark.extra_info["elgamal_break_fraction"] = elgamal_break_fraction
