"""T9 -- DLRIBE: leakage from the master secret key AND identity keys
(section 4.2 + Remark 4.1), with per-operation costs.

The paper's DIBE table: master-key shares tolerate the same
(1 - o(1), 1) / (1/2 - o(1), 1) rates as DLR; identity-key generation
leaks at most (b1, b2) (not the stricter b0); identity keys refresh too.
"""

import random

import pytest

from repro.core.params import DLRParams
from repro.ibe.dlr_ibe import DLRIBE
from repro.leakage.functions import LeakageInput, PrefixBits
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.channel import Channel
from repro.protocol.device import Device

N_ID = 8


class TestDIBELifecycle:
    def test_generate_table(self, benchmark, small_params, table_writer):
        dibe = DLRIBE(small_params, n_id=N_ID)
        rng = random.Random(1)
        setup = dibe.setup(rng)
        p1 = Device("P1", dibe.group, rng)
        p2 = Device("P2", dibe.group, rng)
        channel = Channel()
        dibe.install(p1, p2, setup.share1, setup.share2)

        budget = LeakageBudget(0, small_params.theorem_b1(), small_params.theorem_b2())
        oracle = LeakageOracle(budget)

        # --- extraction under leakage (Remark 4.1: bound is b1/b2) ------
        snap1 = p1.secret.open_phase("extract")
        snap2 = p2.secret.open_phase("extract")
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")
        p1.secret.close_phase()
        p2.secret.close_phase()
        extract_leak_1 = oracle.leak(
            1, PrefixBits(min(budget.b1, 64)), LeakageInput(snap1, [])
        )
        extract_leak_2 = oracle.leak(
            2, PrefixBits(min(budget.b2, 64)), LeakageInput(snap2, [])
        )
        oracle.end_period()

        # --- decryption + both refresh flavors under leakage ------------
        message = dibe.group.random_gt(rng)
        ciphertext = dibe.encrypt_to(setup.public_params, "alice", message, rng)

        # Split the per-period budget b1 between the normal and refresh
        # phases (the Def 3.2 accounting sums them).
        half_b1 = budget.b1 // 2

        snap1 = p1.secret.open_phase("decrypt")
        snap2 = p2.secret.open_phase("decrypt")
        plaintext = dibe.decrypt_protocol_id(p1, p2, channel, "alice", ciphertext)
        p1.secret.close_phase()
        p2.secret.close_phase()
        dec_leak_1 = oracle.leak(1, PrefixBits(half_b1), LeakageInput(snap1, []))

        ref1 = p1.secret.open_phase("refresh")
        ref2 = p2.secret.open_phase("refresh")
        dibe.refresh_protocol(p1, p2, channel)  # master
        dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")
        p1.secret.close_phase()
        p2.secret.close_phase()
        ref_leak_1 = oracle.leak_refresh(1, PrefixBits(half_b1), LeakageInput(ref1, []))
        oracle.end_period()

        # Still decrypts after leaking on everything and refreshing both
        # the master and identity shares.
        assert dibe.decrypt_protocol_id(p1, p2, channel, "alice", ciphertext) == message
        assert plaintext == message

        # --- cost rows -----------------------------------------------------
        group = dibe.group

        def count(operation):
            before = group.counter.snapshot()
            operation()
            return group.counter.diff(before)

        extract_cost = count(
            lambda: dibe.extract_protocol(setup.public_params, p1, p2, channel, "bob")
        )
        ct_bob = dibe.encrypt_to(setup.public_params, "bob", message, rng)
        enc_cost = count(lambda: dibe.encrypt_to(setup.public_params, "carol", message, rng))
        dec_cost = count(
            lambda: dibe.decrypt_protocol_id(p1, p2, channel, "bob", ct_bob)
        )
        idref_cost = count(
            lambda: dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "bob")
        )

        def exp_terms(cost):
            # Exponentiation work whether done as single ladders or as
            # folded multiexp terms (the fast-kernel profile).
            return (
                cost.exponentiations + cost.g_multiexp + cost.gt_multiexp
            )

        rows = [
            ["extract (2-party)",
             extract_cost.pairings + extract_cost.pairings_precomp,
             exp_terms(extract_cost)],
            ["encrypt-to-ID",
             enc_cost.pairings + enc_cost.pairings_precomp,
             exp_terms(enc_cost)],
            ["decrypt (2-party)",
             dec_cost.pairings + dec_cost.pairings_precomp,
             exp_terms(dec_cost)],
            ["identity refresh (2-party)",
             idref_cost.pairings + idref_cost.pairings_precomp,
             exp_terms(idref_cost)],
        ]
        table_writer(
            "T9_dibe_costs",
            ["operation", "pairings", "exp terms"],
            rows,
            note=f"DLRIBE operation costs at n=32, n_id={N_ID}; leakage exercised on msk and identity shares.",
        )

        leak_rows = [
            ["extraction leak P1 (bits)", len(extract_leak_1), f"<= b1 = {budget.b1}"],
            ["extraction leak P2 (bits)", len(extract_leak_2), f"<= b2 = {budget.b2}"],
            ["decryption leak P1 (bits)", len(dec_leak_1), "normal-phase budget"],
            ["refresh leak P1 (bits)", len(ref_leak_1), "refresh-phase budget"],
        ]
        table_writer(
            "T9_dibe_leakage",
            ["phase", "leaked", "bound"],
            leak_rows,
            note="Remark 4.1: identity-key generation leaks under (b1, b2), not the stricter b0.",
        )

        # Encryption has no pairings (z in the params) per footnote 3 logic.
        assert enc_cost.pairings + enc_cost.pairings_precomp == 0
        # Extraction and identity refresh need no pairings either.
        assert extract_cost.pairings + extract_cost.pairings_precomp == 0
        assert idref_cost.pairings + idref_cost.pairings_precomp == 0
        # Decryption pairs: ell + 2 for the DLR part + n_id for the C_j
        # (full Miller loops or cached-schedule evaluations).
        assert dec_cost.pairings + dec_cost.pairings_precomp >= N_ID

        benchmark.pedantic(
            lambda: dibe.encrypt_to(setup.public_params, "dave", message, rng),
            rounds=3,
            iterations=1,
        )

    def test_identity_share_rates_match_master(self, benchmark, small_params, table_writer):
        """Remark 4.1: 'the above leakage bounds hold both when P1, P2
        are sharing the master secret key and when they are sharing an
        identity based secret key.'  Measure the identity-share phase
        snapshots during identity refresh: P2's identity share doubles
        (old s' + new s''), same as the master share."""
        dibe = DLRIBE(small_params, n_id=N_ID)
        rng = random.Random(9)
        setup = dibe.setup(rng)
        p1 = Device("P1", dibe.group, rng)
        p2 = Device("P2", dibe.group, rng)
        channel = Channel()
        dibe.install(p1, p2, setup.share1, setup.share2)
        dibe.extract_protocol(setup.public_params, p1, p2, channel, "alice")

        # Master share sizes, for the comparison column.
        m2 = small_params.sk2_bits()
        id_share2 = dibe.identity_share2_of(p2, "alice")
        id_m2 = id_share2.size_bits()

        snap1 = p1.secret.open_phase("idref")
        snap2 = p2.secret.open_phase("idref")

        def one_refresh():
            dibe.refresh_identity_protocol(setup.public_params, p1, p2, channel, "alice")

        one_refresh()
        p1.secret.close_phase()
        p2.secret.close_phase()
        benchmark.pedantic(one_refresh, rounds=2, iterations=1)

        # P2's snapshot = master share (untouched) + id share old + new.
        p2_refresh_bits = snap2.size_bits()
        id_refresh_bits = p2_refresh_bits - m2
        b2_id = id_m2  # Remark 4.1: same full-share bound applies

        rows = [
            ["master share m2", m2, "b2 = m2 -> rho2 = 1"],
            ["identity share |sk_ID^2|", id_m2, "= ell log p = m2"],
            ["identity share during refresh", id_refresh_bits, "= 2 |sk_ID^2|"],
            ["rho (identity, normal)", f"{b2_id / id_m2:.2f}", "= 1"],
            ["rho (identity, refresh)", f"{b2_id / id_refresh_bits:.2f}", "= 1/2"],
        ]
        table_writer(
            "T9_identity_rates",
            ["quantity", "bits / value", "Remark 4.1 expectation"],
            rows,
            note="Identity-key shares obey the same leakage accounting as master shares.",
        )
        assert id_m2 == m2                      # ell scalars either way
        assert id_refresh_bits == 2 * id_m2     # doubling during refresh
        assert b2_id / id_refresh_bits == pytest.approx(0.5)

    def test_extract_timing(self, benchmark, small_params):
        dibe = DLRIBE(small_params, n_id=N_ID)
        rng = random.Random(2)
        setup = dibe.setup(rng)
        p1 = Device("P1", dibe.group, rng)
        p2 = Device("P2", dibe.group, rng)
        channel = Channel()
        dibe.install(p1, p2, setup.share1, setup.share2)
        counter = [0]

        def extract():
            counter[0] += 1
            dibe.extract_protocol(setup.public_params, p1, p2, channel, f"id{counter[0]}")

        benchmark.pedantic(extract, rounds=3, iterations=1)
