"""T8b -- the section 6 distinguisher D, end to end on toy groups.

Regenerates the reduction-skeleton table: D plays the fake game with an
adversary A and outputs 1 iff A wins.  The proof's two pillars,
measured:

* real T: the planted challenge is a perfect encryption -> A's advantage
  transfers to D (the unbounded DlogBreaker makes D a perfect toy-BDDH
  distinguisher, as it must -- toy BDDH *is* easy);
* random T: the challenge is independent of the bit -> Pr[D=1] = 1/2
  regardless of A.
"""

import random

import pytest

from repro.analysis.distinguisher import (
    BDDHDistinguisher,
    ChallengeAdversary,
    DlogBreaker,
)

TRIALS = 20


class TestDistinguisherTable:
    def test_generate_table(self, benchmark, toy_params, table_writer):
        distinguisher = BDDHDistinguisher(toy_params, random.Random(1))

        benchmark.pedantic(
            lambda: distinguisher.estimate_advantage(
                lambda rng: ChallengeAdversary(rng), trials=2
            ),
            rounds=2,
            iterations=1,
        )

        unbounded = distinguisher.estimate_advantage(
            lambda rng: DlogBreaker(rng), trials=TRIALS
        )
        bounded = distinguisher.estimate_advantage(
            lambda rng: ChallengeAdversary(rng), trials=TRIALS
        )

        rows = [
            ["DlogBreaker (unbounded on toy group)", TRIALS,
             f"{unbounded:+.2f}", "~ +1/2 (toy BDDH is easy)"],
            ["guessing adversary (bounded)", TRIALS,
             f"{bounded:+.2f}", "~ 0 (no advantage to transfer)"],
        ]
        table_writer(
            "T8b_distinguisher",
            ["adversary inside D", "trials", "Pr[D=1|real] - Pr[D=1|random]", "expected"],
            rows,
            note=(
                "Section 6 reduction skeleton: D's BDDH advantage equals the "
                "adversary's game advantage (up to the factor 1/2 from the "
                "random-T side)."
            ),
        )

        assert unbounded > 0.3
        assert abs(bounded) < 0.35
        benchmark.extra_info["unbounded_advantage"] = unbounded
        benchmark.extra_info["bounded_advantage"] = bounded
