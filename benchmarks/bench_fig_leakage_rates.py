"""T3 -- Theorem 4.1 leakage parameters as a function of lambda and n.

Regenerates the series:

    b1 = (1 - c n / (lambda + c n)) m1,   m1 = kappa log p ~ lambda + 3n
    rho1 = b1/m1 -> 1 - o(1)      rho1_ref = b1/2m1 -> 1/2 - o(1)
    rho2 = 1                      rho2_ref = 1/2 (1 in the proof)
    rho_gen = o(1)

Every row is measured from real phase snapshots, not formulas.
"""

import random

import pytest

from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.protocol.channel import Channel
from repro.protocol.device import Device

LAMBDAS = (32, 64, 128, 256, 512, 1024)
GROUP_SIZES = (32, 64)


def measure(group, lam, seed):
    params = DLRParams(group=group, lam=lam)
    scheme = OptimalDLR(params)
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1, p2 = Device("P1", group, rng), Device("P2", group, rng)
    channel = Channel()
    scheme.install(p1, p2, generation.share1, generation.share2)
    ciphertext = scheme.encrypt(generation.public_key, group.random_gt(rng), rng)
    record = scheme.run_period(p1, p2, channel, ciphertext)
    sizes = {key: snap.size_bits() for key, snap in record.snapshots.items()}
    b1, b2 = params.theorem_b1(), params.theorem_b2()
    return {
        "m1": sizes[(1, "normal")],
        "m2": sizes[(2, "normal")],
        "b1": b1,
        "b2": b2,
        "rho1": b1 / sizes[(1, "normal")],
        "rho2": b2 / sizes[(2, "normal")],
        "rho1_ref": b1 / sizes[(1, "refresh")],
        "rho2_ref": b2 / sizes[(2, "refresh")],
        "rho_gen": params.n.bit_length() / generation.randomness.size_bits(),
        "kappa": params.kappa,
        "ell": params.ell,
    }


class TestLeakageRateFigure:
    def test_generate_series(self, benchmark, table_writer):
        group = preset_group(32)
        benchmark.pedantic(lambda: measure(group, 64, 0), rounds=2, iterations=1)

        rows = []
        series = {}
        for n_bits in GROUP_SIZES:
            g = preset_group(n_bits)
            for lam in LAMBDAS:
                point = measure(g, lam, seed=lam)
                series[(n_bits, lam)] = point
                rows.append(
                    [
                        n_bits,
                        lam,
                        point["kappa"],
                        point["ell"],
                        point["m1"],
                        point["b1"],
                        f"{point['rho1']:.4f}",
                        f"{point['rho1_ref']:.4f}",
                        f"{point['rho2']:.2f}",
                        f"{point['rho2_ref']:.2f}",
                        f"{point['rho_gen']:.4f}",
                    ]
                )
        table_writer(
            "T3_leakage_rates",
            ["n", "lambda", "kappa", "ell", "m1", "b1",
             "rho1", "rho1_ref", "rho2", "rho2_ref", "rho_gen"],
            rows,
            note="Theorem 4.1 leakage rates, measured from real period snapshots.",
        )

        # --- claims ------------------------------------------------------
        for n_bits in GROUP_SIZES:
            rhos = [series[(n_bits, lam)]["rho1"] for lam in LAMBDAS]
            # rho1 increases monotonically toward 1 (the 1 - o(1) claim).
            assert rhos == sorted(rhos)
            assert rhos[-1] > 0.8
            # rho1_ref is exactly half of rho1 (memory doubles in refresh).
            for lam in LAMBDAS:
                point = series[(n_bits, lam)]
                assert point["rho1_ref"] == pytest.approx(point["rho1"] / 2)
                assert point["rho2"] == pytest.approx(1.0)
                assert point["rho2_ref"] == pytest.approx(0.5)
                # rho_gen stays o(1)-small.
                assert point["rho_gen"] < 0.05
                # b1 formula: (1 - 3n/(lam+3n)) m1, up to rounding.
                n = n_bits
                expected = point["m1"] * lam / (lam + 3 * n)
                assert point["b1"] == pytest.approx(expected, rel=0.02)
