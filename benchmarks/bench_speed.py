"""Wall-clock benchmarks of the fast group-arithmetic kernels.

Measures each kernel (simultaneous multi-exponentiation, fixed-argument
pairing precomputation, batch modular inversion, the inversion-free
projective Miller loop) and each scheme-level hot path (P2's
decrypt/refresh combines, P1's d_i derivation, the full two-party
decryption protocol) twice on identical inputs: once with the fast
kernels active and once inside
:func:`repro.groups.fastops.reference_mode`, which restores the naive
per-term / per-pairing code paths.  Reports trimmed-median timings and
the speedup ratio per entry, and calibrates the
:meth:`~repro.groups.bilinear.OperationCounter.total_cost` weights from
the measured per-operation costs.

Usage::

    python benchmarks/bench_speed.py                      # default: 64-bit group, lam=128
    python benchmarks/bench_speed.py --smoke              # tiny parameters, fast
    python benchmarks/bench_speed.py --output results/BENCH_speed.json
    python benchmarks/bench_speed.py --smoke --check results/BENCH_speed.json

``--check`` compares *speedup ratios* (machine-invariant, unlike raw
wall-clock) against a baseline JSON: the run fails if any entry's
speedup regressed below 75% of the baseline's.  Speedups shift with the
parameter scale (window sizes, term counts), so the comparison is
scale-matched: a full-size baseline embeds a ``"smoke"`` sub-report, and
``--check`` picks whichever baseline section was measured at the fresh
run's ``(group_bits, lam)``.  CI runs smoke mode against the checked-in
``results/BENCH_speed.json``.

Every report records the field-arithmetic backend it ran on
(``"backend"``).  ``--backends python,gmpy2`` runs the whole suite once
per listed backend *in one process* (unavailable backends are skipped
with a note) and attaches the extra runs as ``"backend_columns"`` --
same machine, same inputs, so the columns are directly comparable.
``--require-accel BENCH[:RATIO]`` then gates on that comparison: the
last non-python column must beat the python column's fast-path
wall-clock on ``BENCH`` by at least ``RATIO`` (default 1.5).  This is
how CI's gmpy2 leg enforces the acceleration floor without ever
comparing wall-clock across machines.

See docs/performance.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time

#: Fraction of a baseline speedup a fresh run must retain to pass --check.
REGRESSION_TOLERANCE = 0.75


def trimmed_median(fn, warmup: int, repeats: int) -> float:
    """Median of ``repeats`` timed calls after dropping the fastest and
    slowest sample (and ``warmup`` untimed calls first)."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    if len(samples) > 2:
        samples = samples[1:-1]
    return statistics.median(samples)


def _entry(fast_s: float, naive_s: float) -> dict:
    return {
        "fast_ms": round(fast_s * 1000, 4),
        "naive_ms": round(naive_s * 1000, 4),
        "speedup": round(naive_s / fast_s, 3) if fast_s > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# Kernel benchmarks


def bench_kernels(group, params, rng, warmup: int, repeats: int) -> dict:
    from repro.groups import fastops
    from repro.groups.bilinear import G1Element, GTElement
    from repro.groups.pairing import (
        PairingPrecomp,
        final_exponentiation,
        miller_loop,
        miller_loop_affine,
        tate_pairing,
    )
    from repro.math.modular import batch_inv, inv_mod

    p = group.p
    q = group.q
    terms = params.ell + 2  # the combine-step term count
    report = {}

    g_bases = [group.random_g(rng) for _ in range(terms)]
    gt_bases = [group.random_gt(rng) for _ in range(terms)]
    exponents = [rng.randrange(1, p) for _ in range(terms)]

    def g1_fast():
        return G1Element.multiexp(g_bases, exponents)

    def g1_naive():
        with fastops.reference_mode():
            return G1Element.multiexp(g_bases, exponents)

    report["g1_multiexp"] = _entry(
        trimmed_median(g1_fast, warmup, repeats),
        trimmed_median(g1_naive, warmup, repeats),
    )

    def gt_fast():
        return GTElement.multiexp(gt_bases, exponents)

    def gt_naive():
        with fastops.reference_mode():
            return GTElement.multiexp(gt_bases, exponents)

    report["gt_multiexp"] = _entry(
        trimmed_median(gt_fast, warmup, repeats),
        trimmed_median(gt_naive, warmup, repeats),
    )

    # Fixed-argument pairing: one left point against `terms` right points,
    # schedule construction included in the fast timing.
    left = group.random_g(rng).point
    rights = [group.random_g(rng).point for _ in range(terms)]

    def precomp_fast():
        precomp = PairingPrecomp(left, group.params)
        return [precomp.pair_with(right) for right in rights]

    def precomp_naive():
        return [tate_pairing(left, right, group.params) for right in rights]

    report["pairing_precomp"] = _entry(
        trimmed_median(precomp_fast, warmup, repeats),
        trimmed_median(precomp_naive, warmup, repeats),
    )

    def miller_projective():
        return final_exponentiation(miller_loop(left, rights[0], group.params), group.params)

    def miller_affine():
        return final_exponentiation(
            miller_loop_affine(left, rights[0], group.params), group.params
        )

    report["miller_projective"] = _entry(
        trimmed_median(miller_projective, warmup, repeats),
        trimmed_median(miller_affine, warmup, repeats),
    )

    values = [rng.randrange(1, q) for _ in range(256)]

    def inv_batched():
        return batch_inv(values, q)

    def inv_loop():
        return [inv_mod(v, q) for v in values]

    report["batch_inv_256"] = _entry(
        trimmed_median(inv_batched, warmup, repeats),
        trimmed_median(inv_loop, warmup, repeats),
    )
    return report


# ---------------------------------------------------------------------------
# Scheme-level benchmarks


def bench_schemes(scheme, generated, rng, warmup: int, repeats: int) -> dict:
    from repro.core.dlr import combine_decrypt, combine_refresh
    from repro.core.keys import Share2
    from repro.groups import fastops
    from repro.protocol.channel import Channel
    from repro.protocol.device import Device

    group = scheme.group
    report = {}

    # Stage one period's worth of protocol inputs, exactly as run_period
    # produces them, so the combine steps see realistic operands.
    sk_comm = scheme.hpske_g.keygen(rng)
    f_list = [scheme.hpske_g.encrypt(sk_comm, a_i, rng) for a_i in generated.share1.a]
    f_phi = scheme.hpske_g.encrypt(sk_comm, generated.share1.phi, rng)
    ciphertext = scheme.encrypt(generated.public_key, group.random_gt(rng), rng)

    a_precomp = group.pairing_precomp(ciphertext.a)
    d_list = tuple(f_i.pair_with(a_precomp) for f_i in f_list)
    d_phi = f_phi.pair_with(a_precomp)
    d_b = scheme.hpske_gt.encrypt(sk_comm, ciphertext.b, rng)
    fresh_share = Share2(
        tuple(group.random_scalar(rng) for _ in range(scheme.params.ell)), group.p
    )
    f_new = [scheme.hpske_g.encrypt(sk_comm, group.random_g(rng), rng) for _ in f_list]
    f_pairs = tuple(zip(f_list, f_new))

    def dec_combine_fast():
        return combine_decrypt(generated.share2, d_list, d_phi, d_b)

    def dec_combine_naive():
        with fastops.reference_mode():
            return combine_decrypt(generated.share2, d_list, d_phi, d_b)

    report["p2_decrypt_combine"] = _entry(
        trimmed_median(dec_combine_fast, warmup, repeats),
        trimmed_median(dec_combine_naive, warmup, repeats),
    )

    def ref_combine_fast():
        return combine_refresh(generated.share2, fresh_share, f_pairs, f_phi)

    def ref_combine_naive():
        with fastops.reference_mode():
            return combine_refresh(generated.share2, fresh_share, f_pairs, f_phi)

    report["p2_refresh_combine"] = _entry(
        trimmed_median(ref_combine_fast, warmup, repeats),
        trimmed_median(ref_combine_naive, warmup, repeats),
    )

    # P1's d_i derivation: the fixed-argument pairing hot path.
    def derive_fast():
        precomp = group.pairing_precomp(ciphertext.a)
        return [f_i.pair_with(precomp) for f_i in f_list] + [f_phi.pair_with(precomp)]

    def derive_naive():
        with fastops.reference_mode():
            precomp = group.pairing_precomp(ciphertext.a)
            return [f_i.pair_with(precomp) for f_i in f_list] + [
                f_phi.pair_with(precomp)
            ]

    report["p1_derive_d"] = _entry(
        trimmed_median(derive_fast, warmup, repeats),
        trimmed_median(derive_naive, warmup, repeats),
    )

    # The full two-party decryption protocol, end to end.
    def installed():
        device_rng = random.Random(11)
        p1 = Device("P1", group, device_rng)
        p2 = Device("P2", group, device_rng)
        scheme.install(p1, p2, generated.share1, generated.share2)
        return p1, p2, Channel()

    p1, p2, channel = installed()

    def full_decrypt_fast():
        return scheme.decrypt_protocol(p1, p2, channel, ciphertext)

    def full_decrypt_naive():
        with fastops.reference_mode():
            return scheme.decrypt_protocol(p1, p2, channel, ciphertext)

    report["p2_full_decrypt"] = _entry(
        trimmed_median(full_decrypt_fast, warmup, repeats),
        trimmed_median(full_decrypt_naive, warmup, repeats),
    )
    return report


# ---------------------------------------------------------------------------
# Batch / multi-core benchmarks


def bench_batch(scheme, generated, rng, warmup: int, repeats: int) -> dict:
    """Amortized batch APIs vs the single-op path, plus the pool leg.

    ``decrypt_amortization_bN`` compares the *per-ciphertext* wall-clock
    of a batch-of-N period (:meth:`~repro.core.dlr.DLR.run_period_multi`:
    N decrypts sharing one refresh, one precomp schedule, one batched
    multiexp window decision) against one single-ciphertext period --
    the ratio is the amortization factor and is machine-invariant.

    ``pool_evaluate_many_jobs2`` compares one fixed-argument pairing
    schedule evaluated over a vector with ``jobs=2`` (process pool)
    against ``jobs=1`` (in-process): the same-machine multi-core gate
    (``--require-pool``) reads its speedup, which only exceeds 1 with
    >= 2 cores -- a committed baseline from a 1-core box honestly
    records ~1.0x.
    """
    from repro.groups.pairing import PairingPrecomp
    from repro.parallel import shutdown_pool
    from repro.protocol.channel import Channel
    from repro.protocol.device import Device

    group = scheme.group
    report = {}

    def installed(seed):
        device_rng = random.Random(seed)
        p1 = Device("P1", group, device_rng)
        p2 = Device("P2", group, device_rng)
        scheme.install(p1, p2, generated.share1, generated.share2)
        return p1, p2, Channel()

    messages = [group.random_gt(rng) for _ in range(16)]
    ciphertexts = scheme.encrypt_batch(generated.public_key, messages, rng)

    # Repeated calls stay healthy: every period refreshes the shares to a
    # fresh valid generation, and the original public key keeps matching.
    p1s, p2s, channel_s = installed(11)

    def single_period():
        return scheme.run_period(p1s, p2s, channel_s, ciphertexts[0])

    t_single = trimmed_median(single_period, warmup, repeats)

    for batch in (4, 16):
        p1b, p2b, channel_b = installed(batch)
        subset = ciphertexts[:batch]

        def batched(subset=subset, p1b=p1b, p2b=p2b, channel_b=channel_b):
            return scheme.run_period_multi(p1b, p2b, channel_b, subset)

        t_batch = trimmed_median(batched, warmup, repeats)
        report[f"decrypt_amortization_b{batch}"] = _entry(t_batch / batch, t_single)

    left = group.random_g(rng).point
    points = [group.random_g(rng).point for _ in range(32)]
    precomp = PairingPrecomp(left, group.params)

    def pool_jobs2():
        return precomp.evaluate_many(points, jobs=2)

    def in_process():
        return precomp.evaluate_many(points, jobs=1)

    report["pool_evaluate_many_jobs2"] = _entry(
        trimmed_median(pool_jobs2, warmup, repeats),
        trimmed_median(in_process, warmup, repeats),
    )
    shutdown_pool()
    return report


# ---------------------------------------------------------------------------
# Cost-weight calibration


def calibrate_weights(group, rng, warmup: int, repeats: int) -> dict:
    """Measure each counted operation and express its cost in units of
    one ``G`` multiplication (the ``total_cost`` weight convention).

    Multiexp weights are per folded term; the precomp-pairing weight
    amortizes the schedule construction over the ``ell + 1`` evaluations
    a decryption shares it across.
    """
    from repro.groups.bilinear import G1Element, GTElement
    from repro.groups.pairing import PairingPrecomp, tate_pairing

    p = group.p
    u, v = group.random_g(rng), group.random_g(rng)
    zu, zv = group.random_gt(rng), group.random_gt(rng)
    k = rng.randrange(1, p)
    terms = 28
    g_bases = [group.random_g(rng) for _ in range(terms)]
    gt_bases = [group.random_gt(rng) for _ in range(terms)]
    exps = [rng.randrange(1, p) for _ in range(terms)]
    left = group.random_g(rng).point
    rights = [group.random_g(rng).point for _ in range(terms)]

    timings = {
        "g_mul": trimmed_median(lambda: u * v, warmup, repeats),
        "g_exp": trimmed_median(lambda: u ** k, warmup, repeats),
        "gt_mul": trimmed_median(lambda: zu * zv, warmup, repeats),
        "gt_exp": trimmed_median(lambda: zu ** k, warmup, repeats),
        "g_multiexp": trimmed_median(lambda: G1Element.multiexp(g_bases, exps), warmup, repeats)
        / terms,
        "gt_multiexp": trimmed_median(
            lambda: GTElement.multiexp(gt_bases, exps), warmup, repeats
        )
        / terms,
        "pairings": trimmed_median(
            lambda: tate_pairing(left, rights[0], group.params), warmup, repeats
        ),
    }

    def precomp_batch():
        precomp = PairingPrecomp(left, group.params)
        return [precomp.pair_with(right) for right in rights]

    timings["pairings_precomp"] = trimmed_median(precomp_batch, warmup, repeats) / terms

    unit = timings["g_mul"]
    weights = {
        name: max(1, round(seconds / unit)) for name, seconds in timings.items()
    }
    weights["g_samples"] = 0
    weights["gt_samples"] = 0
    return weights


# ---------------------------------------------------------------------------
# Report / regression gate


def speed_report(
    group_bits: int = 64, lam: int = 128, seed: int = 7, warmup: int = 1, repeats: int = 5
) -> dict:
    from repro.core.dlr import DLR
    from repro.core.params import DLRParams
    from repro.groups import preset_group
    from repro.math.backend import active_backend

    group = preset_group(group_bits)
    params = DLRParams(group=group, lam=lam)
    scheme = DLR(params)
    rng = random.Random(seed)
    generated = scheme.generate(rng)

    import os

    report = {
        "backend": active_backend().name,
        "group_bits": group_bits,
        "lam": lam,
        "ell": params.ell,
        "kappa": params.kappa,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "timing": {"warmup": warmup, "repeats": repeats, "estimator": "trimmed median"},
        "kernels": bench_kernels(group, params, rng, warmup, repeats),
        "schemes": bench_schemes(scheme, generated, rng, warmup, repeats),
        "batch": bench_batch(scheme, generated, rng, warmup, repeats),
        "cost_weights": calibrate_weights(group, rng, warmup, repeats),
    }
    return report


def _speedups(report: dict) -> dict[str, float]:
    ratios = {}
    for section in ("kernels", "schemes", "batch"):
        for name, entry in report.get(section, {}).items():
            if name.startswith("pool_"):
                # Pool speedups scale with the machine's core count --
                # not machine-invariant, so the --check gate must not
                # compare them across machines.  The same-machine
                # --require-pool gate owns them instead.
                continue
            ratios[f"{section}.{name}"] = entry["speedup"]
    return ratios


def _scale_matched_baseline(report: dict, baseline: dict) -> dict | None:
    """The baseline section measured at the fresh report's scale.

    Speedup ratios depend on the parameter scale (window sizes and table
    amortization shift with exponent width and term count), so a smoke
    run must only be compared against smoke-scale baseline numbers.
    """
    scale = (report.get("group_bits"), report.get("lam"))
    if (baseline.get("group_bits"), baseline.get("lam")) == scale:
        return baseline
    smoke = baseline.get("smoke")
    if smoke and (smoke.get("group_bits"), smoke.get("lam")) == scale:
        return smoke
    return None


def check_regressions(report: dict, baseline: dict) -> list[str]:
    """Compare speedup ratios (machine-invariant) against the baseline.

    Returns failure messages for every entry whose speedup fell below
    ``REGRESSION_TOLERANCE`` of the baseline's.  Entries present in only
    one report are ignored (additions/removals are not regressions).
    """
    matched = _scale_matched_baseline(report, baseline)
    if matched is None:
        return [
            f"baseline has no section at group_bits={report.get('group_bits')} "
            f"lam={report.get('lam')} -- regenerate it with "
            "`python benchmarks/bench_speed.py --output results/BENCH_speed.json`"
        ]
    fresh = _speedups(report)
    base = _speedups(matched)
    failures = []
    for name in sorted(fresh.keys() & base.keys()):
        floor = REGRESSION_TOLERANCE * base[name]
        if fresh[name] < floor:
            failures.append(
                f"{name}: speedup {fresh[name]:.2f}x < {floor:.2f}x "
                f"(75% of baseline {base[name]:.2f}x)"
            )
    return failures


def _lookup_entry(column: dict, bench: str) -> dict | None:
    if "." in bench:
        section, name = bench.split(".", 1)
        return column.get(section, {}).get(name)
    return column.get("schemes", {}).get(bench) or column.get("kernels", {}).get(bench)


def check_acceleration(report: dict, bench: str, ratio: float) -> list[str]:
    """Same-machine acceleration gate over the report's backend columns.

    Requires a ``python`` column and at least one other; the *last*
    non-python column's fast-path wall-clock on ``bench`` must be at
    least ``ratio`` times faster than python's.  Wall-clock comparison
    is sound here -- unlike ``--check`` -- because both columns were
    measured in the same process on identical inputs.
    """
    columns = {report.get("backend", "python"): report}
    columns.update(report.get("backend_columns", {}))
    python = columns.get("python")
    accelerated = [(n, c) for n, c in columns.items() if n != "python"]
    if python is None or not accelerated:
        return [
            "--require-accel needs a python column plus an accelerated one "
            f"(run with --backends; columns present: {sorted(columns)})"
        ]
    accel_name, accel = accelerated[-1]
    base_entry = _lookup_entry(python, bench)
    accel_entry = _lookup_entry(accel, bench)
    if base_entry is None or accel_entry is None:
        return [f"--require-accel: unknown benchmark {bench!r}"]
    achieved = (
        base_entry["fast_ms"] / accel_entry["fast_ms"]
        if accel_entry["fast_ms"] > 0
        else float("inf")
    )
    if achieved < ratio:
        return [
            f"{bench}: backend {accel_name!r} is {achieved:.2f}x vs python "
            f"({accel_entry['fast_ms']}ms vs {base_entry['fast_ms']}ms), "
            f"required >= {ratio:.2f}x"
        ]
    return []


def check_pool(report: dict, bench: str, ratio: float) -> list[str]:
    """Same-machine multi-core gate over a ``batch`` pool entry.

    The entry's speedup already *is* the jobs=2 vs jobs=1 comparison
    measured in this process on identical inputs, so the gate simply
    requires it to reach ``ratio``.  Only meaningful on a machine with
    >= 2 cores -- CI's multi-core job runs it; a 1-core dev box should
    not (its honest speedup is ~1.0x).
    """
    entry = report.get("batch", {}).get(bench)
    if entry is None:
        return [f"--require-pool: unknown batch benchmark {bench!r}"]
    if entry["speedup"] < ratio:
        return [
            f"{bench}: pool speedup {entry['speedup']:.2f}x "
            f"({entry['naive_ms']}ms in-process vs {entry['fast_ms']}ms pooled), "
            f"required >= {ratio:.2f}x (cpu_count={report.get('cpu_count')})"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny parameters (32-bit group, lam=32) and fewer repeats",
    )
    parser.add_argument("--group-bits", type=int, default=None)
    parser.add_argument("--lam", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail if any speedup regressed below 75%% of this baseline JSON",
    )
    parser.add_argument(
        "--backends",
        default=None,
        metavar="NAMES",
        help="comma-separated field backends to run as same-machine columns "
        "(e.g. python,gmpy2); unavailable ones are skipped with a note",
    )
    parser.add_argument(
        "--require-accel",
        default=None,
        metavar="BENCH[:RATIO]",
        help="fail unless the last non-python --backends column beats the "
        "python column by RATIO (default 1.5) on BENCH (e.g. p2_full_decrypt:1.5)",
    )
    parser.add_argument(
        "--require-pool",
        default=None,
        metavar="BENCH[:RATIO]",
        help="fail unless the batch-section pool entry BENCH reaches a jobs=2 "
        "vs jobs=1 speedup of RATIO (default 1.5); same-machine gate, run it "
        "only on >= 2 cores (e.g. pool_evaluate_many_jobs2:1.5)",
    )
    args = parser.parse_args(argv)

    group_bits = args.group_bits or (32 if args.smoke else 64)
    lam = args.lam or (32 if args.smoke else 128)
    repeats = args.repeats or (3 if args.smoke else 5)

    if args.backends:
        from repro.math.backend import backend_available, use_backend

        columns: dict[str, dict] = {}
        for name in (n.strip() for n in args.backends.split(",")):
            if not name:
                continue
            if not backend_available(name):
                sys.stderr.write(
                    f"backend {name!r} not available on this machine; column skipped\n"
                )
                continue
            with use_backend(name):
                columns[name] = speed_report(
                    group_bits=group_bits, lam=lam, repeats=repeats
                )
        if not columns:
            sys.stderr.write("no requested backend is available\n")
            return 2
        first = next(iter(columns))
        report = columns[first]
        extra = {name: column for name, column in columns.items() if name != first}
        if extra:
            report["backend_columns"] = extra
    else:
        report = speed_report(group_bits=group_bits, lam=lam, repeats=repeats)
    if not args.smoke and (group_bits, lam) != (32, 32):
        # Full-size baselines carry a smoke-scale sub-report so CI's
        # smoke runs have scale-matched numbers to gate against.
        report["smoke"] = speed_report(group_bits=32, lam=32, repeats=3)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        sys.stdout.write(text + "\n")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_regressions(report, baseline)
        if failures:
            sys.stderr.write("speed regression gate FAILED:\n")
            for failure in failures:
                sys.stderr.write(f"  {failure}\n")
            return 1
        sys.stderr.write(
            f"speed regression gate passed ({len(_speedups(report))} entries)\n"
        )

    if args.require_accel:
        bench, _, ratio_text = args.require_accel.partition(":")
        try:
            ratio = float(ratio_text) if ratio_text else 1.5
        except ValueError:
            sys.stderr.write(f"--require-accel: bad ratio {ratio_text!r}\n")
            return 2
        failures = check_acceleration(report, bench, ratio)
        if failures:
            sys.stderr.write("acceleration gate FAILED:\n")
            for failure in failures:
                sys.stderr.write(f"  {failure}\n")
            return 1
        sys.stderr.write(f"acceleration gate passed ({bench} >= {ratio:.2f}x)\n")

    if args.require_pool:
        bench, _, ratio_text = args.require_pool.partition(":")
        try:
            ratio = float(ratio_text) if ratio_text else 1.5
        except ValueError:
            sys.stderr.write(f"--require-pool: bad ratio {ratio_text!r}\n")
            return 2
        failures = check_pool(report, bench, ratio)
        if failures:
            sys.stderr.write("pool gate FAILED:\n")
            for failure in failures:
                sys.stderr.write(f"  {failure}\n")
            return 1
        sys.stderr.write(f"pool gate passed ({bench} >= {ratio:.2f}x)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
