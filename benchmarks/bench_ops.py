"""T12 -- microbenchmarks of every primitive operation.

Regenerates the performance substrate table: pairing, exponentiations,
sampling, HPSKE operations, and the four scheme operations (Gen, Enc,
2-party Dec, 2-party Ref), at the default 64-bit benchmark size.

Also runnable as a script (``python benchmarks/bench_ops.py --smoke``):
runs one full period of DLR and OptimalDLR on tiny parameters and emits
a JSON report of per-party group-operation counts and bits-on-wire per
message label, from the engine's ``TranscriptStats``.  CI uploads this
as an artifact so communication/computation regressions show up in the
numbers, not just in wall time.
"""

import random

import pytest

from repro.core.dlr import DLR
from repro.core.hpske import HPSKE
from repro.core.optimal import OptimalDLR
from repro.protocol.channel import Channel
from repro.protocol.device import Device


@pytest.fixture(scope="module")
def dlr(bench_params):
    return DLR(bench_params)


@pytest.fixture(scope="module")
def generated(dlr):
    return dlr.generate(random.Random(1))


def installed_devices(scheme, generated, seed=2):
    rng = random.Random(seed)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generated.share1, generated.share2)
    return p1, p2, Channel()


class TestGroupOps:
    def test_pairing(self, benchmark, bench_group, rng):
        u, v = bench_group.random_g(rng), bench_group.random_g(rng)
        benchmark(lambda: bench_group.pair(u, v))

    def test_g_exponentiation(self, benchmark, bench_group, rng):
        u = bench_group.random_g(rng)
        k = bench_group.random_scalar(rng)
        benchmark(lambda: u ** k)

    def test_gt_exponentiation(self, benchmark, bench_group, rng):
        u = bench_group.random_gt(rng)
        k = bench_group.random_scalar(rng)
        benchmark(lambda: u ** k)

    def test_g_sampling_unknown_dlog(self, benchmark, bench_group, rng):
        benchmark(lambda: bench_group.random_g(rng))

    def test_gt_sampling_unknown_dlog(self, benchmark, bench_group, rng):
        benchmark(lambda: bench_group.random_gt(rng))


class TestHPSKEOps:
    def test_encrypt(self, benchmark, bench_group, bench_params, rng):
        scheme = HPSKE(bench_group, bench_params.kappa, "G")
        key = scheme.keygen(rng)
        message = bench_group.random_g(rng)
        benchmark(lambda: scheme.encrypt(key, message, rng))

    def test_decrypt(self, benchmark, bench_group, bench_params, rng):
        scheme = HPSKE(bench_group, bench_params.kappa, "G")
        key = scheme.keygen(rng)
        ciphertext = scheme.encrypt(key, bench_group.random_g(rng), rng)
        benchmark(lambda: scheme.decrypt(key, ciphertext))

    def test_pairing_transport(self, benchmark, bench_group, bench_params, rng):
        scheme = HPSKE(bench_group, bench_params.kappa, "G")
        key = scheme.keygen(rng)
        ciphertext = scheme.encrypt(key, bench_group.random_g(rng), rng)
        point = bench_group.random_g(rng)
        benchmark(lambda: ciphertext.pair_with(point))


class TestScaling:
    def test_op_scaling_table(self, benchmark, table_writer):
        """T12's 'figure': substrate op costs across group sizes."""
        import time

        from repro.groups import preset_group

        def median_time(fn, repeats=7):
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
            samples.sort()
            return samples[len(samples) // 2]

        rows = []
        timings = {}
        for n_bits in (32, 64, 96, 128):
            group = preset_group(n_bits)
            rng = random.Random(n_bits)
            u, v = group.random_g(rng), group.random_g(rng)
            k = group.random_scalar(rng)
            z = group.gt_generator()
            pairing_ms = median_time(lambda: group.pair(u, v)) * 1000
            g_exp_ms = median_time(lambda: u ** k) * 1000
            gt_exp_ms = median_time(lambda: z ** k) * 1000
            sample_ms = median_time(lambda: group.random_g(rng)) * 1000
            timings[n_bits] = pairing_ms
            rows.append(
                [
                    n_bits,
                    f"{pairing_ms:.3f}",
                    f"{g_exp_ms:.3f}",
                    f"{gt_exp_ms:.3f}",
                    f"{sample_ms:.3f}",
                ]
            )
        table_writer(
            "T12_scaling",
            ["n (bits of p)", "pairing ms", "G exp ms", "GT exp ms", "G sample ms"],
            rows,
            note="Pure-Python substrate costs vs security parameter (medians of 7).",
        )
        # Costs must grow with the group size (sanity on the scaling shape).
        assert timings[128] > timings[32]

        benchmark(lambda: preset_group(64).pair(preset_group(64).g, preset_group(64).g))


class TestSchemeOps:
    def test_key_generation(self, benchmark, dlr):
        benchmark.pedantic(
            lambda: dlr.generate(random.Random(3)), rounds=3, iterations=1
        )

    def test_encrypt(self, benchmark, dlr, generated, rng):
        message = dlr.group.random_gt(rng)
        benchmark(lambda: dlr.encrypt(generated.public_key, message, rng))

    def test_decrypt_protocol(self, benchmark, dlr, generated, rng):
        p1, p2, channel = installed_devices(dlr, generated)
        ciphertext = dlr.encrypt(generated.public_key, dlr.group.random_gt(rng), rng)
        benchmark.pedantic(
            lambda: dlr.decrypt_protocol(p1, p2, channel, ciphertext),
            rounds=3,
            iterations=1,
        )

    def test_refresh_protocol(self, benchmark, dlr, generated, rng):
        p1, p2, channel = installed_devices(dlr, generated)
        benchmark.pedantic(
            lambda: dlr.refresh_protocol(p1, p2, channel), rounds=3, iterations=1
        )

    def test_full_period_optimal_variant(self, benchmark, bench_params, generated, rng):
        optimal = OptimalDLR(bench_params)
        p1, p2, channel = installed_devices(optimal, generated)
        ciphertext = optimal.encrypt(generated.public_key, optimal.group.random_gt(rng), rng)
        benchmark.pedantic(
            lambda: optimal.run_period(p1, p2, channel, ciphertext),
            rounds=2,
            iterations=1,
        )


# ---------------------------------------------------------------------------
# Smoke mode: tiny-parameter op-count / bits-on-wire report for CI


def smoke_report(group_bits: int = 32, lam: int = 32, seed: int = 7) -> dict:
    """One full period of each scheme on tiny parameters, instrumented.

    Returns a JSON-serializable report: per-party operation counts from
    the engine transcript, bits on the wire per message label, the
    snapshot (leakage-surface) sizes, and the telemetry registry's
    metrics snapshot for the period.  Deterministic for a fixed seed,
    except the ``engine.step_wall_seconds`` histogram (timing).
    """
    from repro.core.params import DLRParams
    from repro.groups import preset_group
    from repro.telemetry import metering

    group = preset_group(group_bits)
    params = DLRParams(group=group, lam=lam)
    report = {
        "group_bits": group_bits,
        "lam": lam,
        "ell": params.ell,
        "kappa": params.kappa,
        "seed": seed,
        "schemes": {},
    }
    for name, scheme_cls in (("dlr", DLR), ("optimal", OptimalDLR)):
        scheme = scheme_cls(params)
        rng = random.Random(seed)
        generation = scheme.generate(rng)
        p1 = Device("P1", group, rng)
        p2 = Device("P2", group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        channel = Channel()
        ciphertext = scheme.encrypt(
            generation.public_key, group.random_gt(rng), rng
        )
        with metering() as registry:
            record = scheme.run_period(p1, p2, channel, ciphertext)
        stats = scheme.last_stats
        report["schemes"][name] = {
            "bits_on_wire": channel.bits_on_wire(),
            "bits_by_label": channel.bits_by_label(0),
            # as_dict() (not dataclasses.asdict) keeps the report to pure
            # counts: the counter's backend tag is metadata, not an op.
            "ops_party1": stats.ops_for_party(1).as_dict(),
            "ops_party2": stats.ops_for_party(2).as_dict(),
            "snapshot_bits": {
                f"p{party}.{phase}": len(snapshot.to_bits())
                for (party, phase), snapshot in record.snapshots.items()
            },
            "steps": len(stats.steps),
            "metrics": registry.snapshot(),
        }
    return report


def _deterministic_view(report: dict) -> dict:
    """The report minus its timing-derived fields.

    Everything in the smoke report is a pure function of the seed except
    the metrics histograms (``engine.step_wall_seconds`` holds wall-clock
    samples), so comparisons strip those.
    """
    import copy

    view = copy.deepcopy(report)
    for scheme in view.get("schemes", {}).values():
        metrics = scheme.get("metrics")
        if isinstance(metrics, dict):
            metrics.pop("histograms", None)
    return view


def check_against_baseline(report: dict, baseline: dict) -> list[str]:
    """Compare the deterministic fields of two smoke reports.

    Returns human-readable difference lines (empty means no drift).  Any
    change in operation counts, bits on the wire, or snapshot sizes is a
    regression (or an intentional change that must re-baseline).
    """
    fresh = _deterministic_view(report)
    baseline = _deterministic_view(baseline)
    problems: list[str] = []

    def walk(path, a, b):
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a:
                    problems.append(f"{path}.{key}: missing from fresh report")
                elif key not in b:
                    problems.append(f"{path}.{key}: not in baseline (re-baseline?)")
                else:
                    walk(f"{path}.{key}", a[key], b[key])
        elif a != b:
            problems.append(f"{path}: baseline {b!r} != fresh {a!r}")

    walk("report", fresh, baseline)
    return problems


def main(argv=None) -> int:
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny-parameter smoke benchmark and emit JSON",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON report here instead of stdout",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare deterministic fields against a baseline JSON report "
        "and exit non-zero on drift",
    )
    parser.add_argument("--group-bits", type=int, default=32)
    parser.add_argument("--lam", type=int, default=32)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error(
            "the pytest-benchmark suite runs via pytest; "
            "pass --smoke for the scripted report"
        )
    report = smoke_report(group_bits=args.group_bits, lam=args.lam)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        sys.stdout.write(text + "\n")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(report, baseline)
        if problems:
            sys.stderr.write("op-count drift vs baseline:\n")
            for line in problems:
                sys.stderr.write(f"  {line}\n")
            return 1
        sys.stderr.write("op counts match baseline\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
