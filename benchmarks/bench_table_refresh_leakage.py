"""T1 -- the section 1.2.1 refresh-leakage comparison table.

Paper claim: during key refresh DLR tolerates a ``(1/2 - o(1), 1)``
fraction of the secret memory of (P1, P2), versus ``o(1)`` for BKKV10
and LRW11, ``1/258`` for LLW11, ``1/672`` for DLWW11, and ``0`` for
DHLW10.

The DLR rows are *measured*: one real period of the optimal variant is
executed, the phase snapshots give the true secret-memory sizes, and the
tolerated budgets come from Theorem 4.1.  Baseline rows come from the
cost models carrying the paper's cited numbers.
"""

import random

import pytest

from repro.baselines.cost_models import COMPARISON_SCHEMES, dlr_model
from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.protocol.channel import Channel
from repro.protocol.device import Device

LAMBDAS = (64, 256, 1024)


def measure_refresh_rates(group, lam, seed=1):
    """Run one real period; return (rho1_ref, rho2_ref) measured."""
    params = DLRParams(group=group, lam=lam)
    scheme = OptimalDLR(params)
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1 = Device("P1", group, rng)
    p2 = Device("P2", group, rng)
    channel = Channel()
    scheme.install(p1, p2, generation.share1, generation.share2)
    ciphertext = scheme.encrypt(generation.public_key, group.random_gt(rng), rng)
    record = scheme.run_period(p1, p2, channel, ciphertext)
    refresh1 = record.snapshots[(1, "refresh")].size_bits()
    refresh2 = record.snapshots[(2, "refresh")].size_bits()
    return params.theorem_b1() / refresh1, params.theorem_b2() / refresh2


class TestRefreshLeakageTable:
    def test_generate_table(self, benchmark, small_group, table_writer):
        measured = {}

        def run_once():
            return measure_refresh_rates(small_group, LAMBDAS[0])

        benchmark.pedantic(run_once, rounds=2, iterations=1)

        for lam in LAMBDAS:
            measured[lam] = measure_refresh_rates(small_group, lam)

        n = small_group.params.n
        rows = []
        for lam in LAMBDAS:
            rho1, rho2 = measured[lam]
            rows.append(
                [
                    f"DLR (measured, lambda={lam})",
                    "distributed",
                    f"({rho1:.3f}, {rho2:.3f})",
                    "(1/2 - o(1), 1/2..1)",
                ]
            )
        ours_model = dlr_model()
        rows.append(
            [
                "DLR (paper statement)",
                "distributed",
                f"({ours_model.refresh_leakage_fn(n):.3f}, 0.5)",
                ours_model.refresh_leakage_symbolic,
            ]
        )
        for model in COMPARISON_SCHEMES:
            rows.append(
                [
                    model.name,
                    "single processor",
                    f"{model.refresh_leakage_fn(n):.5f}",
                    model.refresh_leakage_symbolic,
                ]
            )
        table = table_writer(
            "T1_refresh_leakage",
            ["scheme", "model", "refresh leakage fraction", "paper form"],
            rows,
            note=(
                "Tolerated leakage during key refresh as a fraction of "
                "secret memory (section 1.2.1). DLR rows measured from "
                "real period snapshots."
            ),
        )

        # --- the paper's qualitative claims ---------------------------------
        for lam in LAMBDAS:
            rho1, rho2 = measured[lam]
            # P1: approaches 1/2 from below as lambda grows.
            assert 0.1 < rho1 < 0.5
            # P2: exactly 1/2 with b2 = m2 (the proof strengthens to 1).
            assert rho2 == pytest.approx(0.5)
        rho1_values = [measured[lam][0] for lam in LAMBDAS]
        assert rho1_values == sorted(rho1_values)  # -> 1/2 - o(1)

        # DLR beats every single-processor baseline.  The claim is
        # asymptotic (1/2 - o(1) vs o(1)): we assert it at the largest
        # measured lambda, and additionally check the *trends* point the
        # right way (DLR's rate rises with lambda; the o(1) baselines
        # fall with n).
        best_dlr = max(rho1_values)
        for model in COMPARISON_SCHEMES:
            assert best_dlr > model.refresh_leakage_fn(n), model.name
        from repro.baselines.cost_models import BKKV10

        assert BKKV10.refresh_leakage_fn(4 * n) < BKKV10.refresh_leakage_fn(n)

        benchmark.extra_info["rho1_refresh_by_lambda"] = {
            str(lam): measured[lam][0] for lam in LAMBDAS
        }
        assert "DLR" in table
