"""T10 -- DLRCCA2: CCA2 security mechanisms under continual leakage
(section 4.3).

Measures the BCHK overhead (OTS keygen/sign + identity extraction per
decryption) and validates the rejection paths that give CCA2: every
mauling strategy is refused or yields garbage, while leakage flows
through the usual budgets.
"""

import random

import pytest

from repro.analysis.games import CCA2Adversary, CCA2CMLGame
from repro.cca.dlr_cca import CCACiphertext, DLRCCA2
from repro.errors import DecryptionError
from repro.ibe.boneh_boyen import IBECiphertext
from repro.leakage.functions import PrefixBits
from repro.leakage.oracle import LeakageBudget

N_ID = 4


class TestCCA2:
    def test_generate_table(self, benchmark, small_params, table_writer):
        from repro.protocol.channel import Channel
        from repro.protocol.device import Device

        cca = DLRCCA2(small_params, n_id=N_ID)
        rng = random.Random(1)
        setup = cca.setup(rng)
        p1 = Device("P1", cca.params.group, rng)
        p2 = Device("P2", cca.params.group, rng)
        channel = Channel()
        cca.install(p1, p2, setup.share1, setup.share2)
        group = cca.params.group
        message = group.random_gt(rng)

        def count(operation):
            before = group.counter.snapshot()
            result = operation()
            return group.counter.diff(before), result

        enc_cost, ciphertext = count(lambda: cca.encrypt(setup, message, rng))
        dec_cost, plaintext = count(
            lambda: cca.decrypt_protocol(setup, p1, p2, channel, ciphertext)
        )
        assert plaintext == message

        # Mauling outcomes.
        outcomes = {}
        ct = cca.encrypt(setup, message, rng)
        mauled = CCACiphertext(
            ct.verify_key,
            IBECiphertext(ct.inner.a, ct.inner.c, ct.inner.b * group.random_gt(rng)),
            ct.signature,
        )
        try:
            cca.decrypt_protocol(setup, p1, p2, channel, mauled)
            outcomes["tampered body"] = "ACCEPTED (bug!)"
        except DecryptionError:
            outcomes["tampered body"] = "rejected (signature)"

        attacker = cca.ots.keygen(rng)
        rewrapped = CCACiphertext(
            attacker.verify_key,
            ct.inner,
            cca.ots.sign(attacker, ct.inner.to_bits().to_bytes()),
        )
        rewrap_result = cca.decrypt_protocol(setup, p1, p2, channel, rewrapped)
        outcomes["re-signed under attacker vk"] = (
            "decrypts to garbage (wrong identity)" if rewrap_result != message
            else "ACCEPTED (bug!)"
        )

        def pairing_work(cost):
            return cost.pairings + cost.pairings_precomp

        def exp_terms(cost):
            return cost.exponentiations + cost.g_multiexp + cost.gt_multiexp

        rows = [
            ["encrypt: pairings / exp terms",
             f"{pairing_work(enc_cost)} / {exp_terms(enc_cost)}", ""],
            ["decrypt: pairings / exp terms",
             f"{pairing_work(dec_cost)} / {exp_terms(dec_cost)}",
             "includes extraction"],
            ["ciphertext identity", "fresh OTS vk per encryption", ""],
            ["tampered body", outcomes["tampered body"], ""],
            ["re-signed under attacker vk", outcomes["re-signed under attacker vk"], ""],
        ]
        table_writer(
            "T10_cca2",
            ["quantity / attack", "outcome", "notes"],
            rows,
            note="DLRCCA2 (BCHK over DLRIBE + Lamport OTS): costs and mauling defenses.",
        )

        assert outcomes["tampered body"].startswith("rejected")
        assert outcomes["re-signed under attacker vk"].startswith("decrypts to garbage")
        assert enc_cost.pairings + enc_cost.pairings_precomp == 0

        benchmark.pedantic(
            lambda: cca.encrypt(setup, message, rng), rounds=3, iterations=1
        )

    def test_cca2_game_with_leakage(self, benchmark, small_params, table_writer):
        """One full CCA2-CML game: leakage periods with a live decryption
        oracle, then the challenge with oracle refusal."""
        cca = DLRCCA2(small_params, n_id=N_ID)
        game = CCA2CMLGame(cca, LeakageBudget(0, 64, 64), random.Random(2), max_periods=1)

        results = {"oracle_ok": False, "challenge_refused": False}

        class Probing(CCA2Adversary):
            def period_functions(self, period):
                if period >= 1:
                    return None
                return (PrefixBits(16), PrefixBits(16), PrefixBits(16), PrefixBits(16))

            def guess_cca(self, challenge, m0, m1):
                own = cca.encrypt(self.setup, m0, self.rng)
                results["oracle_ok"] = self.oracle(own) == m0
                try:
                    self.oracle(challenge)
                except Exception:
                    results["challenge_refused"] = True
                return self.rng.getrandbits(1)

        def run_game():
            return game.run(Probing(random.Random(3)))

        outcome = benchmark.pedantic(run_game, rounds=1, iterations=1)
        assert not outcome.aborted
        assert outcome.periods == 1
        assert results["oracle_ok"]
        assert results["challenge_refused"]
        table_writer(
            "T10_cca2_game",
            ["check", "result"],
            [
                ["leakage periods completed", outcome.periods],
                ["oracle decrypts adversary ciphertexts", results["oracle_ok"]],
                ["oracle refuses challenge", results["challenge_refused"]],
            ],
            note="CCA2-against-CML game mechanics.",
        )
