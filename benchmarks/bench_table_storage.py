"""T11 -- secure storage on continually leaky devices (section 4.4).

A stored value survives many observed (leaky) periods; per-period
maintenance cost and per-retrieval cost are measured across parameter
sizes, and the per-period leakage about the stored value is bounded by
the snapshots the oracle sees.
"""

import random

import pytest

from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.storage.leaky_store import LeakyStore

PERIODS = 5


class TestLeakyStorage:
    def test_generate_table(self, benchmark, table_writer):
        rows = []
        for n_bits, lam in ((32, 32), (32, 128), (64, 128)):
            group = preset_group(n_bits)
            params = DLRParams(group=group, lam=lam)
            store = LeakyStore(params, random.Random(n_bits + lam))
            secret = group.random_gt(random.Random(1))
            handle = store.store_element("vault", secret)

            snapshot_bits = []
            for _ in range(PERIODS):
                record = store.run_leaky_period("vault")
                snapshot_bits.append(
                    sum(snap.size_bits() for snap in record.snapshots.values())
                )
            assert store.retrieve_element(handle) == secret

            comm_bits = store.channel.bits_on_wire()
            rows.append(
                [
                    n_bits,
                    lam,
                    PERIODS,
                    "yes",
                    max(snapshot_bits),
                    comm_bits // max(store.periods_completed, 1),
                ]
            )
        table_writer(
            "T11_storage",
            ["n", "lambda", "observed periods", "value survives",
             "max leakage surface (bits)", "comm bits / period"],
            rows,
            note="Secure storage on leaky devices: lifetime under continual observation.",
        )
        assert all(row[3] == "yes" for row in rows)

        # Timing of one maintenance period at the small preset.
        params = DLRParams(group=preset_group(32), lam=32)
        store = LeakyStore(params, random.Random(9))
        store.store_element("timed", params.group.random_gt(random.Random(2)))
        benchmark.pedantic(store.refresh, rounds=3, iterations=1)

    def test_retrieval_timing(self, benchmark, small_params):
        store = LeakyStore(small_params, random.Random(3))
        secret = store.group.random_gt(random.Random(4))
        handle = store.store_element("k", secret)

        def retrieve():
            assert store.retrieve_element(handle) == secret

        benchmark.pedantic(retrieve, rounds=3, iterations=1)

    def test_bytes_payload_lifecycle(self, benchmark, small_params):
        store = LeakyStore(small_params, random.Random(5))
        payload = bytes(range(64))
        handle = store.store_bytes("blob", payload)

        def cycle():
            store.refresh()
            assert store.retrieve_bytes(handle) == payload

        benchmark.pedantic(cycle, rounds=2, iterations=1)
