"""Load benchmark for the multi-session key service.

Boots a :class:`~repro.service.server.KeyService` on loopback, opens
one session per client stream, and drives all streams concurrently from
threads; each stream encrypts locally and round-trips decrypt requests
through the service.  Reports:

* **invariants** -- exact accounting after the run: decrypt successes,
  sessions created/resident, per-session period counters, and the
  number of *lost metric increments* (expected minus observed counter
  values, which must be zero).  These are machine-invariant and are
  what ``--check`` gates on.
* **latency** -- client-observed per-request wall-clock percentiles,
  plus the service's own ``service.request_seconds`` histogram summary.
* **throughput** -- requests/s over the loaded phase.  Recorded for
  trend-watching, never gated (wall-clock is machine-dependent).

Usage::

    python benchmarks/bench_service.py                   # default load
    python benchmarks/bench_service.py --smoke           # CI scale: 3 workers, 8 sessions
    python benchmarks/bench_service.py --output results/BENCH_service.json
    python benchmarks/bench_service.py --smoke --check results/BENCH_service.json

``--check`` fails if any invariant differs from the scale-matched
baseline section (a full-size baseline embeds a ``"smoke"``
sub-report, mirroring ``bench_speed.py``), or if the fresh run lost
even one metric increment.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import threading
import time


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def run_load(
    *,
    workers: int,
    sessions: int,
    requests_per_session: int,
    group_bits: int,
    lam: int,
    seed: int,
    checkpoint_dir,
) -> dict:
    from repro.service import KeyService, ServiceClient, SessionRegistry

    registry = SessionRegistry(checkpoint_dir, capacity=sessions)
    latencies: list[float] = []
    latencies_lock = threading.Lock()
    failures: list[BaseException] = []
    barrier = threading.Barrier(sessions + 1)

    # The bench oversubscribes the worker pool on purpose (streams
    # queue behind it), so the accept queue must hold every stream:
    # shedding is load *protection*, and the invariants pin it to zero
    # on this loopback load.
    with KeyService(
        registry, workers=workers, backlog=max(8, sessions), client_timeout=60.0
    ) as service:

        def stream(index: int) -> None:
            try:
                # Connect first, then rendezvous: a worker slot is only
                # *held* once requests start flowing, so streams beyond
                # the worker count queue behind the pool instead of
                # deadlocking against streams parked on the barrier.
                with ServiceClient(service.address, timeout=60.0) as client:
                    rng = random.Random((seed << 16) ^ index)
                    barrier.wait()  # all streams start the loaded phase together
                    public_key = client.open_key(
                        "bench", f"k{index}", n=group_bits, lam=lam, seed=seed + index
                    )
                    for _ in range(requests_per_session):
                        message = public_key.group.random_gt(rng)
                        started = time.perf_counter()
                        recovered, _ = client.encrypt_and_decrypt(
                            "bench", f"k{index}", message, rng
                        )
                        elapsed = time.perf_counter() - started
                        if recovered != message:
                            raise AssertionError(f"stream {index}: wrong plaintext")
                        with latencies_lock:
                            latencies.append(elapsed)
            except BaseException as exc:  # noqa: BLE001 - reported in the report
                failures.append(exc)
                barrier.abort()

        threads = [threading.Thread(target=stream, args=(i,)) for i in range(sessions)]
        for thread in threads:
            thread.start()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass  # a stream failed during setup; its exception is re-raised below
        loaded_start = time.perf_counter()
        for thread in threads:
            thread.join()
        loaded_wall = time.perf_counter() - loaded_start

        if failures:
            raise failures[0]

        metrics = service.metrics
        expected_decrypts = sessions * requests_per_session
        observed_decrypts = metrics.counter_value(
            "service.requests", op="decrypt", outcome="ok"
        )
        snapshot = registry.snapshot()
        per_session_periods = sorted(
            row["next_period"] for row in snapshot["resident"]
        )
        # Merge across the per-tenant series: a get-or-create lookup at
        # one exact label set would mint an empty instrument instead.
        service_hist = metrics.merged_histogram(
            "service.request_seconds", op="decrypt"
        )
        hist_dict = service_hist.to_dict()

        # Per-op service-side latency percentiles (upper-bound bucket
        # estimates) -- the latency baseline future PRs trend against.
        per_op_latency = {}
        for op in ("open", "decrypt"):
            hist = metrics.merged_histogram("service.request_seconds", op=op)
            if hist is None:
                continue
            per_op_latency[op] = {
                "count": hist.to_dict()["count"],
                "p50_s_bucket": hist.quantile(0.50),
                "p95_s_bucket": hist.quantile(0.95),
                "p99_s_bucket": hist.quantile(0.99),
                "mean_ms": round(
                    (hist.to_dict()["sum"] / hist.to_dict()["count"]) * 1000, 3
                ),
            }

        report = {
            "invariants": {
                "expected_decrypts": expected_decrypts,
                "observed_decrypt_ok": observed_decrypts,
                "lost_metric_increments": expected_decrypts - observed_decrypts,
                "sessions_created": metrics.counter_value("service.sessions_created"),
                "sessions_active_at_end": metrics.gauge(
                    "service.sessions_active"
                ).value,
                "per_session_periods_uniform": per_session_periods
                == [requests_per_session] * sessions,
                "histogram_count_matches": hist_dict["count"] == expected_decrypts,
                "rejections": metrics.counter_value("service.rejections"),
                "client_timeouts": metrics.counter_value("service.client_timeouts"),
                # Resilience accounting: an unloaded loopback bench must
                # never shed, deadline-expire, or replay -- any nonzero
                # value here means the admission/retry plumbing fired
                # when it had no reason to.
                "sheds": sum(
                    counter.value
                    for _labels, counter in metrics.counters_named("service.sheds")
                ),
                "deadline_exceeded": metrics.counter_value(
                    "service.deadline_exceeded"
                ),
                "replayed_decrypts": metrics.counter_value(
                    "service.replayed_decrypts"
                ),
            },
            "latency": {
                "client_p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
                "client_p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
                "client_p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
                "client_mean_ms": round(statistics.fmean(latencies) * 1000, 3),
                "service_p50_s_bucket": service_hist.quantile(0.50),
                "service_p99_s_bucket": service_hist.quantile(0.99),
                "per_op": per_op_latency,
            },
            "throughput": {
                "loaded_wall_s": round(loaded_wall, 3),
                "requests_per_s": round(expected_decrypts / loaded_wall, 2),
            },
        }
    # The context exit ran the graceful drain: every resident session
    # was checkpointed once more.  A failed flush is an accounting hole
    # (durable state unproven), gated to zero like lost increments.
    report["invariants"]["drain_checkpoint_failures"] = metrics.counter_value(
        "service.drain_checkpoint_failures"
    )
    return report


def service_report(
    *,
    workers: int,
    sessions: int,
    requests_per_session: int,
    group_bits: int = 32,
    lam: int = 32,
    seed: int = 7,
) -> dict:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-service-") as checkpoint_dir:
        report = {
            "workers": workers,
            "sessions": sessions,
            "requests_per_session": requests_per_session,
            "group_bits": group_bits,
            "lam": lam,
            "seed": seed,
        }
        report.update(
            run_load(
                workers=workers,
                sessions=sessions,
                requests_per_session=requests_per_session,
                group_bits=group_bits,
                lam=lam,
                seed=seed,
                checkpoint_dir=checkpoint_dir,
            )
        )
    return report


_SCALE_FIELDS = ("workers", "sessions", "requests_per_session", "group_bits", "lam")


def _scale_matched_baseline(report: dict, baseline: dict) -> dict | None:
    """The baseline section measured at the fresh report's load shape."""
    scale = tuple(report.get(field) for field in _SCALE_FIELDS)
    if tuple(baseline.get(field) for field in _SCALE_FIELDS) == scale:
        return baseline
    smoke = baseline.get("smoke")
    if smoke and tuple(smoke.get(field) for field in _SCALE_FIELDS) == scale:
        return smoke
    return None


def check_invariants(report: dict, baseline: dict) -> list[str]:
    """Gate on exact accounting, never on wall-clock.

    Fails if the fresh run lost metric increments, left ledgers
    unbalanced, or disagrees with the scale-matched baseline on any
    invariant field.
    """
    failures = []
    fresh = report.get("invariants", {})
    if fresh.get("lost_metric_increments") != 0:
        failures.append(
            f"lost {fresh.get('lost_metric_increments')} metric increments "
            "(counter races or dropped requests)"
        )
    if not fresh.get("per_session_periods_uniform"):
        failures.append("per-session period counters are not uniform")
    if fresh.get("drain_checkpoint_failures") != 0:
        failures.append(
            f"{fresh.get('drain_checkpoint_failures')} drain checkpoint "
            "flush(es) failed (durable state unproven)"
        )
    matched = _scale_matched_baseline(report, baseline)
    if matched is None:
        scale = {field: report.get(field) for field in _SCALE_FIELDS}
        failures.append(
            f"baseline has no section at {scale} -- regenerate it with "
            "`python benchmarks/bench_service.py --output results/BENCH_service.json`"
        )
        return failures
    base = matched.get("invariants", {})
    for name in sorted(set(fresh) & set(base)):
        if fresh[name] != base[name]:
            failures.append(f"invariant {name}: {fresh[name]!r} != baseline {base[name]!r}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI scale: 3 workers, 8 sessions, 2 requests each",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail on lost increments or invariant drift vs this baseline JSON",
    )
    args = parser.parse_args(argv)

    workers = args.workers or (3 if args.smoke else 4)
    sessions = args.sessions or (8 if args.smoke else 16)
    requests = args.requests or (2 if args.smoke else 4)

    report = service_report(
        workers=workers, sessions=sessions, requests_per_session=requests
    )
    if not args.smoke and (workers, sessions, requests) != (3, 8, 2):
        # Full-size baselines embed the CI smoke scale so smoke runs
        # have a scale-matched section to gate against.
        report["smoke"] = service_report(
            workers=3, sessions=8, requests_per_session=2
        )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        sys.stdout.write(text + "\n")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_invariants(report, baseline)
        if failures:
            sys.stderr.write("service bench gate FAILED:\n")
            for failure in failures:
                sys.stderr.write(f"  {failure}\n")
            return 1
        sys.stderr.write(
            f"service bench gate passed ({len(report['invariants'])} invariants, "
            f"{report['throughput']['requests_per_s']} req/s)\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
