"""T5 -- Definition 3.1: refresh preserves the share distribution exactly
(``SD((sk^0), (sk^t)) = 0``) and correctness holds across arbitrarily
many refreshes.

Statistical check on the toy group (chi-squared of fresh vs refreshed
share components), exact-correctness check at benchmark size.
"""

import random

import pytest

from repro.analysis.stattests import chi_squared_two_sample
from repro.core.dlr import DLR
from repro.protocol.channel import Channel
from repro.protocol.device import Device

TRIALS = 30
REFRESH_DEPTH = 3


class TestRefreshInvariance:
    def test_generate_table(self, benchmark, toy_params, table_writer):
        scheme = DLR(toy_params)

        def collect(depth, seed):
            """Share2 scalars after `depth` refreshes."""
            rng = random.Random(seed)
            generation = scheme.generate(rng)
            if depth == 0:
                return list(generation.share2.s[:4])
            p1 = Device("P1", scheme.group, rng)
            p2 = Device("P2", scheme.group, rng)
            channel = Channel()
            scheme.install(p1, p2, generation.share1, generation.share2)
            for _ in range(depth):
                scheme.refresh_protocol(p1, p2, channel)
            return list(scheme.share2_of(p2).s[:4])

        benchmark.pedantic(lambda: collect(1, 0), rounds=2, iterations=1)

        fresh = []
        rows = []
        for seed in range(TRIALS):
            fresh.extend(collect(0, seed))
        p_values = {}
        for depth in range(1, REFRESH_DEPTH + 1):
            refreshed = []
            for seed in range(TRIALS):
                refreshed.extend(collect(depth, 1000 * depth + seed))
            result = chi_squared_two_sample(
                [s % 8 for s in fresh], [s % 8 for s in refreshed]
            )
            p_values[depth] = result.p_value
            rows.append([depth, len(refreshed), f"{result.statistic:.2f}", f"{result.p_value:.4f}"])
        table_writer(
            "T5_refresh_invariance",
            ["refresh depth t", "samples", "chi2 vs fresh", "p-value"],
            rows,
            note="Definition 3.1: sk^t must be distributed exactly like sk^0.",
        )

        # No depth shows a detectable distribution shift.
        for depth, p_value in p_values.items():
            assert p_value > 0.001, f"distribution drift at depth {depth}"

    def test_correctness_across_deep_refresh_chains(self, benchmark, small_params):
        """Dec(Enc(m)) = m after t* refreshes for every t* (Def 3.1's
        functional requirement), at the 32-bit preset."""
        scheme = DLR(small_params)
        rng = random.Random(7)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        channel = Channel()
        scheme.install(p1, p2, generation.share1, generation.share2)
        message = scheme.group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)

        def one_refresh_and_decrypt():
            scheme.refresh_protocol(p1, p2, channel)
            assert scheme.decrypt_protocol(p1, p2, channel, ciphertext) == message

        benchmark.pedantic(one_refresh_and_decrypt, rounds=5, iterations=1)
