"""T13 -- leakage during key generation (Theorem 4.1 remarks, footnote 7).

The paper: b0 = Omega(log n) under standard BDDH/2Lin; b0 = n^eps under
sub-exponential BDDH; the proof guesses the b0 leakage bits, a 2^{b0}
factor.  This bench regenerates the budget table and *runs* the
guessing reduction at the standard budget, measuring the actual work.
"""

import random

import pytest

from repro.analysis.games import Adversary, CPACMLGame
from repro.analysis.generation_leakage import (
    GuessingReduction,
    assumption_budget_table,
    standard_b0,
)
from repro.core.optimal import OptimalDLR
from repro.leakage.functions import PrefixBits
from repro.leakage.oracle import LeakageBudget


class TestGenerationLeakage:
    def test_generate_table(self, benchmark, small_params, table_writer):
        rows = []
        for entry in assumption_budget_table((32, 64, 128, 256, 1024)):
            rows.append(
                [
                    entry["n"],
                    entry["standard_b0"],
                    entry["standard_work"],
                    entry["subexp_b0"],
                    f"2^{entry['subexp_work_log2']}",
                ]
            )
        table_writer(
            "T13_generation_leakage",
            ["n", "b0 (standard)", "guess work (standard)",
             "b0 (sub-exp BDDH)", "guess work (sub-exp)"],
            rows,
            note="Tolerated key-generation leakage and the footnote 7 guessing cost.",
        )

        # Run the game with b0 = log n generation leakage, then the
        # reduction that recovers the leaked string by guessing.
        scheme = OptimalDLR(small_params)
        b0 = standard_b0(small_params.n)

        class GenLeaker(Adversary):
            observed = None

            def generation_leakage(self):
                return PrefixBits(b0)

            def observe_leakage(self, period, results):
                if period == -1:
                    type(self).observed = results[(0, "gen")]

        def run_and_guess():
            GenLeaker.observed = None
            game = CPACMLGame(scheme, LeakageBudget(b0, 0, 0), random.Random(1))
            game.run(GenLeaker(random.Random(2)))
            target = GenLeaker.observed
            outcome = GuessingReduction(b0).run(lambda cand: cand == target)
            return outcome

        outcome = benchmark.pedantic(run_and_guess, rounds=2, iterations=1)
        assert outcome.succeeded
        assert outcome.work_bound == 2 ** b0
        # Standard-assumption work stays polynomial-feasible.
        assert outcome.work_bound <= 2 * small_params.n
        benchmark.extra_info["b0"] = b0
        benchmark.extra_info["guess_work"] = outcome.work_bound
