"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 -- **coin reuse** (section 5.2 remark): one time period run as the
      combined flow (one sk_comm, ``f_i`` reused as ``d_i``) vs. the
      construction-as-printed (separate Dec and Ref with fresh keys and
      coins).  Coin reuse trades ``ell`` GT-coin samplings + ``ell``
      GT-encryptions for ``(ell+1)(kappa+1)`` pairings; we measure both
      so the trade-off is on record, and verify communication drops.

A2 -- **basic vs. optimal variant**: identical functionality, very
      different leakage accounting -- the optimal variant shrinks P1's
      normal secret memory from ``(ell+1)|G| + m1`` to ``m1``.

A3 -- **fixed-base precomputation**: encryption with windowed tables vs.
      the plain ladder.
"""

import random

import pytest

from repro.core.dlr import DLR
from repro.core.optimal import OptimalDLR
from repro.groups.precompute import PrecomputedEncryptor
from repro.protocol.channel import Channel
from repro.protocol.device import Device


def fresh_setting(scheme, seed=1):
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1 = Device("P1", scheme.group, rng)
    p2 = Device("P2", scheme.group, rng)
    scheme.install(p1, p2, generation.share1, generation.share2)
    return generation, p1, p2, Channel(), rng


class TestCoinReuseAblation:
    def test_combined_flow(self, benchmark, small_params, table_writer):
        scheme = DLR(small_params)
        generation, p1, p2, channel, rng = fresh_setting(scheme)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)

        group = scheme.group

        def combined():
            return scheme.run_period(p1, p2, channel, ciphertext)

        before = group.counter.snapshot()
        benchmark.pedantic(combined, rounds=2, iterations=1)
        combined_ops = group.counter.diff(before)
        combined_comm = channel.bits_on_wire()

        # Separate flow on fresh devices.
        scheme2 = DLR(small_params)
        generation2, q1, q2, channel2, rng2 = fresh_setting(scheme2, seed=2)
        ciphertext2 = scheme2.encrypt(
            generation2.public_key, scheme2.group.random_gt(rng2), rng2
        )
        before = group.counter.snapshot()
        for _ in range(2):
            scheme2.decrypt_protocol(q1, q2, channel2, ciphertext2)
            scheme2.refresh_protocol(q1, q2, channel2)
        separate_ops = group.counter.diff(before)
        separate_comm = channel2.bits_on_wire()

        combined_pairings = combined_ops.pairings + combined_ops.pairings_precomp
        separate_pairings = separate_ops.pairings + separate_ops.pairings_precomp
        rows = [
            ["combined (coin reuse, 2 periods)", combined_pairings,
             combined_ops.gt_samples, combined_comm],
            ["separate Dec+Ref (2 periods)", separate_pairings,
             separate_ops.gt_samples, separate_comm],
        ]
        table_writer(
            "A1_coin_reuse",
            ["flow", "pairings", "GT coin samples", "comm bits"],
            rows,
            note="Section 5.2 remark: reusing f_i as d_i trades GT sampling/encryption for pairings.",
        )
        # The reuse eliminates almost all GT coin sampling...
        assert combined_ops.gt_samples < separate_ops.gt_samples
        # ...at the price of more pairings (f_i pair_with A per coordinate;
        # with the fixed-argument schedule they land in pairings_precomp).
        assert combined_pairings > separate_pairings


class TestVariantAblation:
    def test_basic_vs_optimal_leakage_surface(self, benchmark, small_params, table_writer):
        basic = DLR(small_params)
        optimal = OptimalDLR(small_params)
        rows = []
        surfaces = {}
        for name, scheme in (("basic", basic), ("optimal", optimal)):
            generation, p1, p2, channel, rng = fresh_setting(scheme, seed=3)
            ciphertext = scheme.encrypt(
                generation.public_key, scheme.group.random_gt(rng), rng
            )
            record = scheme.run_period(p1, p2, channel, ciphertext)
            sizes = {key: snap.size_bits() for key, snap in record.snapshots.items()}
            surfaces[name] = sizes
            b1 = small_params.theorem_b1()
            rows.append(
                [
                    name,
                    sizes[(1, "normal")],
                    sizes[(1, "refresh")],
                    f"{b1 / sizes[(1, 'normal')]:.3f}",
                    f"{b1 / sizes[(1, 'refresh')]:.3f}",
                ]
            )
        table_writer(
            "A2_variant_surface",
            ["variant", "P1 normal bits", "P1 refresh bits", "rho1", "rho1_ref"],
            rows,
            note="Optimal variant (P1 keeps only sk_comm) vs basic: the leakage-rate payoff.",
        )
        m1 = small_params.sk_comm_bits()
        assert surfaces["optimal"][(1, "normal")] == m1
        assert surfaces["basic"][(1, "normal")] > 2 * m1
        # Same P2 surface either way.
        assert surfaces["optimal"][(2, "normal")] == surfaces["basic"][(2, "normal")]

        generation, p1, p2, channel, rng = fresh_setting(optimal, seed=4)
        ciphertext = optimal.encrypt(generation.public_key, optimal.group.random_gt(rng), rng)
        benchmark.pedantic(
            lambda: optimal.decrypt_protocol(p1, p2, channel, ciphertext),
            rounds=2,
            iterations=1,
        )


class TestPrecomputeAblation:
    def test_plain_encryption(self, benchmark, bench_params):
        scheme = DLR(bench_params)
        rng = random.Random(5)
        generation = scheme.generate(rng)
        message = scheme.group.random_gt(rng)
        benchmark(lambda: scheme.encrypt(generation.public_key, message, rng))

    def test_precomputed_encryption(self, benchmark, bench_params, table_writer):
        scheme = DLR(bench_params)
        rng = random.Random(6)
        generation = scheme.generate(rng)
        message = scheme.group.random_gt(rng)
        encryptor = PrecomputedEncryptor(generation.public_key, window=5)

        result = benchmark(lambda: encryptor.encrypt(message, rng))
        # Correctness of the fast path.
        assert scheme.reference_decrypt(
            generation.share1, generation.share2, encryptor.encrypt(message, rng)
        ) == message
        table_writer(
            "A3_precompute",
            ["quantity", "value"],
            [
                ["window", 5],
                ["table elements (g + z)",
                 encryptor._g_table.table_elements() + encryptor._z_table.table_elements()],
                ["mults per exponentiation", encryptor._g_table.digits],
                ["ladder equivalent (~1.5 log p)", int(1.5 * bench_params.log_p)],
            ],
            note="Fixed-base windowed exponentiation for the two fixed bases of Enc.",
        )
