"""T2 -- the footnote 3 efficiency comparison.

Paper claim for DLR: "our scheme encrypts group elements rather than
single bits, encryption requires a single pairing operation (which can
be provided as part of the public key) and two exponentiations (over a
prime order group), and the size of our ciphertext is two group
elements" -- versus omega(n) exponentiations / omega(n) elements
(BKKV10), constant-but-composite-order (LLW11), omega(1) (LRW11).

The DLR row is *measured* with the instrumented group counters.
"""

import random

import pytest

from repro.baselines.cost_models import BKKV10, LLW11, LRW11, dlr_model
from repro.core.dlr import DLR


class TestEfficiencyTable:
    def test_generate_table(self, benchmark, bench_params, table_writer, rng):
        scheme = DLR(bench_params)
        generation = scheme.generate(random.Random(1))
        group = scheme.group
        message = group.random_gt(rng)

        # Measure encryption cost with the op counters.
        before = group.counter.snapshot()
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        delta = group.counter.diff(before)

        benchmark(lambda: scheme.encrypt(generation.public_key, message, rng))

        n = bench_params.n
        rows = [
            [
                "DLR (measured)",
                str(delta.exponentiations),
                str(delta.pairings),
                str(ciphertext.size_group_elements()),
                "prime order",
                "group elements",
            ],
            [
                "DLR (paper)",
                "2",
                "0 (e(g1,g2) in pk)",
                "2",
                "prime order",
                "group elements",
            ],
        ]
        for model in (BKKV10, LLW11, LRW11):
            rows.append(
                [
                    model.name,
                    model.exponentiations_symbolic,
                    "-",
                    model.ciphertext_elements_symbolic,
                    model.group_type,
                    model.encrypts,
                ]
            )
        table_writer(
            "T2_efficiency",
            ["scheme", "exps/enc", "pairings/enc", "ciphertext (elements)", "group", "encrypts"],
            rows,
            note="Footnote 3 efficiency comparison; DLR row measured via op counters.",
        )

        # --- claims ------------------------------------------------------
        assert delta.exponentiations == 2       # g^t and z^t
        assert delta.pairings == 0              # e(g1,g2) provided in pk
        assert ciphertext.size_group_elements() == 2
        # DLR's ciphertext is asymptotically smaller than BKKV10's.
        assert 2 < BKKV10.ciphertext_elements_fn(n)
        # ... and smaller than LRW11's omega(1) for reasonable n.
        assert 2 < LRW11.ciphertext_elements_fn(n)

        benchmark.extra_info["exponentiations_per_encryption"] = delta.exponentiations
        benchmark.extra_info["ciphertext_group_elements"] = 2

    def test_p2_total_work_is_cheap(self, benchmark, bench_params, table_writer):
        """The communication/computation budget of the whole period, for
        the cost columns of T2's companion: bytes on the wire."""
        import random as _random

        from repro.protocol.channel import Channel
        from repro.protocol.device import Device

        scheme = DLR(bench_params)
        generation = scheme.generate(_random.Random(2))
        rng = _random.Random(3)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        channel = Channel()
        scheme.install(p1, p2, generation.share1, generation.share2)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)

        def one_period():
            return scheme.run_period(p1, p2, channel, ciphertext)

        benchmark.pedantic(one_period, rounds=2, iterations=1)
        total_bits = channel.bits_on_wire()
        benchmark.extra_info["communication_bits_per_period"] = total_bits
        # Communication is O(ell * kappa) group elements -- polynomial and
        # concretely small (sanity bound: a few hundred KB at 64-bit).
        assert total_bits < 4_000_000
