"""T4 -- the "P2 is a simple device" claim (section 1.1, item 4).

"All P2 does is: (a) sample random coins s_1..s_ell in Z_p, and (b)
given a list of group elements, compute the product of these elements to
the power of s_1..s_ell."

We measure, per full time period (Dec + Ref), each device's operation
counts and single-number cost, across group sizes, and assert P1
dominates: P2 performs *zero* pairings and zero group-element sampling,
and its total cost is a small fraction of P1's.
"""

import random

import pytest

from repro.core.dlr import DLR, combine_decrypt
from repro.core.params import DLRParams
from repro.groups import preset_group
from repro.protocol.channel import Channel
from repro.protocol.device import Device

GROUP_SIZES = (32, 64, 96)


def run_period_with_counts(n_bits, seed=1):
    group = preset_group(n_bits)
    params = DLRParams(group=group, lam=64)
    scheme = DLR(params)
    rng = random.Random(seed)
    generation = scheme.generate(rng)
    p1, p2 = Device("P1", group, rng), Device("P2", group, rng)
    channel = Channel()
    scheme.install(p1, p2, generation.share1, generation.share2)
    ciphertext = scheme.encrypt(generation.public_key, group.random_gt(rng), rng)
    scheme.run_period(p1, p2, channel, ciphertext)
    return p1.ops, p2.ops


class TestDeviceAsymmetry:
    def test_generate_table(self, benchmark, table_writer):
        benchmark.pedantic(lambda: run_period_with_counts(32), rounds=2, iterations=1)

        rows = []
        measured = {}
        for n_bits in GROUP_SIZES:
            ops1, ops2 = run_period_with_counts(n_bits)
            measured[n_bits] = (ops1, ops2)
            rows.append(
                [
                    n_bits, "P1", ops1.pairings + ops1.pairings_precomp,
                    ops1.g_exp + ops1.g_multiexp, ops1.gt_exp + ops1.gt_multiexp,
                    ops1.g_samples + ops1.gt_samples, ops1.total_cost(),
                ]
            )
            rows.append(
                [
                    n_bits, "P2", ops2.pairings + ops2.pairings_precomp,
                    ops2.g_exp + ops2.g_multiexp, ops2.gt_exp + ops2.gt_multiexp,
                    ops2.g_samples + ops2.gt_samples, ops2.total_cost(),
                ]
            )
        table_writer(
            "T4_device_asymmetry",
            ["n", "device", "pairings", "G exp terms", "GT exp terms", "samples", "cost"],
            rows,
            note="Per-period work split between the main processor P1 and the auxiliary device P2.",
        )

        for n_bits, (ops1, ops2) in measured.items():
            # P2's whole job: products of powers. No pairings, no sampling.
            assert ops2.pairings == 0 and ops2.pairings_precomp == 0
            assert ops2.g_samples == 0 and ops2.gt_samples == 0
            # P1 performs all pairings (the d_i derivation), whether via
            # full Miller loops or precomputed schedules.
            assert ops1.pairings + ops1.pairings_precomp > 0
            # And P1's aggregate cost dominates.
            assert ops1.total_cost() > 1.5 * ops2.total_cost()

    def test_p2_decryption_step_timing(self, benchmark, bench_params):
        """Wall-clock of P2's decryption step alone."""
        scheme = DLR(bench_params)
        rng = random.Random(2)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        channel = Channel()
        scheme.install(p1, p2, generation.share1, generation.share2)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)

        # Drive P1's step once to produce P2's inputs.
        share1 = scheme.share1_of(p1)
        sk_comm = scheme.hpske_gt.keygen(p1.rng)
        p1.secret.store("dec.sk_comm", sk_comm)
        d_list = tuple(
            scheme.hpske_gt.encrypt(sk_comm, scheme.group.pair(ciphertext.a, a_i), p1.rng)
            for a_i in share1.a
        )
        d_phi = scheme.hpske_gt.encrypt(
            sk_comm, scheme.group.pair(ciphertext.a, share1.phi), p1.rng
        )
        d_b = scheme.hpske_gt.encrypt(sk_comm, ciphertext.b, p1.rng)
        p1.secret.erase("dec.sk_comm")

        def p2_step():
            with p2.computing():
                return combine_decrypt(scheme.share2_of(p2), d_list, d_phi, d_b)

        benchmark(p2_step)

    def test_p1_decryption_step_timing(self, benchmark, bench_params):
        """Wall-clock of P1's step (pairings + encryptions): the companion
        number to compare with P2's step above."""
        scheme = DLR(bench_params)
        rng = random.Random(3)
        generation = scheme.generate(rng)
        p1 = Device("P1", scheme.group, rng)
        p2 = Device("P2", scheme.group, rng)
        scheme.install(p1, p2, generation.share1, generation.share2)
        ciphertext = scheme.encrypt(generation.public_key, scheme.group.random_gt(rng), rng)
        share1 = scheme.share1_of(p1)

        def p1_step():
            sk_comm = scheme.hpske_gt.keygen(p1.rng)
            d_list = [
                scheme.hpske_gt.encrypt(
                    sk_comm, scheme.group.pair(ciphertext.a, a_i), p1.rng
                )
                for a_i in share1.a
            ]
            return sk_comm, d_list

        benchmark.pedantic(p1_step, rounds=3, iterations=1)
