"""Shared fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index (T1-T12).  Conventions:

* every test drives the operation under study through the ``benchmark``
  fixture (so ``pytest benchmarks/ --benchmark-only`` runs them all and
  reports timings);
* experiment tables are written to ``results/<experiment>.txt`` and the
  headline numbers are attached as ``benchmark.extra_info``;
* the paper's *qualitative* claims (who wins, by roughly what factor)
  are asserted, so a regression in the reproduction fails the bench.
"""

from __future__ import annotations

import pathlib
import random

import pytest

from repro.core.params import DLRParams
from repro.groups import preset_group

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def table_writer(results_dir):
    """Write an aligned text table to results/<name>.txt."""

    def write(name: str, headers: list[str], rows: list[list[object]], note: str = "") -> str:
        columns = [headers] + [[str(cell) for cell in row] for row in rows]
        widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
        lines = []
        if note:
            lines.append(f"# {note}")
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in columns[1:]:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        text = "\n".join(lines) + "\n"
        (results_dir / f"{name}.txt").write_text(text)
        return text

    return write


@pytest.fixture(scope="session")
def toy_group():
    return preset_group(16)


@pytest.fixture(scope="session")
def small_group():
    return preset_group(32)


@pytest.fixture(scope="session")
def bench_group():
    """The default benchmark size: 64-bit order (pure-Python realistic)."""
    return preset_group(64)


@pytest.fixture(scope="session")
def bench_params(bench_group):
    return DLRParams(group=bench_group, lam=128)


@pytest.fixture(scope="session")
def toy_params(toy_group):
    return DLRParams(group=toy_group, lam=16)


@pytest.fixture(scope="session")
def small_params(small_group):
    return DLRParams(group=small_group, lam=32)


@pytest.fixture()
def rng():
    return random.Random(0xBEEF)
