"""T8 -- the section 6 distinguisher machinery, quantified.

* fake transcripts are always consistent under P2's honest recomputation;
* the full-rank requirement on the (kappa+1) x ell coefficient matrix
  essentially never triggers re-sampling (failure probability ~ (kappa+1)/p);
* the constrained-uniform sk2 marginal matches the real game's uniform
  distribution (claim (i) of the proof sketch, checked by chi-squared).
"""

import random

import pytest

from repro.analysis.fake_game import FakeGameSampler
from repro.analysis.stattests import chi_squared_two_sample
from repro.core.params import DLRParams

SAMPLES = 40


class TestFakeGame:
    def test_generate_table(self, benchmark, toy_params, table_writer):
        sampler = FakeGameSampler(toy_params, random.Random(1))

        benchmark.pedantic(sampler.sample_period, rounds=3, iterations=1)

        consistent = 0
        resamples = 0
        fake_coords = []
        for _ in range(SAMPLES):
            period = sampler.sample_period()
            consistent += sampler.is_consistent(period)
            resamples += period.resamples
            fake_coords.extend(v % 8 for v in period.sk2[:6])

        rng = random.Random(2)
        real_coords = [rng.randrange(toy_params.group.p) % 8 for _ in range(len(fake_coords))]
        marginal = chi_squared_two_sample(fake_coords, real_coords)

        rows = [
            ["fake periods sampled", SAMPLES],
            ["consistent under honest P2 recomputation", f"{consistent}/{SAMPLES}"],
            ["full-rank re-samples (total)", resamples],
            ["constraint system shape", f"{toy_params.kappa + 1} x {toy_params.ell}"],
            ["sk2 marginal vs uniform: chi2", f"{marginal.statistic:.2f}"],
            ["sk2 marginal vs uniform: p-value", f"{marginal.p_value:.4f}"],
        ]
        table_writer(
            "T8_fake_game",
            ["quantity", "value"],
            rows,
            note="Section 6 distinguisher: constrained-uniform sk2 sampling with the full-rank requirement.",
        )

        assert consistent == SAMPLES
        assert resamples <= 1
        assert not marginal.rejects_at(0.001)

        benchmark.extra_info["consistency_rate"] = consistent / SAMPLES
        benchmark.extra_info["sk2_marginal_p_value"] = marginal.p_value

    def test_rank_requirement_frequency_small_field(self, benchmark, table_writer):
        """Why re-sampling essentially never triggers: the coefficient
        matrix is *wide* ((kappa+1) x ell with ell >> kappa), so rank
        deficiency is exponentially unlikely even over tiny fields --
        contrasted against square matrices, whose singularity rate ~ 1/p
        would have required re-sampling to be a real loop."""
        from repro.math import linalg

        kappa_plus_1, ell = 5, 21
        rng = random.Random(3)

        def singular_fraction(rows_n, cols_n, p, trials=200):
            bad = 0
            for _ in range(trials):
                matrix = linalg.random_matrix(rows_n, cols_n, p, rng)
                if linalg.rank(matrix, p) < rows_n:
                    bad += 1
            return bad / trials

        benchmark.pedantic(
            lambda: singular_fraction(kappa_plus_1, ell, 5, trials=50),
            rounds=2,
            iterations=1,
        )

        rows = []
        wide, square = {}, {}
        for p in (2, 3, 5, 17, 257):
            wide[p] = singular_fraction(kappa_plus_1, ell, p)
            square[p] = singular_fraction(kappa_plus_1, kappa_plus_1, p)
            rows.append([p, f"{wide[p]:.4f}", f"{square[p]:.4f}", f"{kappa_plus_1 / p:.4f}"])
        table_writer(
            "T8_rank_failure_rate",
            ["field size p", "wide (kappa+1 x ell) singular", "square singular", "~(kappa+1)/p"],
            rows,
            note="Full-rank-requirement failure rates: the paper's wide system makes re-sampling negligible.",
        )
        # Wide systems: essentially never singular, even over F_2.
        for p, fraction in wide.items():
            assert fraction <= 0.02, f"p={p}"
        # Square systems: visibly singular over tiny fields, decaying in p.
        assert square[2] > 0.5
        assert square[257] < 0.05
        assert square[2] > square[17] > square[257]
