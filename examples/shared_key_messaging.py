#!/usr/bin/env python3
"""The symmetric-encryption scenario (paper section 1.1, bullet 1).

"Two processors would like to set up a symmetric encryption scheme in
presence of leakage attacks. ... If instead the processors agree in
person on a common secret key but each stores only a share of it, they
could still decrypt and refresh the secret key via an interactive
protocol, but the leakage will be restricted to be computed on each
share separately."

Run:  python examples/shared_key_messaging.py
"""

import random

from repro import DLRParams, preset_group
from repro.applications.messaging import SharedKeySession

MESSAGES = [
    b"alpha: rendezvous confirmed",
    b"bravo: payload is 7.2 GB, use the fast link",
    b"charlie: rotate credentials after this one",
]


def main() -> None:
    rng = random.Random()
    params = DLRParams(group=preset_group(64), lam=128)

    # The "in person" agreement: Gen runs once, each processor keeps a share.
    session = SharedKeySession(params, rng)
    print("session established: processor A holds sk1, processor B holds sk2")
    print(f"  (an adversary leaking on A sees {session.processor_a.secret.size_bits()}"
          f" bits of share, on B {session.processor_b.secret.size_bits()} -- never both)\n")

    for i, payload in enumerate(MESSAGES):
        encapsulation, masked = session.encrypt_bytes(payload)
        recovered = session.decrypt_bytes(encapsulation, masked)
        status = "ok" if recovered == payload else "FAILED"
        print(f"message {i}: {len(payload)} bytes, wire-masked, decrypted {status}")
        # End of the time period: cooperative re-key.
        session.rekey_period()
        print(f"  period {i} closed -- shares refreshed, same public key")

    # Old traffic stays decryptable after any number of refreshes.
    encapsulation, masked = session.encrypt_bytes(b"archived record")
    for _ in range(5):
        session.rekey_period()
    print(f"\narchived record after 5 more re-keys: "
          f"{session.decrypt_bytes(encapsulation, masked).decode()}")
    print(f"total cooperative decryptions: {session.messages_exchanged}")


if __name__ == "__main__":
    main()
