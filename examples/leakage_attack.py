#!/usr/bin/env python3
"""Side by side: the same leakage that destroys a single-memory scheme
is harmless against the distributed one.

Left column -- textbook ElGamal, one device, no refresh: an adversary
leaking a 25% window of the key per period recovers the whole key in 4
periods and decrypts everything.

Right column -- DLR (optimal variant): the adversary gets the *same*
per-period rate on P1 plus P2's ENTIRE share every period, for as many
periods as it likes; the key refresh makes the windows incompatible and
the challenge remains opaque.  We run the actual Definition 3.2 game.

Run:  python examples/leakage_attack.py
"""

import random

from repro import DLRParams, preset_group
from repro.analysis.adversaries import BruteForceAdversary, KeyRecoveryAdversary
from repro.analysis.attacks import elgamal_continual_break
from repro.analysis.games import CPACMLGame
from repro.core.optimal import OptimalDLR
from repro.leakage.oracle import LeakageBudget

TRIALS = 10


def main() -> None:
    group = preset_group(32)
    params = DLRParams(group=group, lam=32)
    scheme = OptimalDLR(params)
    rate = 0.25

    print("=== victim: ElGamal, one memory, no refresh ===")
    wins = 0
    for seed in range(TRIALS):
        outcome = elgamal_continual_break(
            group, rate=rate, periods=4, rng=random.Random(seed)
        )
        wins += outcome.won
    print(f"adversary leaks {rate:.0%} of the key per period, 4 periods:")
    print(f"  full key recovery in {wins}/{TRIALS} trials\n")

    print("=== target: DLR under the Definition 3.2 game ===")
    b1 = params.theorem_b1()
    budget = LeakageBudget(0, b1, params.theorem_b2())
    print(f"per-period budget: {b1} bits on P1 "
          f"({b1 / params.sk_comm_bits():.0%} of sk_comm), "
          f"{params.theorem_b2()} bits on P2 (the WHOLE share)")
    dlr_wins = 0
    for seed in range(TRIALS):
        adversary = BruteForceAdversary(
            random.Random(1000 + seed), scheme, b1, max_work_bits=8
        )
        result = CPACMLGame(scheme, budget, random.Random(seed)).run(adversary)
        dlr_wins += result.won
    print(f"  best-known attack wins {dlr_wins}/{TRIALS} "
          f"(0.5 = pure chance; refresh defeats accumulation)\n")

    print("=== sanity: the leakage surface is honest ===")
    over_budget = LeakageBudget(0, 2 * params.sk_comm_bits(), 2 * params.sk2_bits())
    adversary = KeyRecoveryAdversary(random.Random(42), scheme)
    result = CPACMLGame(scheme, over_budget, random.Random(43)).run(adversary)
    print(f"with budgets doubled past the theorem bound, key recovery "
          f"succeeds: {result.won}")
    print("security comes from the *bound*, not from hiding anything "
          "from the leakage functions.")


if __name__ == "__main__":
    main()
