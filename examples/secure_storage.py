#!/usr/bin/env python3
"""Secure storage on leaky hardware (paper sections 1.1 and 4.4).

A secret payload is stored across two devices that an adversary probes
*every single period* with length-shrinking leakage functions, up to the
Theorem 4.1 budget.  The devices refresh their shares each period, so
the adversary's haul never accumulates against any one sharing -- after
many observed periods the payload is still retrievable, and the
adversary's collected bits do not determine it.

Run:  python examples/secure_storage.py
"""

import random

from repro import DLRParams, preset_group
from repro.leakage.functions import LeakageInput, PrefixBits
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.storage.leaky_store import LeakyStore

OBSERVED_PERIODS = 6


def main() -> None:
    rng = random.Random()
    group = preset_group(64)
    params = DLRParams(group=group, lam=128)
    print(f"parameters: n = {params.n}, lambda = {params.lam}, "
          f"b1 = {params.theorem_b1()} bits/period on P1, "
          f"b2 = {params.theorem_b2()} bits/period on P2")

    store = LeakyStore(params, rng)
    payload = b"launch-code: correct horse battery staple"
    handle = store.store_bytes("codes", payload)
    print(f"stored {len(payload)} bytes across two leaky devices\n")

    budget = LeakageBudget(0, params.theorem_b1(), params.theorem_b2())
    oracle = LeakageOracle(budget)
    adversary_haul = []

    # Refresh-phase leakage counts against *both* the outgoing and the
    # incoming share (Definition 3.2 carries it into the next period), so
    # the sustainable steady-state is b_i/2 bits per refresh, forever.
    per_period_1 = budget.b1 // 2
    per_period_2 = budget.b2 // 2

    for period in range(OBSERVED_PERIODS):
        record = store.run_leaky_period("codes")
        # The adversary leaks from each device's refresh snapshot (the
        # richest phase: both old and new secrets are in memory).
        leak1 = oracle.leak_refresh(
            1, PrefixBits(per_period_1),
            LeakageInput(record.snapshots[(1, "refresh")], record.messages),
        )
        leak2 = oracle.leak_refresh(
            2, PrefixBits(per_period_2),
            LeakageInput(record.snapshots[(2, "refresh")], record.messages),
        )
        oracle.end_period()
        adversary_haul.append((leak1, leak2))
        print(f"period {period}: adversary took {len(leak1)} bits from P1, "
              f"{len(leak2)} bits from P2 (budgets enforced)")

    total = sum(len(a) + len(b) for a, b in adversary_haul)
    secret_now = store.device1.secret.size_bits() + store.device2.secret.size_bits()
    print(f"\nadversary total haul: {total} bits -- "
          f"{total / secret_now:.1f}x the size of the *current* secret state")
    print("yet every leaked window refers to an already-refreshed sharing...")

    recovered = store.retrieve_bytes(handle)
    print(f"\nretrieval after {OBSERVED_PERIODS} leaky periods: "
          f"{'OK -- ' + recovered.decode() if recovered == payload else 'FAILED'}")


if __name__ == "__main__":
    main()
