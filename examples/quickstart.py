#!/usr/bin/env python3
"""Quickstart: distributed public-key encryption that survives leakage.

Creates a DLR instance, splits the secret key across two devices,
encrypts, runs the 2-party decryption protocol, refreshes the shares,
and shows that (a) decryption still works and (b) a leakage function
applied to either device alone sees only its share.

Run:  python examples/quickstart.py
"""

import random

from repro import DLR, DLRParams, preset_group
from repro.protocol import Channel, Device

SECURITY_BITS = 64
LEAKAGE_PARAMETER = 128


def main() -> None:
    rng = random.Random()

    # --- setup: G(1^n) and the scheme parameters ----------------------
    group = preset_group(SECURITY_BITS)
    params = DLRParams(group=group, lam=LEAKAGE_PARAMETER)
    scheme = DLR(params)
    print(f"bilinear group: |p| = {group.p.bit_length()} bits, "
          f"kappa = {params.kappa}, ell = {params.ell}")

    # --- key generation: pk public, shares split across devices -------
    generation = scheme.generate(rng)
    device1 = Device("P1", group, rng)   # the main processor
    device2 = Device("P2", group, rng)   # the auxiliary device
    channel = Channel()                  # public, transcript recorded
    scheme.install(device1, device2, generation.share1, generation.share2)
    print(f"shares installed: P1 holds {device1.secret.size_bits()} secret bits, "
          f"P2 holds {device2.secret.size_bits()}")

    # --- encrypt / 2-party decrypt -------------------------------------
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(generation.public_key, message, rng)
    print(f"ciphertext: {ciphertext.size_group_elements()} group elements")

    decrypted = scheme.decrypt_protocol(device1, device2, channel, ciphertext)
    print(f"2-party decryption correct: {decrypted == message}")

    # --- refresh: same pk, brand-new shares ---------------------------
    old_share2 = scheme.share2_of(device2)
    scheme.refresh_protocol(device1, device2, channel)
    print(f"shares refreshed (P2 share changed: "
          f"{scheme.share2_of(device2) != old_share2})")
    decrypted = scheme.decrypt_protocol(device1, device2, channel, ciphertext)
    print(f"decryption after refresh still correct: {decrypted == message}")

    # --- what the adversary sees ----------------------------------------
    print(f"public transcript so far: {channel.bits_on_wire()} bits "
          f"({len(channel.transcript())} messages) -- all of it is public")
    print("a leakage function on P2 sees only (s_1..s_ell); on P1 only "
          "(a_1..a_ell, Phi) -- never the master key g2^alpha in one place")


if __name__ == "__main__":
    main()
