#!/usr/bin/env python3
"""DLRIBE + DLRCCA2 lifecycle: an identity-based deployment on two
leakage-prone servers.

A company shares its IBE master key between two HSMs.  Employees get
identity keys (also shared), everything refreshes periodically, and
externally-facing traffic uses the CCA2-secure wrapping.  Leakage
happens on both the master and identity key material throughout
(Remark 4.1).

Run:  python examples/ibe_lifecycle.py
"""

import random

from repro import DLRParams, preset_group
from repro.cca.dlr_cca import DLRCCA2
from repro.errors import DecryptionError
from repro.ibe.dlr_ibe import DLRIBE
from repro.protocol import Channel, Device

N_ID = 8


def main() -> None:
    rng = random.Random()
    group = preset_group(64)
    params = DLRParams(group=group, lam=64)

    # --- master key setup, shared across two HSMs -----------------------
    dibe = DLRIBE(params, n_id=N_ID)
    setup = dibe.setup(rng)
    hsm1 = Device("P1", group, rng)
    hsm2 = Device("P2", group, rng)
    channel = Channel()
    dibe.install(hsm1, hsm2, setup.share1, setup.share2)
    print("master key shared between HSM-1 and HSM-2 (never reconstructed)")

    # --- employees enroll: 2-party extraction ---------------------------
    for employee in ("alice@corp", "bob@corp"):
        dibe.extract_protocol(setup.public_params, hsm1, hsm2, channel, employee)
        print(f"issued (shared) identity key for {employee}")

    # --- mail flows ------------------------------------------------------
    memo = group.random_gt(rng)  # a wrapped session key, say
    ciphertext = dibe.encrypt_to(setup.public_params, "alice@corp", memo, rng)
    print(f"encrypted to alice@corp: {ciphertext.size_group_elements()} group elements")
    decrypted = dibe.decrypt_protocol_id(hsm1, hsm2, channel, "alice@corp", ciphertext)
    print(f"alice decrypts via the two HSMs: {decrypted == memo}")
    wrong = dibe.decrypt_protocol_id(hsm1, hsm2, channel, "bob@corp", ciphertext)
    print(f"bob's shares do NOT open alice's mail: {wrong != memo}")

    # --- the nightly maintenance window -----------------------------------
    dibe.refresh_protocol(hsm1, hsm2, channel)                     # master
    dibe.refresh_identity_protocol(setup.public_params, hsm1, hsm2, channel, "alice@corp")
    dibe.refresh_identity_protocol(setup.public_params, hsm1, hsm2, channel, "bob@corp")
    print("nightly refresh: master + identity shares re-randomized")
    decrypted = dibe.decrypt_protocol_id(hsm1, hsm2, channel, "alice@corp", ciphertext)
    print(f"yesterday's mail still opens: {decrypted == memo}")

    # --- CCA2 for the outside world ----------------------------------------
    print("\n--- external traffic via DLRCCA2 (BCHK transform) ---")
    cca = DLRCCA2(params, n_id=N_ID)
    cca_setup = cca.setup(rng)
    gw1 = Device("P1", group, rng)
    gw2 = Device("P2", group, rng)
    gw_channel = Channel()
    cca.install(gw1, gw2, cca_setup.share1, cca_setup.share2)

    payload = group.random_gt(rng)
    wire = cca.encrypt(cca_setup, payload, rng)
    print(f"wire format: fresh OTS key {wire.identity()[:16]}..., signed IBE ciphertext")
    result = cca.decrypt_protocol(cca_setup, gw1, gw2, gw_channel, wire)
    print(f"gateway decrypts: {result == payload}")

    # An active attacker flips a bit in transit.
    from repro.cca.dlr_cca import CCACiphertext
    from repro.ibe.boneh_boyen import IBECiphertext

    tampered = CCACiphertext(
        wire.verify_key,
        IBECiphertext(wire.inner.a, wire.inner.c, wire.inner.b * group.random_gt(rng)),
        wire.signature,
    )
    try:
        cca.decrypt_protocol(cca_setup, gw1, gw2, gw_channel, tampered)
        print("tampered packet accepted (BUG)")
    except DecryptionError as exc:
        print(f"tampered packet rejected: {exc}")


if __name__ == "__main__":
    main()
