#!/usr/bin/env python3
"""The auxiliary-device scenario (paper section 1.1, bullet 2).

"Do not store the secret memory on the device in its entirety but
instead add an auxiliary simpler computing gadget (say, a smart card)
... This will be particularly attractive if one can make the computation
on the auxiliary device much simpler than the computation on the main
processor."

This example runs full decrypt+refresh periods and prints each device's
measured workload, demonstrating the asymmetry: P2 (the smart card)
never computes a pairing and never samples group elements -- it only
raises received elements to powers of its scalars.

Run:  python examples/auxiliary_device.py
"""

import random
import time

from repro import DLRParams, preset_group
from repro.core.dlr import DLR
from repro.protocol import Channel, Device

PERIODS = 3


def main() -> None:
    rng = random.Random(2024)
    group = preset_group(64)
    params = DLRParams(group=group, lam=128)
    scheme = DLR(params)

    generation = scheme.generate(rng)
    main_processor = Device("P1", group, rng)
    smart_card = Device("P2", group, rng)
    channel = Channel()
    scheme.install(main_processor, smart_card, generation.share1, generation.share2)

    print(f"running {PERIODS} periods (decrypt + refresh each) ...")
    start = time.perf_counter()
    for _ in range(PERIODS):
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(generation.public_key, message, rng)
        record = scheme.run_period(main_processor, smart_card, channel, ciphertext)
        assert record.plaintext == message
    elapsed = time.perf_counter() - start
    print(f"done in {elapsed:.2f}s\n")

    print(f"{'':24}{'P1 (main processor)':>22}{'P2 (smart card)':>18}")
    for label, attr in [
        ("pairings", "pairings"),
        ("G exponentiations", "g_exp"),
        ("GT exponentiations", "gt_exp"),
        ("G multiplications", "g_mul"),
        ("GT multiplications", "gt_mul"),
        ("element samplings", None),
    ]:
        if attr is None:
            v1 = main_processor.ops.g_samples + main_processor.ops.gt_samples
            v2 = smart_card.ops.g_samples + smart_card.ops.gt_samples
        else:
            v1 = getattr(main_processor.ops, attr)
            v2 = getattr(smart_card.ops, attr)
        print(f"{label:24}{v1:>22}{v2:>18}")
    cost1 = main_processor.ops.total_cost()
    cost2 = smart_card.ops.total_cost()
    print(f"{'aggregate cost':24}{cost1:>22}{cost2:>18}")
    print(f"\nP2's job is {cost1 / max(cost2, 1):.1f}x cheaper: it only samples "
          "scalars and computes products of received elements raised to them --")
    print("exactly the 'simplicity of one of the two devices' property "
          "(paper section 1.1, item 4).")


if __name__ == "__main__":
    main()
