#!/usr/bin/env python3
"""Choosing lambda: the leakage-rate / cost dial.

Theorem 4.1 gives ``rho1 = lambda / (lambda + 3n)``: tolerance on the
main processor approaches 100% of its secret memory as lambda grows,
but kappa, ell, share sizes and per-period communication all grow
linearly with lambda.  This example sweeps target rates, shows what each
costs, and demonstrates the `DLRParams.for_target_rate` advisor plus the
fixed-base precomputation fast path for encryption-heavy deployments.

Run:  python examples/parameter_tuning.py
"""

import random
import time

from repro import DLRParams, preset_group
from repro.core.dlr import DLR
from repro.groups.precompute import PrecomputedEncryptor
from repro.protocol import Channel, Device

TARGETS = (0.50, 0.75, 0.90, 0.95)


def main() -> None:
    group = preset_group(64)
    n = group.params.n
    rng = random.Random(7)

    print(f"security parameter n = {n}; rho1 = lambda/(lambda + 3n)\n")
    header = (f"{'target rho1':>11} {'lambda':>7} {'kappa':>6} {'ell':>5} "
              f"{'P1 secret':>10} {'P2 secret':>10} {'comm/period':>12}")
    print(header)
    print("-" * len(header))

    for target in TARGETS:
        params = DLRParams.for_target_rate(group, target)
        scheme = DLR(params)
        generation = scheme.generate(rng)
        p1, p2 = Device("P1", group, rng), Device("P2", group, rng)
        channel = Channel()
        scheme.install(p1, p2, generation.share1, generation.share2)
        ciphertext = scheme.encrypt(generation.public_key, group.random_gt(rng), rng)
        scheme.run_period(p1, p2, channel, ciphertext)
        print(f"{params.achieved_rho1():>11.3f} {params.lam:>7} "
              f"{params.kappa:>6} {params.ell:>5} "
              f"{params.sk_comm_bits():>9}b {params.sk2_bits():>9}b "
              f"{channel.bits_on_wire():>11}b")

    # --- the encryption fast path ---------------------------------------
    params = DLRParams.for_target_rate(group, 0.75)
    scheme = DLR(params)
    generation = scheme.generate(rng)
    message = group.random_gt(rng)

    start = time.perf_counter()
    for _ in range(20):
        scheme.encrypt(generation.public_key, message, rng)
    plain = (time.perf_counter() - start) / 20

    encryptor = PrecomputedEncryptor(generation.public_key, window=5)
    start = time.perf_counter()
    for _ in range(20):
        encryptor.encrypt(message, rng)
    fast = (time.perf_counter() - start) / 20

    print(f"\nencryption: plain {plain * 1000:.2f} ms -> "
          f"precomputed tables {fast * 1000:.2f} ms "
          f"({plain / fast:.1f}x, {encryptor._g_table.table_elements() + encryptor._z_table.table_elements()} cached elements)")
    ciphertext = encryptor.encrypt(message, rng)
    ok = scheme.reference_decrypt(generation.share1, generation.share2, ciphertext) == message
    print(f"fast-path ciphertexts decrypt correctly: {ok}")


if __name__ == "__main__":
    main()
