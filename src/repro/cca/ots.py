"""Lamport one-time signatures from SHA-256.

The BCHK transform needs a *strongly unforgeable* one-time signature.
Lamport signatures over a collision-resistant hash provide it: the
secret key is ``2 x 256`` random 32-byte preimages, the verification key
their hashes; signing reveals one preimage per digest bit.

Strong unforgeability for our purposes: changing either the message or
the signature requires producing a preimage the signer never revealed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ParameterError

DIGEST_BITS = 256
_PREIMAGE_BYTES = 32


def _digest_bits(message: bytes) -> list[int]:
    digest = hashlib.sha256(message).digest()
    return [(byte >> shift) & 1 for byte in digest for shift in range(7, -1, -1)]


@dataclass(frozen=True)
class OTSKeyPair:
    """A Lamport key pair.  ``secret[b][i]`` signs bit value ``b`` at
    position ``i``; ``verify_key`` holds the corresponding hashes."""

    secret: tuple[tuple[bytes, ...], tuple[bytes, ...]]
    verify_key: tuple[tuple[bytes, ...], tuple[bytes, ...]]

    def vk_fingerprint(self) -> str:
        """A collision-resistant fingerprint of the verification key,
        used as the IBE identity in the BCHK transform."""
        h = hashlib.sha256()
        for side in self.verify_key:
            for digest in side:
                h.update(digest)
        return h.hexdigest()


@dataclass(frozen=True)
class Signature:
    """One revealed preimage per message-digest bit."""

    preimages: tuple[bytes, ...]


class LamportOTS:
    """Keygen / sign / verify for Lamport one-time signatures."""

    def keygen(self, rng: random.Random) -> OTSKeyPair:
        secret0 = tuple(rng.randbytes(_PREIMAGE_BYTES) for _ in range(DIGEST_BITS))
        secret1 = tuple(rng.randbytes(_PREIMAGE_BYTES) for _ in range(DIGEST_BITS))
        verify0 = tuple(hashlib.sha256(x).digest() for x in secret0)
        verify1 = tuple(hashlib.sha256(x).digest() for x in secret1)
        return OTSKeyPair(secret=(secret0, secret1), verify_key=(verify0, verify1))

    def sign(self, keypair: OTSKeyPair, message: bytes) -> Signature:
        bits = _digest_bits(message)
        return Signature(tuple(keypair.secret[bit][i] for i, bit in enumerate(bits)))

    def verify(
        self,
        verify_key: tuple[tuple[bytes, ...], tuple[bytes, ...]],
        message: bytes,
        signature: Signature,
    ) -> bool:
        if len(signature.preimages) != DIGEST_BITS:
            return False
        bits = _digest_bits(message)
        return all(
            hashlib.sha256(preimage).digest() == verify_key[bit][i]
            for i, (bit, preimage) in enumerate(zip(bits, signature.preimages))
        )


def fingerprint_of_verify_key(
    verify_key: tuple[tuple[bytes, ...], tuple[bytes, ...]]
) -> str:
    """Fingerprint from a bare verification key (receiver side)."""
    if len(verify_key) != 2 or any(len(side) != DIGEST_BITS for side in verify_key):
        raise ParameterError("malformed verification key")
    h = hashlib.sha256()
    for side in verify_key:
        for digest in side:
            h.update(digest)
    return h.hexdigest()
