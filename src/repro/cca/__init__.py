"""CCA2-secure distributed PKE (paper section 4.3).

DLRCCA2 is obtained from DLRIBE by the Boneh-Canetti-Halevi-Katz
transform [6]: each encryption uses a fresh one-time signature key pair,
encrypts to the identity "verification key", and signs the ciphertext;
decryption rejects anything whose signature fails, which is what defeats
the CCA2 adversary's mauling attempts.

* :mod:`repro.cca.ots` -- Lamport one-time signatures (SHA-256).
* :mod:`repro.cca.dlr_cca` -- the transform + distributed decryption.
"""

from repro.cca.dlr_cca import CCACiphertext, DLRCCA2
from repro.cca.ots import LamportOTS, OTSKeyPair

__all__ = ["CCACiphertext", "DLRCCA2", "LamportOTS", "OTSKeyPair"]
