"""DLRCCA2: CCA2-secure distributed PKE via the BCHK transform
(paper section 4.3, building on Boneh-Canetti-Halevi-Katz [6]).

Encryption:

1. sample a one-time signature key pair ``(vk, sigk)``;
2. encrypt the message under DLRIBE to the identity ``fp(vk)``;
3. sign the IBE ciphertext with ``sigk``.

Distributed decryption first verifies the signature (public operation --
either device or anyone can do it) and rejects on failure; then the
devices run the 2-party *extraction* protocol for the one-shot identity
``fp(vk)`` and the 2-party identity decryption, and finally erase the
one-shot identity shares.  Because every honest ciphertext carries a
fresh ``vk``, a CCA2 adversary's decryption queries only ever surrender
keys for identities different from the challenge identity -- the
standard BCHK argument, which the paper shows survives continual
leakage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cca.ots import LamportOTS, OTSKeyPair, Signature, fingerprint_of_verify_key
from repro.core.params import DLRParams
from repro.errors import DecryptionError
from repro.groups.bilinear import GTElement
from repro.ibe.boneh_boyen import IBECiphertext
from repro.ibe.dlr_ibe import DIBESetupResult, DLRIBE, _id_slot
from repro.protocol.device import Device
from repro.protocol.transport import Transport


@dataclass(frozen=True)
class CCACiphertext:
    """``(vk, c_ibe, sigma)``."""

    verify_key: tuple[tuple[bytes, ...], tuple[bytes, ...]]
    inner: IBECiphertext
    signature: Signature

    def identity(self) -> str:
        return fingerprint_of_verify_key(self.verify_key)


class DLRCCA2:
    """CCA2-secure DPKE = BCHK(DLRIBE, Lamport OTS)."""

    def __init__(self, params: DLRParams, n_id: int = 16) -> None:
        self.params = params
        self.ibe = DLRIBE(params, n_id)
        self.ots = LamportOTS()

    # -- setup / install delegate to the underlying DIBE ---------------

    def setup(self, rng: random.Random) -> DIBESetupResult:
        return self.ibe.setup(rng)

    def install(self, device1: Device, device2: Device, share1, share2) -> None:
        self.ibe.install(device1, device2, share1, share2)

    # -- encryption --------------------------------------------------------

    def encrypt(
        self,
        setup: DIBESetupResult,
        message: GTElement,
        rng: random.Random,
    ) -> CCACiphertext:
        keypair = self.ots.keygen(rng)
        identity = keypair.vk_fingerprint()
        inner = self.ibe.encrypt_to(setup.public_params, identity, message, rng)
        signature = self.ots.sign(keypair, inner.to_bits().to_bytes())
        return CCACiphertext(keypair.verify_key, inner, signature)

    # -- distributed decryption -----------------------------------------------

    def decrypt_protocol(
        self,
        setup: DIBESetupResult,
        device1: Device,
        device2: Device,
        channel: Transport,
        ciphertext: CCACiphertext,
    ) -> GTElement:
        """Verify, extract the one-shot identity key, decrypt, clean up.

        Raises :class:`~repro.errors.DecryptionError` on a bad signature
        or malformed verification key (the CCA2 rejection path).
        """
        try:
            identity = ciphertext.identity()
        except Exception as exc:  # malformed vk
            raise DecryptionError("malformed verification key") from exc
        if not self.ots.verify(
            ciphertext.verify_key,
            ciphertext.inner.to_bits().to_bytes(),
            ciphertext.signature,
        ):
            raise DecryptionError("one-time signature verification failed")

        try:
            self.ibe.extract_protocol(
                setup.public_params, device1, device2, channel, identity
            )
            return self.ibe.decrypt_protocol_id(
                device1, device2, channel, identity, ciphertext.inner
            )
        finally:
            # The identity is single-use: its shares must not outlive
            # this protocol on either the success or any error path.
            device1.secret.erase_if_present(_id_slot(1, identity))
            device2.secret.erase_if_present(_id_slot(2, identity))
