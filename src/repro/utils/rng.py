"""Randomness plumbing.

Every randomized algorithm in the library takes an optional
``rng: random.Random`` argument.  Passing an explicit seeded generator
makes key generation, protocols and security games fully reproducible --
which the tests and the fake-game machinery (paper section 6, where the
distinguisher must *keep track of* the randomness it uses) rely on.
When no generator is supplied, a module-level cryptographically seeded
generator is used.
"""

from __future__ import annotations

import random
import secrets

_default = random.Random(secrets.randbits(128))


def default_rng() -> random.Random:
    """Return the library-wide default generator."""
    return _default


def seed_default_rng(seed: int) -> None:
    """Re-seed the library-wide default generator (tests only)."""
    _default.seed(seed)


def fork_rng(rng: random.Random | None, label: str = "") -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used by the protocol runner to give each device its own stream so the
    *secret randomness of P1* and *of P2* (separate leakage inputs in the
    model) are separable, while one master seed still reproduces the run.
    """
    parent = rng or _default
    return random.Random(f"{parent.getrandbits(128)}/{label}")
