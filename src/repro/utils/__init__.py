"""Small shared utilities: bit strings, RNG plumbing, canonical encoding."""

from repro.utils.bits import BitString
from repro.utils.rng import default_rng, fork_rng

__all__ = ["BitString", "default_rng", "fork_rng"]
