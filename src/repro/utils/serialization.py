"""Canonical bit encoding of the values the schemes hold in memory.

The leakage model applies functions to *the contents of secret memory*,
so that content needs a well-defined bit representation.  ``encode``
dispatches on type and produces a :class:`~repro.utils.bits.BitString`:

* ``Z_p`` scalars -> fixed width ``ceil(log2 p)`` bits;
* curve points   -> x coordinate + sign bit of y (point compression),
  with a separate flag bit for the identity;
* ``F_{q^2}`` / GT elements -> both coordinates, fixed width;
* tuples / lists -> concatenation of the encodings of the members.

Fixed widths mean the size of a device's secret memory is a *function of
the scheme parameters only*, not of the particular values -- matching how
the paper counts ``m_1 = |sk_comm|`` etc.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ParameterError
from repro.utils.bits import BitString, concat_all


def int_width(modulus: int) -> int:
    """Bit width used for values in ``[0, modulus)``."""
    return max((modulus - 1).bit_length(), 1)


def encode_mod(value: int, modulus: int) -> BitString:
    """Encode a ``Z_modulus`` value at fixed width."""
    return BitString(value % modulus, int_width(modulus))


def encode_any(value: object) -> BitString:
    """Encode a value by structural dispatch.

    Supports ints (via their own bit length +1 -- only for ad-hoc use),
    objects exposing ``to_bits() -> BitString``, and nested sequences.
    Scheme code prefers the explicit fixed-width encoders.
    """
    if isinstance(value, BitString):
        return value
    to_bits = getattr(value, "to_bits", None)
    if callable(to_bits):
        return to_bits()
    if isinstance(value, bool):
        return BitString(int(value), 1)
    if isinstance(value, int):
        if value < 0:
            raise ParameterError("cannot canonically encode negative ints")
        return BitString(value, value.bit_length() + 1)
    if isinstance(value, (tuple, list)):
        return concat_all(encode_any(item) for item in value)
    if isinstance(value, bytes):
        return BitString.from_bytes(value)
    raise ParameterError(f"no canonical encoding for {type(value).__name__}")


def encode_sequence(values: Iterable[object]) -> BitString:
    """Encode an iterable of encodable values."""
    return concat_all(encode_any(v) for v in values)
