"""Canonical bit encoding of the values the schemes hold in memory.

The leakage model applies functions to *the contents of secret memory*,
so that content needs a well-defined bit representation.  ``encode``
dispatches on type and produces a :class:`~repro.utils.bits.BitString`:

* ``Z_p`` scalars -> fixed width ``ceil(log2 p)`` bits;
* curve points   -> x coordinate + sign bit of y (point compression),
  with a separate flag bit for the identity;
* ``F_{q^2}`` / GT elements -> both coordinates, fixed width;
* tuples / lists -> concatenation of the encodings of the members.

Fixed widths mean the size of a device's secret memory is a *function of
the scheme parameters only*, not of the particular values -- matching how
the paper counts ``m_1 = |sk_comm|`` etc.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ParameterError, WireFormatError
from repro.utils.bits import BitString, concat_all


def int_width(modulus: int) -> int:
    """Bit width used for values in ``[0, modulus)``."""
    return max((modulus - 1).bit_length(), 1)


def encode_mod(value: int, modulus: int) -> BitString:
    """Encode a ``Z_modulus`` value at fixed width."""
    return BitString(value % modulus, int_width(modulus))


def encode_any(value: object) -> BitString:
    """Encode a value by structural dispatch.

    Supports ints (via their own bit length +1 -- only for ad-hoc use),
    objects exposing ``to_bits() -> BitString``, and nested sequences.
    Scheme code prefers the explicit fixed-width encoders.
    """
    if isinstance(value, BitString):
        return value
    to_bits = getattr(value, "to_bits", None)
    if callable(to_bits):
        return to_bits()
    if isinstance(value, bool):
        return BitString(int(value), 1)
    if isinstance(value, int):
        if value < 0:
            raise ParameterError("cannot canonically encode negative ints")
        return BitString(value, value.bit_length() + 1)
    if isinstance(value, (tuple, list)):
        return concat_all(encode_any(item) for item in value)
    if isinstance(value, bytes):
        return BitString.from_bytes(value)
    raise ParameterError(f"no canonical encoding for {type(value).__name__}")


def encode_sequence(values: Iterable[object]) -> BitString:
    """Encode an iterable of encodable values."""
    return concat_all(encode_any(v) for v in values)


# ---------------------------------------------------------------------------
# Wire codec: self-describing byte serialization of protocol payloads
# ---------------------------------------------------------------------------
#
# ``encode_any`` above is the *leakage-accounting* encoding: fixed-width,
# positional, and not self-describing -- it cannot be decoded without
# knowing the value's type in advance.  Transports need the opposite: a
# byte string that a remote party can parse back into the payload with no
# shared object references.  ``WireCodec`` provides that as a tagged
# format (one tag byte per value, varint lengths).  Group elements reuse
# their canonical compressed bit encodings, so the wire image of an
# element is exactly its transcript encoding plus the tag overhead.

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_STR = 0x04
_TAG_BYTES = 0x05
_TAG_BITS = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_G1 = 0x09
_TAG_GT = 0x0A
_TAG_HPSKE = 0x0B
_TAG_SCALAR = 0x0C

_TAG_NAMES = {
    _TAG_NONE: "None",
    _TAG_FALSE: "False",
    _TAG_TRUE: "True",
    _TAG_INT: "int",
    _TAG_STR: "str",
    _TAG_BYTES: "bytes",
    _TAG_BITS: "BitString",
    _TAG_TUPLE: "tuple",
    _TAG_LIST: "list",
    _TAG_G1: "G1Element",
    _TAG_GT: "GTElement",
    _TAG_HPSKE: "HPSKECiphertext",
    _TAG_SCALAR: "scalar",
}


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise WireFormatError("varints are non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireFormatError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 512:
            raise WireFormatError("varint too long")


def _write_bits(out: bytearray, bits: BitString) -> None:
    _write_varint(out, len(bits))
    if len(bits):  # to_bytes pads the empty string to one byte
        out.extend(bits.to_bytes())


def _read_bits(data: bytes, offset: int) -> tuple[BitString, int]:
    nbits, offset = _read_varint(data, offset)
    nbytes = (nbits + 7) // 8
    if offset + nbytes > len(data):
        raise WireFormatError("truncated bit string")
    value = int.from_bytes(data[offset : offset + nbytes], "big")
    if nbits and value >= (1 << nbits):
        raise WireFormatError("bit string has stray padding bits")
    return BitString(value, nbits), offset + nbytes


def sniff_group(payload: object):
    """Find the bilinear group a payload's elements live in, if any.

    Walks the payload structure looking for the first group element (or
    HPSKE ciphertext) and returns its ``group``; returns ``None`` for
    group-free payloads.  Used by in-memory transports whose codec was
    never explicitly bound to a group.
    """
    from repro.core.hpske import HPSKECiphertext
    from repro.groups.bilinear import G1Element, GTElement

    stack = [payload]
    while stack:
        value = stack.pop()
        if isinstance(value, (G1Element, GTElement)):
            return value.group
        if isinstance(value, HPSKECiphertext):
            stack.extend(value.elements())
        elif isinstance(value, (tuple, list)):
            stack.extend(value)
    return None


class WireCodec:
    """Byte-level serialization of every payload type the protocols send.

    ``encode`` maps a payload to a self-describing byte string;
    ``decode`` parses it back into fresh objects (no references shared
    with the sender).  Decoding group elements needs a ``group``;
    ``check_subgroup`` controls whether decoded elements are verified to
    lie in the order-``p`` subgroup (always done for bytes that crossed
    a real wire, skippable for trusted in-process loopback).
    """

    def __init__(self, group=None, check_subgroup: bool = True) -> None:
        self.group = group
        self.check_subgroup = check_subgroup

    # -- encoding -----------------------------------------------------------

    def encode(self, payload: object) -> bytes:
        out = bytearray()
        self._encode_into(out, payload)
        return bytes(out)

    def _encode_into(self, out: bytearray, value: object) -> None:
        from repro.core.hpske import HPSKECiphertext
        from repro.groups.bilinear import G1Element, GTElement
        from repro.protocol.device import _ScalarInMemory

        if value is None:
            out.append(_TAG_NONE)
        elif isinstance(value, bool):
            out.append(_TAG_TRUE if value else _TAG_FALSE)
        elif isinstance(value, int):
            out.append(_TAG_INT)
            _write_varint(out, value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_TAG_STR)
            _write_varint(out, len(raw))
            out.extend(raw)
        elif isinstance(value, bytes):
            out.append(_TAG_BYTES)
            _write_varint(out, len(value))
            out.extend(value)
        elif isinstance(value, BitString):
            out.append(_TAG_BITS)
            _write_bits(out, value)
        elif isinstance(value, G1Element):
            out.append(_TAG_G1)
            _write_bits(out, value.to_bits())
        elif isinstance(value, GTElement):
            out.append(_TAG_GT)
            _write_bits(out, value.to_bits())
        elif isinstance(value, HPSKECiphertext):
            out.append(_TAG_HPSKE)
            _write_varint(out, value.kappa)
            for element in value.elements():
                self._encode_into(out, element)
        elif isinstance(value, _ScalarInMemory):
            out.append(_TAG_SCALAR)
            _write_varint(out, value.value)
            _write_varint(out, value.p)
        elif isinstance(value, (tuple, list)):
            out.append(_TAG_TUPLE if isinstance(value, tuple) else _TAG_LIST)
            _write_varint(out, len(value))
            for item in value:
                self._encode_into(out, item)
        else:
            raise WireFormatError(
                f"no wire encoding for {type(value).__name__}"
            )

    # -- decoding -----------------------------------------------------------

    def decode(self, data: bytes) -> object:
        value, offset = self._decode_from(data, 0)
        if offset != len(data):
            raise WireFormatError(
                f"{len(data) - offset} trailing bytes after payload"
            )
        return value

    def _require_group(self, tag: int):
        if self.group is None:
            raise WireFormatError(
                f"decoding a {_TAG_NAMES[tag]} needs a group-bound codec"
            )
        return self.group

    def _decode_from(self, data: bytes, offset: int) -> tuple[object, int]:
        from repro.core.hpske import HPSKECiphertext
        from repro.groups.encoding import decode_g1, decode_gt
        from repro.protocol.device import _ScalarInMemory

        if offset >= len(data):
            raise WireFormatError("truncated payload: missing tag")
        tag = data[offset]
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_INT:
            return _read_varint(data, offset)
        if tag == _TAG_STR:
            length, offset = _read_varint(data, offset)
            if offset + length > len(data):
                raise WireFormatError("truncated string")
            return data[offset : offset + length].decode("utf-8"), offset + length
        if tag == _TAG_BYTES:
            length, offset = _read_varint(data, offset)
            if offset + length > len(data):
                raise WireFormatError("truncated bytes")
            return data[offset : offset + length], offset + length
        if tag == _TAG_BITS:
            return _read_bits(data, offset)
        if tag == _TAG_G1:
            bits, offset = _read_bits(data, offset)
            group = self._require_group(tag)
            return decode_g1(group, bits, check_subgroup=self.check_subgroup), offset
        if tag == _TAG_GT:
            bits, offset = _read_bits(data, offset)
            group = self._require_group(tag)
            return decode_gt(group, bits, check_subgroup=self.check_subgroup), offset
        if tag == _TAG_HPSKE:
            kappa, offset = _read_varint(data, offset)
            elements = []
            for _ in range(kappa + 1):
                element, offset = self._decode_from(data, offset)
                elements.append(element)
            return HPSKECiphertext(tuple(elements[:-1]), elements[-1]), offset
        if tag == _TAG_SCALAR:
            value, offset = _read_varint(data, offset)
            p, offset = _read_varint(data, offset)
            if p < 2:
                raise WireFormatError("scalar modulus must be >= 2")
            return _ScalarInMemory(value, p), offset
        if tag in (_TAG_TUPLE, _TAG_LIST):
            length, offset = _read_varint(data, offset)
            items = []
            for _ in range(length):
                item, offset = self._decode_from(data, offset)
                items.append(item)
            return (tuple(items) if tag == _TAG_TUPLE else items), offset
        raise WireFormatError(f"unknown wire tag 0x{tag:02x}")
