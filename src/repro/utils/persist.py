"""Persistence: JSON-compatible dictionaries for every piece of key
material and ciphertext, with full reconstruction.

A downstream deployment needs to move public keys and ciphertexts
between machines and park device shares in (suitably protected) storage
between sessions.  Formats are versioned dictionaries of hex strings;
``dumps``/``loads`` wrap them as JSON text.

Reconstruction is self-contained: the serialized public key embeds the
pairing parameters ``(n, p, q, h)`` and the scheme parameters ``lam``,
so ``load_public_key`` rebuilds the exact bilinear group (the generator
is derived deterministically from the parameters, see
:mod:`repro.groups.bilinear`).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro.core.keys import Ciphertext, PublicKey, Share1, Share2
from repro.core.params import DLRParams
from repro.errors import ParameterError
from repro.groups.bilinear import BilinearGroup, G1Element, GTElement
from repro.groups.encoding import decode_g1, decode_gt
from repro.groups.pairing_params import PairingParams
from repro.utils.bits import BitString

FORMAT_VERSION = 1


def _element_hex(element: G1Element | GTElement) -> str:
    bits = element.to_bits()
    return f"{len(bits)}:{bits.to_bytes().hex()}"


def _bits_from_hex(text: str) -> BitString:
    length_text, _, payload = text.partition(":")
    length = int(length_text)
    value = int.from_bytes(bytes.fromhex(payload), "big")
    return BitString(value, length)  # raises if the payload overflows


def _g1_from_hex(group: BilinearGroup, text: str) -> G1Element:
    return decode_g1(group, _bits_from_hex(text))


def _gt_from_hex(group: BilinearGroup, text: str) -> GTElement:
    return decode_gt(group, _bits_from_hex(text))


# ---------------------------------------------------------------------------
# parameters + public key
# ---------------------------------------------------------------------------


def dump_params(params: DLRParams) -> dict[str, Any]:
    pairing = params.group.params
    return {
        "version": FORMAT_VERSION,
        "n": pairing.n,
        "p": hex(pairing.p),
        "q": hex(pairing.q),
        "h": pairing.h,
        "lam": params.lam,
    }


def load_params(data: dict[str, Any]) -> DLRParams:
    if data.get("version") != FORMAT_VERSION:
        raise ParameterError("unsupported serialization version")
    pairing = PairingParams(
        n=data["n"], p=int(data["p"], 16), q=int(data["q"], 16), h=data["h"]
    )
    return DLRParams(group=BilinearGroup(pairing), lam=data["lam"])


def dump_public_key(public_key: PublicKey) -> dict[str, Any]:
    return {
        "params": dump_params(public_key.params),
        "z": _element_hex(public_key.z),
    }


def load_public_key(data: dict[str, Any]) -> PublicKey:
    params = load_params(data["params"])
    return PublicKey(params, _gt_from_hex(params.group, data["z"]))


# ---------------------------------------------------------------------------
# shares
# ---------------------------------------------------------------------------


def dump_share1(share: Share1) -> dict[str, Any]:
    return {
        "a": [_element_hex(e) for e in share.a],
        "phi": _element_hex(share.phi),
    }


def load_share1(group: BilinearGroup, data: dict[str, Any]) -> Share1:
    return Share1(
        a=tuple(_g1_from_hex(group, text) for text in data["a"]),
        phi=_g1_from_hex(group, data["phi"]),
    )


def dump_share2(share: Share2) -> dict[str, Any]:
    return {"s": [hex(v) for v in share.s], "p": hex(share.p)}


def load_share2(data: dict[str, Any]) -> Share2:
    return Share2(
        s=tuple(int(v, 16) for v in data["s"]), p=int(data["p"], 16)
    )


# ---------------------------------------------------------------------------
# ciphertexts
# ---------------------------------------------------------------------------


def dump_ciphertext(ciphertext: Ciphertext) -> dict[str, Any]:
    return {"a": _element_hex(ciphertext.a), "b": _element_hex(ciphertext.b)}


def load_ciphertext(group: BilinearGroup, data: dict[str, Any]) -> Ciphertext:
    return Ciphertext(
        a=_g1_from_hex(group, data["a"]), b=_gt_from_hex(group, data["b"])
    )


def dump_ciphertext_batch(ciphertexts: list[Ciphertext]) -> dict[str, Any]:
    return {"items": [dump_ciphertext(ciphertext) for ciphertext in ciphertexts]}


def load_ciphertext_batch(
    group: BilinearGroup, data: dict[str, Any]
) -> list[Ciphertext]:
    return [load_ciphertext(group, item) for item in data["items"]]


# ---------------------------------------------------------------------------
# durable writes
# ---------------------------------------------------------------------------


def atomic_write_text(path: str | pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` so a crash leaves either the old file
    or the new one -- never a torn half-write.

    The text lands in a sibling temp file which is fsynced and then
    ``os.replace``d over the destination (atomic on POSIX).  This is
    what makes supervisor checkpoints safe against ``kill -9``: a
    resumed session always reads a complete, internally consistent
    checkpoint.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# JSON text wrappers
# ---------------------------------------------------------------------------

_DUMPERS = {
    "public_key": dump_public_key,
    "share1": dump_share1,
    "share2": dump_share2,
    "ciphertext": dump_ciphertext,
    "ciphertext_batch": dump_ciphertext_batch,
}


def dumps(kind: str, value: Any) -> str:
    """Serialize a known object kind to JSON text."""
    if kind not in _DUMPERS:
        raise ParameterError(f"unknown kind {kind!r}")
    return json.dumps({"kind": kind, "data": _DUMPERS[kind](value)}, indent=2)


def loads(text: str, group: BilinearGroup | None = None) -> Any:
    """Deserialize JSON text produced by :func:`dumps`.

    ``group`` is required for kinds that reference group elements without
    embedding parameters (shares, ciphertexts); public keys are
    self-contained.
    """
    envelope = json.loads(text)
    kind = envelope.get("kind")
    data = envelope.get("data")
    if kind == "public_key":
        return load_public_key(data)
    if group is None:
        raise ParameterError(f"deserializing {kind!r} requires the group")
    if kind == "share1":
        return load_share1(group, data)
    if kind == "share2":
        return load_share2(data)
    if kind == "ciphertext":
        return load_ciphertext(group, data)
    if kind == "ciphertext_batch":
        return load_ciphertext_batch(group, data)
    raise ParameterError(f"unknown kind {kind!r}")
