"""Exact-length bit strings.

Leakage accounting in the continual-memory-leakage model is in *bits*:
budgets ``b_i`` bound the total number of output bits of the leakage
functions, and leakage rates divide by the bit size of the secret memory.
Python has no native fixed-width bit string, so :class:`BitString` wraps
an integer together with an explicit length and supports the operations
leakage functions need (slicing, projection, XOR, Hamming weight).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ParameterError


class BitString:
    """An immutable sequence of bits of explicit length.

    Bit 0 is the most significant bit of the underlying integer, so
    ``BitString.from_int(0b101, 3)`` is the sequence ``1, 0, 1``.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int, length: int) -> None:
        if length < 0:
            raise ParameterError("bit length must be non-negative")
        if value < 0 or value >> length:
            raise ParameterError(f"value does not fit in {length} bits")
        self._value = value
        self._length = length

    @classmethod
    def from_int(cls, value: int, length: int) -> "BitString":
        return cls(value, length)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        value = 0
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ParameterError("bits must be 0 or 1")
            value = (value << 1) | bit
            length += 1
        return cls(value, length)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitString":
        return cls(int.from_bytes(data, "big"), 8 * len(data))

    @classmethod
    def empty(cls) -> "BitString":
        return cls(0, 0)

    @property
    def value(self) -> int:
        return self._value

    def __len__(self) -> int:
        return self._length

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __getitem__(self, index: int | slice) -> "int | BitString":
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                raise ParameterError("bit slices must be contiguous")
            return BitString.from_bits(self.bit(i) for i in range(start, stop))
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        return self.bit(index)

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = most significant)."""
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        return (self._value >> (self._length - 1 - index)) & 1

    def __iter__(self) -> Iterator[int]:
        return (self.bit(i) for i in range(self._length))

    def concat(self, other: "BitString") -> "BitString":
        return BitString((self._value << len(other)) | other._value, self._length + len(other))

    def __add__(self, other: "BitString") -> "BitString":
        return self.concat(other)

    def xor(self, other: "BitString") -> "BitString":
        if len(other) != self._length:
            raise ParameterError("XOR of bit strings of different lengths")
        return BitString(self._value ^ other._value, self._length)

    def hamming_weight(self) -> int:
        return self._value.bit_count()

    def project(self, indices: Iterable[int]) -> "BitString":
        """Return the sub-string consisting of the given bit positions."""
        return BitString.from_bits(self.bit(i) for i in indices)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes((self._length + 7) // 8 or 1, "big")

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitString({format(self._value, f'0{self._length}b')})"
        return f"BitString(<{self._length} bits>)"


def concat_all(pieces: Iterable[BitString]) -> BitString:
    """Concatenate many bit strings."""
    result = BitString.empty()
    for piece in pieces:
        result = result.concat(piece)
    return result
