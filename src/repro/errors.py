"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library errors."""


class ParameterError(ReproError):
    """Invalid or inconsistent scheme parameters."""


class GroupError(ReproError):
    """Invalid group element or group operation."""


class ProtocolError(ReproError):
    """A 2-party protocol was driven incorrectly or received bad messages."""


class WireFormatError(ReproError):
    """A payload could not be encoded to (or decoded from) the wire format."""


class PeerDisconnected(ProtocolError):
    """The remote party closed its transport endpoint mid-protocol.

    Raised by threaded transports (:class:`~repro.protocol.transport.SocketTransport`)
    when a read or write hits a closed socket -- typically because the
    peer's protocol step failed and its runner shut the connection down.
    """


class TransportTimeout(ProtocolError):
    """A blocking transport operation exceeded its configured timeout.

    Raised by :class:`~repro.protocol.transport.SocketTransport` when a
    read or write does not complete within the socket timeout -- the
    peer is silent but the connection is not known to be dead.  This is
    the canonical *transient* fault: the session supervisor
    (:mod:`repro.runtime`) retries it, unlike a raw ``socket.timeout``
    which older code would have surfaced as an unclassifiable crash.
    """

    def __init__(self, message: str, *, timeout: float | None = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class FaultInjected(ProtocolError):
    """An injected channel fault interrupted a protocol mid-flight.

    Raised by :class:`~repro.protocol.faults.FaultyChannel` at a
    configured message boundary; carries which message was hit and how.
    """

    def __init__(self, message: str, *, label: str | None = None, mode: str | None = None) -> None:
        super().__init__(message)
        self.label = label
        self.mode = mode


class RefreshAborted(ProtocolError):
    """A staged share rotation was rolled back after a mid-protocol failure.

    Both devices still hold their *old*, mutually consistent shares; the
    interrupted period can simply be re-run.  ``snapshots`` holds any
    phase snapshots that were open when the abort happened (the leakage
    game still charges the adversary for aborted phases).
    """

    def __init__(
        self,
        message: str,
        *,
        period: int | None = None,
        snapshots: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.period = period
        self.snapshots = snapshots if snapshots is not None else {}


class LeakageBudgetExceeded(ReproError):
    """A leakage request exceeded the per-period budget (the challenger aborts)."""

    def __init__(self, device: str, requested: int, available: int) -> None:
        self.device = device
        self.requested = requested
        self.available = available
        super().__init__(
            f"leakage budget exceeded on {device}: "
            f"requested {requested} bits, only {available} available"
        )


class CheckpointError(ReproError):
    """A durable session checkpoint could not be read back.

    Raised by :func:`repro.runtime.checkpoint.load_checkpoint` when the
    file is truncated, not JSON, or structurally incomplete -- instead
    of the raw ``json.JSONDecodeError`` / ``KeyError`` older code let
    escape.  Classified *fatal* by the runtime taxonomy: re-reading the
    same bytes reproduces the failure, so a service rehydrating an
    evicted session must surface it as a clean per-key fault rather
    than crash its worker.  ``path`` names the offending file.
    """

    def __init__(self, message: str, *, path=None) -> None:
        super().__init__(message)
        self.path = path


class DecryptionError(ReproError):
    """Decryption failed (malformed ciphertext, failed signature check, ...)."""


class SingularMatrixError(ReproError):
    """A matrix over Z_p was singular where an invertible one was required."""


class ServiceError(ReproError):
    """A key-service request failed; ``code`` is the machine-readable
    reason from the response header (``unknown-key``, ``bad-request``,
    ``rejected``, ``checkpoint-corrupt``, ``internal``, ...)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class DeadlineExceeded(ServiceError):
    """A request's deadline expired before the service finished it.

    Code ``deadline-exceeded``.  Stamped deadlines propagate from the
    client's request header and are checked at admission, after any wait
    for the session lock, and between protocol steps (via the
    transport's step hook), so a dead request never burns a worker on a
    full two-party period whose answer nobody is waiting for.  The
    staged-commit machinery guarantees a mid-protocol expiry rolls the
    period back, so the request is *retryable* under a fresh deadline.
    """

    def __init__(self, message: str, *, where: str | None = None) -> None:
        super().__init__("deadline-exceeded", message)
        self.where = where


class ServiceOverloaded(ServiceError):
    """The service shed this request to protect itself under load.

    Code ``overloaded``.  Nothing ran: retry after ``retry_after``
    seconds (the hint echoed in the response's ``retry-after`` field).
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__("overloaded", message)
        self.retry_after = retry_after


class ServiceDraining(ServiceError):
    """The service is draining for shutdown and refused new protocol work.

    Code ``draining``.  In-flight requests finish; new ones should be
    retried against another instance (or later).  Nothing ran.
    """

    def __init__(self, message: str) -> None:
        super().__init__("draining", message)


class RetryExhausted(ServiceError):
    """The retrying client gave up (or refused to replay an unsafe op).

    ``attempts`` is the full retry history: one dict per attempt with
    the fault or response code observed and the backoff chosen, so a
    caller (or a test) can reconstruct exactly what the client saw.
    ``code`` is the last failure's code -- a wire code for a failure
    response, ``connection-lost`` / ``connection-timeout`` for a
    transport fault the client would not (or could no longer) retry.
    """

    def __init__(
        self, code: str, message: str, *, op: str | None = None, attempts=None
    ) -> None:
        super().__init__(code, message)
        self.op = op
        self.attempts = list(attempts or [])


class AdmissionRejected(ServiceError):
    """The key service refused to run a request, with a reason.

    Admission control is tied to the session's leakage budget: a frozen
    session (a retry would have exceeded the budget) or an exhausted
    per-period budget rejects *before* any protocol bits hit the wire,
    and a registry at capacity with every resident session busy rejects
    rather than queue unboundedly.  ``reason`` is the human-readable
    explanation echoed to the client.
    """

    def __init__(self, key: str, reason: str) -> None:
        self.key = key
        self.reason = reason
        super(ServiceError, self).__init__(f"request for {key} rejected: {reason}")
        self.code = "rejected"
