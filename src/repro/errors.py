"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library errors."""


class ParameterError(ReproError):
    """Invalid or inconsistent scheme parameters."""


class GroupError(ReproError):
    """Invalid group element or group operation."""


class ProtocolError(ReproError):
    """A 2-party protocol was driven incorrectly or received bad messages."""


class LeakageBudgetExceeded(ReproError):
    """A leakage request exceeded the per-period budget (the challenger aborts)."""

    def __init__(self, device: str, requested: int, available: int) -> None:
        self.device = device
        self.requested = requested
        self.available = available
        super().__init__(
            f"leakage budget exceeded on {device}: "
            f"requested {requested} bits, only {available} available"
        )


class DecryptionError(ReproError):
    """Decryption failed (malformed ciphertext, failed signature check, ...)."""


class SingularMatrixError(ReproError):
    """A matrix over Z_p was singular where an invertible one was required."""
