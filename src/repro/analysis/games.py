"""Executable security games (paper Definition 3.2 and its CCA2 variant).

:class:`CPACMLGame` runs the semantic-security-against-continual-
memory-leakage game for a DLR-style scheme, exactly as in Definition 3.2:

1. the challenger generates keys and hands the adversary ``pk``;
2. the adversary may request key-generation leakage (``h_Gen``, bound
   ``b0``);
3. for as many periods as the adversary chooses, it submits
   ``(h_1^t, h_1^{t,Ref}, h_2^t, h_2^{t,Ref})``; the challenger draws a
   ciphertext from the distribution ``C``, runs the decryption and
   refresh protocols, and answers the leakage queries under the
   ``(b1, b2)`` accounting of :class:`~repro.leakage.oracle.LeakageOracle`;
4. challenge: the adversary names ``m0, m1``, receives ``Enc(m_b)`` and
   guesses ``b``.

Over-budget requests abort the game (the challenger aborts in the
paper); the result records this.  :class:`CCA2CMLGame` adds a decryption
oracle for the DLRCCA2 scheme, refusing only the challenge ciphertext.

These games are *mechanism* checks, not asymptotic proofs: benchmarks
run them with in-budget adversaries (advantage statistically
indistinguishable from zero), over-budget adversaries (advantage ~ 1,
validating that the leaked bits really determine the key), and against
the single-memory ElGamal baseline (same budget, total break).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.dlr import DLR, PeriodRecord
from repro.core.keys import Ciphertext, PublicKey
from repro.errors import DecryptionError, LeakageBudgetExceeded, ProtocolError
from repro.groups.bilinear import GTElement
from repro.leakage.functions import LeakageFunction, LeakageInput
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.utils.bits import BitString
from repro.utils.rng import fork_rng

CiphertextSampler = Callable[[random.Random, PublicKey, int], Ciphertext]


@dataclass
class AdversaryView:
    """Everything the adversary legitimately sees.

    Live references: reading ``public_memory_*`` or ``channel`` reflects
    the current state, exactly as a real observer of the public channel
    and public memory would.
    """

    public_key: PublicKey
    channel: Channel
    device1: Device
    device2: Device
    leakage_log: list[tuple[int, dict[tuple[int, str], BitString]]] = field(
        default_factory=list
    )
    decryption_log: list[tuple[Ciphertext, GTElement]] = field(default_factory=list)

    @property
    def group(self):
        return self.public_key.group


class Adversary:
    """Base adversary: never leaks, guesses at random.

    Subclasses override the hooks they care about.  ``m0/m1`` default to
    two fixed distinct messages.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.view: AdversaryView | None = None

    def begin(self, view: AdversaryView) -> None:
        self.view = view

    def generation_leakage(self) -> LeakageFunction | None:
        return None

    def period_functions(
        self, period: int
    ) -> tuple[LeakageFunction, LeakageFunction, LeakageFunction, LeakageFunction] | None:
        """Return ``(h1, h1_ref, h2, h2_ref)`` or None to move to the
        challenge phase."""
        return None

    def observe_leakage(
        self, period: int, results: dict[tuple[int, str], BitString]
    ) -> None:
        if self.view is not None:
            self.view.leakage_log.append((period, results))

    def choose_messages(self) -> tuple[GTElement, GTElement]:
        assert self.view is not None
        group = self.view.group
        m0 = group.random_gt(self.rng)
        while True:
            m1 = group.random_gt(self.rng)
            if m1 != m0:
                return m0, m1

    def guess(self, challenge: Ciphertext, m0: GTElement, m1: GTElement) -> int:
        return self.rng.getrandbits(1)


@dataclass
class GameResult:
    """Outcome of one game run."""

    won: bool
    challenge_bit: int
    guess: int
    periods: int
    aborted: bool = False
    abort_reason: str = ""


class CPACMLGame:
    """The Definition 3.2 game for a DLR-style scheme."""

    def __init__(
        self,
        scheme: DLR,
        budget: LeakageBudget,
        rng: random.Random,
        ciphertext_sampler: CiphertextSampler | None = None,
        max_periods: int = 64,
    ) -> None:
        self.scheme = scheme
        self.budget = budget
        self.rng = rng
        self.max_periods = max_periods
        self._sampler = ciphertext_sampler or self._default_sampler

    def _default_sampler(
        self, rng: random.Random, public_key: PublicKey, period: int
    ) -> Ciphertext:
        """The distribution C: encryptions of uniform messages (background
        decryptions "run, say, by other users of the scheme")."""
        return self.scheme.encrypt(public_key, self.scheme.group.random_gt(rng), rng)

    def run(self, adversary: Adversary) -> GameResult:
        rng = fork_rng(self.rng, "game")
        generation = self.scheme.generate(rng)
        oracle = LeakageOracle(self.budget)

        device1 = Device("P1", self.scheme.group, rng)
        device2 = Device("P2", self.scheme.group, rng)
        channel = Channel()
        self.scheme.install(device1, device2, generation.share1, generation.share2)

        view = AdversaryView(generation.public_key, channel, device1, device2)
        adversary.begin(view)

        # Leakage on key generation (bound b0).
        h_gen = adversary.generation_leakage()
        if h_gen is not None:
            try:
                leaked = oracle.leak_generation(
                    h_gen, LeakageInput(generation.randomness, [])
                )
            except LeakageBudgetExceeded as exc:
                return GameResult(False, 0, 0, 0, aborted=True, abort_reason=str(exc))
            adversary.observe_leakage(-1, {(0, "gen"): leaked})

        # Leakage at every time period.
        periods = 0
        for period in range(self.max_periods):
            request = adversary.period_functions(period)
            if request is None:
                break
            h1, h1_ref, h2, h2_ref = request
            ciphertext = self._sampler(rng, generation.public_key, period)
            record = self.scheme.run_period(device1, device2, channel, ciphertext)
            view.decryption_log.append((ciphertext, record.plaintext))
            try:
                results = self._answer_leakage(
                    oracle, record, (h1, h1_ref, h2, h2_ref)
                )
            except LeakageBudgetExceeded as exc:
                return GameResult(
                    False, 0, 0, periods, aborted=True, abort_reason=str(exc)
                )
            oracle.end_period()
            adversary.observe_leakage(period, results)
            periods += 1

        # Challenge phase.
        m0, m1 = adversary.choose_messages()
        bit = rng.getrandbits(1)
        challenge = self.scheme.encrypt(generation.public_key, (m0, m1)[bit], rng)
        guess = adversary.guess(challenge, m0, m1)
        return GameResult(guess == bit, bit, guess, periods)

    def _answer_leakage(
        self,
        oracle: LeakageOracle,
        record: PeriodRecord,
        functions: tuple[LeakageFunction, ...],
    ) -> dict[tuple[int, str], BitString]:
        h1, h1_ref, h2, h2_ref = functions
        public = record.messages
        results: dict[tuple[int, str], BitString] = {}
        results[(1, "normal")] = oracle.leak(
            1, h1, LeakageInput(record.snapshots[(1, "normal")], public)
        )
        results[(2, "normal")] = oracle.leak(
            2, h2, LeakageInput(record.snapshots[(2, "normal")], public)
        )
        results[(1, "refresh")] = oracle.leak_refresh(
            1, h1_ref, LeakageInput(record.snapshots[(1, "refresh")], public)
        )
        results[(2, "refresh")] = oracle.leak_refresh(
            2, h2_ref, LeakageInput(record.snapshots[(2, "refresh")], public)
        )
        return results


class CCA2Adversary(Adversary):
    """Base CCA2 adversary: additionally receives a decryption oracle and
    the scheme's public setup (needed to form its own ciphertexts)."""

    def set_oracle(self, oracle: Callable[[object], GTElement]) -> None:
        self.oracle = oracle

    def receive_setup(self, setup) -> None:
        self.setup = setup

    def guess_cca(self, challenge: object, m0: GTElement, m1: GTElement) -> int:
        return self.rng.getrandbits(1)


class CCA2CMLGame:
    """The CCA2-against-CML game for DLRCCA2.

    Each pre-challenge period wraps one background decryption (through
    the full verify/extract/decrypt path) and one master-share refresh in
    leakage phases; the decryption oracle is available throughout, except
    on the challenge ciphertext itself.
    """

    def __init__(
        self,
        scheme,  # DLRCCA2 (duck-typed to avoid an import cycle)
        budget: LeakageBudget,
        rng: random.Random,
        max_periods: int = 16,
    ) -> None:
        self.scheme = scheme
        self.budget = budget
        self.rng = rng
        self.max_periods = max_periods

    def run(self, adversary: CCA2Adversary) -> GameResult:
        rng = fork_rng(self.rng, "cca2-game")
        setup = self.scheme.setup(rng)
        oracle = LeakageOracle(self.budget)
        group = self.scheme.params.group

        device1 = Device("P1", group, rng)
        device2 = Device("P2", group, rng)
        channel = Channel()
        self.scheme.install(device1, device2, setup.share1, setup.share2)

        view = AdversaryView(
            PublicKey(self.scheme.params, setup.public_params.z),
            channel,
            device1,
            device2,
        )
        adversary.begin(view)
        adversary.receive_setup(setup)

        challenge_holder: list[object] = []

        def decryption_oracle(ciphertext) -> GTElement:
            if challenge_holder and ciphertext == challenge_holder[0]:
                raise ProtocolError("decryption oracle refuses the challenge")
            return self.scheme.decrypt_protocol(
                setup, device1, device2, channel, ciphertext
            )

        adversary.set_oracle(decryption_oracle)

        periods = 0
        for period in range(self.max_periods):
            request = adversary.period_functions(period)
            if request is None:
                break
            h1, h1_ref, h2, h2_ref = request
            # Background decryption inside the "normal" leakage phase.
            snap1 = device1.secret.open_phase(f"t{period}.normal")
            snap2 = device2.secret.open_phase(f"t{period}.normal")
            background = self.scheme.encrypt(setup, group.random_gt(rng), rng)
            try:
                self.scheme.decrypt_protocol(setup, device1, device2, channel, background)
            except DecryptionError:  # pragma: no cover - honest ciphertexts verify
                pass
            device1.secret.close_phase()
            device2.secret.close_phase()
            # Master-share refresh inside the "refresh" phase.
            ref1 = device1.secret.open_phase(f"t{period}.refresh")
            ref2 = device2.secret.open_phase(f"t{period}.refresh")
            self.scheme.ibe.refresh_protocol(device1, device2, channel)
            device1.secret.close_phase()
            device2.secret.close_phase()

            public = channel.transcript(channel.current_period)
            try:
                results = {
                    (1, "normal"): oracle.leak(1, h1, LeakageInput(snap1, public)),
                    (2, "normal"): oracle.leak(2, h2, LeakageInput(snap2, public)),
                    (1, "refresh"): oracle.leak_refresh(
                        1, h1_ref, LeakageInput(ref1, public)
                    ),
                    (2, "refresh"): oracle.leak_refresh(
                        2, h2_ref, LeakageInput(ref2, public)
                    ),
                }
            except LeakageBudgetExceeded as exc:
                return GameResult(False, 0, 0, periods, aborted=True, abort_reason=str(exc))
            oracle.end_period()
            channel.advance_period()
            adversary.observe_leakage(period, results)
            periods += 1

        m0, m1 = adversary.choose_messages()
        bit = rng.getrandbits(1)
        challenge = self.scheme.encrypt(setup, (m0, m1)[bit], rng)
        challenge_holder.append(challenge)
        guess = adversary.guess_cca(challenge, m0, m1)
        return GameResult(guess == bit, bit, guess, periods)
