"""Statistical tests used by the analysis benchmarks.

* chi-squared uniformity / two-sample tests over small supports, for the
  Definition 3.1 requirement (refreshed shares identically distributed)
  and the section 6 real-vs-fake comparison;
* Wilson confidence intervals for empirical adversary advantage.

scipy is used when available (it is in the pinned environment); a plain
implementation of the chi-squared survival function backs it up so the
library itself stays dependency-free.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ParameterError

try:  # pragma: no cover - exercised implicitly
    from scipy import stats as _scipy_stats
except Exception:  # pragma: no cover
    _scipy_stats = None


def _chi2_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-squared distribution.

    Uses the regularized upper incomplete gamma function via a series /
    continued-fraction split (Numerical Recipes style).
    """
    if dof <= 0:
        raise ParameterError("degrees of freedom must be positive")
    if _scipy_stats is not None:
        return float(_scipy_stats.chi2.sf(statistic, dof))
    return _upper_regularized_gamma(dof / 2.0, statistic / 2.0)


def _upper_regularized_gamma(a: float, x: float) -> float:
    if x < 0 or a <= 0:
        raise ParameterError("invalid incomplete gamma arguments")
    if x == 0:
        return 1.0
    if x < a + 1:
        # Series for the lower incomplete gamma.
        term = 1.0 / a
        total = term
        k = a
        for _ in range(10_000):
            k += 1
            term *= x / k
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        lower = total * math.exp(-x + a * math.log(x) - math.lgamma(a))
        return max(0.0, 1.0 - lower)
    # Continued fraction for the upper incomplete gamma.
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 10_000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


@dataclass(frozen=True)
class ChiSquaredResult:
    statistic: float
    dof: int
    p_value: float

    def rejects_at(self, alpha: float = 0.01) -> bool:
        return self.p_value < alpha


def chi_squared_uniform(samples: Sequence[object], support_size: int) -> ChiSquaredResult:
    """Test the hypothesis that ``samples`` are uniform over a support of
    the given size (unseen outcomes count as zero cells)."""
    if support_size < 2:
        raise ParameterError("support must have at least 2 outcomes")
    counts = Counter(samples)
    if len(counts) > support_size:
        raise ParameterError("more distinct outcomes than the claimed support")
    n = len(samples)
    expected = n / support_size
    statistic = sum(
        (counts.get(outcome, 0) - expected) ** 2 / expected for outcome in counts
    )
    # Unseen outcomes each contribute `expected`.
    statistic += (support_size - len(counts)) * expected
    dof = support_size - 1
    return ChiSquaredResult(statistic, dof, _chi2_sf(statistic, dof))


def chi_squared_two_sample(
    sample_a: Sequence[object], sample_b: Sequence[object]
) -> ChiSquaredResult:
    """Test whether two samples come from the same distribution."""
    counts_a = Counter(sample_a)
    counts_b = Counter(sample_b)
    support = sorted(set(counts_a) | set(counts_b), key=repr)
    if len(support) < 2:
        return ChiSquaredResult(0.0, 1, 1.0)
    n_a, n_b = len(sample_a), len(sample_b)
    statistic = 0.0
    dof = 0
    for outcome in support:
        a = counts_a.get(outcome, 0)
        b = counts_b.get(outcome, 0)
        total = a + b
        expected_a = total * n_a / (n_a + n_b)
        expected_b = total * n_b / (n_a + n_b)
        if total == 0:
            continue
        statistic += (a - expected_a) ** 2 / expected_a
        statistic += (b - expected_b) ** 2 / expected_b
        dof += 1
    dof = max(dof - 1, 1)
    return ChiSquaredResult(statistic, dof, _chi2_sf(statistic, dof))


@dataclass(frozen=True)
class AdvantageEstimate:
    """Empirical advantage of a guessing adversary over 1/2."""

    wins: int
    trials: int

    @property
    def win_rate(self) -> float:
        return self.wins / self.trials

    @property
    def advantage(self) -> float:
        return self.win_rate - 0.5

    def confidence_interval(self, z: float = 2.576) -> tuple[float, float]:
        """Wilson interval for the win rate (z=2.576 -> 99%)."""
        n = self.trials
        if n == 0:
            raise ParameterError("no trials")
        phat = self.win_rate
        denom = 1 + z * z / n
        center = (phat + z * z / (2 * n)) / denom
        margin = z * math.sqrt(phat * (1 - phat) / n + z * z / (4 * n * n)) / denom
        return (center - margin, center + margin)

    def is_consistent_with_no_advantage(self, z: float = 2.576) -> bool:
        low, high = self.confidence_interval(z)
        return low <= 0.5 <= high


def empirical_advantage(outcomes: Iterable[bool]) -> AdvantageEstimate:
    """Summarize a sequence of per-trial win/lose outcomes."""
    wins = 0
    trials = 0
    for outcome in outcomes:
        trials += 1
        wins += int(outcome)
    if trials == 0:
        raise ParameterError("no trials")
    return AdvantageEstimate(wins, trials)
