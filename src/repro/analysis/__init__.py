"""Security analysis machinery: assumption samplers, the Definition 3.2
security games, concrete adversaries/attacks, the section 6 fake-game
distinguisher, and statistical tests.
"""

from repro.analysis.assumptions import BDDHTuple, sample_bddh, sample_klin, sample_matrix_klin
from repro.analysis.games import CCA2CMLGame, CPACMLGame, GameResult
from repro.analysis.stattests import chi_squared_uniform, empirical_advantage

__all__ = [
    "BDDHTuple",
    "CCA2CMLGame",
    "CPACMLGame",
    "GameResult",
    "chi_squared_uniform",
    "empirical_advantage",
    "sample_bddh",
    "sample_klin",
    "sample_matrix_klin",
]
