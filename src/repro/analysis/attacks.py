"""Concrete leakage attacks on the *non*-distributed baseline.

The motivation of the paper (section 1.1): in a single-memory scheme the
leakage function sees the whole secret key at once, and without refresh
the leakage *accumulates*.  These attack drivers quantify both effects
on plain ElGamal and power the T6 benchmark's "victim" column:

* :func:`elgamal_single_shot_break` -- one period, budget ``b`` bits on
  the key: wins iff ``b + work >= |sk|``;
* :func:`elgamal_continual_break` -- per-period budget ``r * |sk|``, no
  refresh: the adversary takes a different key window each period and
  wins as soon as ``T * r >= 1`` -- "the total leakage is unbounded".

Compare with DLR under the same per-period budgets: the shares are
refreshed every period, so the windows the adversary collects belong to
*different* sharings and never combine (the T6 benchmark runs exactly
that comparison through the Definition 3.2 game).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.elgamal import ElGamal, ElGamalKeyPair
from repro.groups.bilinear import BilinearGroup
from repro.utils.bits import BitString


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack trial."""

    won: bool
    leaked_bits: int
    brute_force_work: int


def elgamal_single_shot_break(
    group: BilinearGroup,
    budget_bits: int,
    rng: random.Random,
    max_work_bits: int = 16,
) -> AttackOutcome:
    """One-period leakage attack on ElGamal.

    The adversary leaks the leading ``budget_bits`` of the secret
    exponent and enumerates the rest (up to ``2^max_work_bits``).
    """
    scheme = ElGamal(group)
    keypair = scheme.keygen(rng)
    secret_bits = keypair.secret_bits()
    total = len(secret_bits)
    take = min(budget_bits, total)
    leaked = secret_bits[:take]
    assert isinstance(leaked, BitString)
    missing = total - take
    if missing > max_work_bits:
        return AttackOutcome(False, take, 0)

    # Distinguishing test: encrypt m0 and check the candidate decrypts it.
    m0 = group.random_gt(rng)
    ciphertext = scheme.encrypt(keypair, m0, rng)
    work = 0
    for suffix in range(1 << missing):
        work += 1
        candidate = (int(leaked) << missing) | suffix
        if scheme.decrypt_with_exponent(candidate, ciphertext) == m0:
            return AttackOutcome(True, take, work)
    return AttackOutcome(False, take, work)


def elgamal_continual_break(
    group: BilinearGroup,
    rate: float,
    periods: int,
    rng: random.Random,
) -> AttackOutcome:
    """Continual leakage against an *unrefreshed* ElGamal key.

    Each period leaks a fresh window of ``floor(rate * |sk|)`` key bits;
    the adversary wins once the windows cover the key.  This is the
    "hole in the bucket" failure mode refresh protocols exist to stop.
    """
    scheme = ElGamal(group)
    keypair = scheme.keygen(rng)
    secret_bits = keypair.secret_bits()
    total = len(secret_bits)
    per_period = max(int(rate * total), 0)

    recovered: dict[int, int] = {}
    leaked_total = 0
    for t in range(periods):
        start = (t * per_period) % total if total else 0
        for offset in range(per_period):
            index = start + offset
            if index >= total:
                break
            recovered[index] = secret_bits.bit(index)
            leaked_total += 1
        if len(recovered) == total:
            candidate = 0
            for i in range(total):
                candidate = (candidate << 1) | recovered[i]
            m0 = group.random_gt(rng)
            ciphertext = scheme.encrypt(keypair, m0, rng)
            won = scheme.decrypt_with_exponent(candidate, ciphertext) == m0
            return AttackOutcome(won, leaked_total, 0)
    return AttackOutcome(False, leaked_total, 0)


def periods_to_break(rate: float) -> int:
    """How many periods the continual attack needs: ``ceil(1 / rate)``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return -(-1 // rate) if isinstance(rate, int) else -int(-1.0 // rate)
