"""Leakage during key generation (paper section 1.1 / Theorem 4.1 and
footnote 7).

The paper's base result assumes a leakage-free ``Gen`` but shows the
assumption can be relaxed: the proof "guesses those leakage bits", which
costs a ``2^{b0}`` factor in the reduction's running time (and/or
advantage).  Consequently:

* ``b0 = O(log n)`` bits are tolerated under the *standard* BDDH/2Lin
  assumptions (the guessing factor stays polynomial);
* ``b0 = n^eps`` bits under *sub-exponential* BDDH (the factor
  ``2^{n^eps}`` is absorbed by the stronger assumption).

This module makes both halves concrete:

* :func:`standard_b0` / :func:`subexponential_b0` compute the budgets;
* :class:`GuessingReduction` wraps any leakage-dependent procedure and
  runs it under every possible value of the generation leakage,
  demonstrating the exact ``2^{b0}`` work blow-up the footnote invokes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ParameterError
from repro.utils.bits import BitString


def standard_b0(n: int, c: float = 1.0) -> int:
    """Tolerated generation leakage under standard assumptions:
    ``O(log n)`` bits."""
    if n < 2:
        raise ParameterError("security parameter too small")
    return max(int(c * math.log2(n)), 1)


def subexponential_b0(n: int, eps: float = 0.5) -> int:
    """Tolerated generation leakage under sub-exponential BDDH:
    ``n^eps`` bits (0 < eps < 1)."""
    if not 0 < eps < 1:
        raise ParameterError("eps must be in (0, 1)")
    if n < 2:
        raise ParameterError("security parameter too small")
    return max(int(n ** eps), 1)


def guessing_overhead(b0: int) -> int:
    """The reduction's work factor: ``2^{b0}`` candidate leakage values."""
    if b0 < 0:
        raise ParameterError("b0 must be non-negative")
    return 1 << b0


@dataclass
class GuessOutcome:
    """Result of a guessing-reduction run."""

    succeeded: bool
    correct_guess: BitString | None
    candidates_tried: int
    work_bound: int


class GuessingReduction:
    """The footnote 7 technique, executable.

    Given a procedure that requires the generation-leakage value to
    succeed (modeling a reduction that must feed the adversary its
    leakage), run it under all ``2^{b0}`` candidate values until one
    succeeds.  The caller supplies a *verifier* -- typically "did the
    simulated adversary behave consistently" -- here simply whether the
    procedure returns True.
    """

    def __init__(self, b0: int) -> None:
        if b0 < 0:
            raise ParameterError("b0 must be non-negative")
        self.b0 = b0

    def run(self, procedure: Callable[[BitString], bool]) -> GuessOutcome:
        """Try the procedure under every candidate leakage value."""
        work_bound = guessing_overhead(self.b0)
        tried = 0
        for candidate_value in range(work_bound):
            tried += 1
            candidate = BitString(candidate_value, self.b0)
            if procedure(candidate):
                return GuessOutcome(True, candidate, tried, work_bound)
        return GuessOutcome(False, None, tried, work_bound)


def assumption_budget_table(n_values: tuple[int, ...] = (32, 64, 128, 256, 1024)):
    """Rows of (n, standard b0, sub-exponential b0, guessing work) for
    the generation-leakage budget comparison."""
    rows = []
    for n in n_values:
        std = standard_b0(n)
        sub = subexponential_b0(n)
        rows.append(
            {
                "n": n,
                "standard_b0": std,
                "standard_work": guessing_overhead(std),
                "subexp_b0": sub,
                "subexp_work_log2": sub,  # work = 2^{n^eps}: report exponent
            }
        )
    return rows
