"""The section 6 distinguisher machinery ("fake game").

The security proof's distinguisher D plants a BDDH tuple in the public
key and challenge, then simulates the whole transcript with *flawed*
secret shares: ``sk1`` and ``sk_comm`` are uniform and independent, all
Pi_comm ciphertexts are generated with tracked discrete logarithms, and
``sk2`` is sampled **uniformly subject to the linear constraint** that
P2's honest computation would reproduce the simulated response
``c' = d_B * prod_i d_i^{s_i} / d_Phi`` -- a system of ``kappa + 1``
linear equations in the ``ell`` unknowns ``s_1..s_ell`` whose
coefficients are the tracked discrete logs, solvable when the
coefficient matrix has full rank (imposed by re-sampling).

This module implements that sampler end-to-end in white-box mode (every
discrete log tracked, as D's bookkeeping requires) and exposes the
checkable claims:

* the constraint system is consistent and :func:`solve_uniform` returns
  points of the full solution space (T8 verifies uniformity by
  chi-squared on toy groups);
* the full-rank requirement fails only with probability ~ ``(kappa+1)/p``
  (re-sampling counts are measured);
* the simulated transcript is *consistent*: running P2's real code on
  the fake inputs reproduces ``c'`` exactly, and ``Dec'(c') = m``;
* the fake ``sk2`` marginal matches the real game's uniform marginal.

The extended abstract omits the full bookkeeping for adversarially
chosen ciphertext distributions C (deferred to the unpublished full
version); we instantiate C with known-exponent plaintexts, which the
game definition permits, and document the scope in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.hpske import HPSKE, HPSKECiphertext, HPSKEKey
from repro.core.params import DLRParams
from repro.errors import SingularMatrixError
from repro.groups.bilinear import BilinearGroup, GTElement
from repro.math import linalg


@dataclass
class FakePeriod:
    """One simulated time period, with every exponent D tracked.

    All group elements are powers of ``gt = e(g, g)``; ``*_exp`` fields
    hold the tracked exponents.  ``sk2`` is the constrained-uniform
    share; ``resamples`` counts full-rank re-sampling rounds.
    """

    sk_comm: HPSKEKey
    t_exp: int  # dlog of A (the decryption input's first component)
    a_exps: list[int]  # dlogs of the fake sk1 components a_i
    phi_exp: int  # dlog of the fake Phi
    message_exp: int  # dlog of the decryption output m
    d_list: list[HPSKECiphertext]
    d_phi: HPSKECiphertext
    d_b: HPSKECiphertext
    c_prime: HPSKECiphertext
    sk2: list[int]
    resamples: int


class FakeGameSampler:
    """Samples fake periods the way the section 6 distinguisher does."""

    def __init__(self, params: DLRParams, rng: random.Random) -> None:
        self.params = params
        self.group: BilinearGroup = params.group
        self.rng = rng
        self.hpske = HPSKE(self.group, params.kappa, space="GT")
        self._gt = self.group.gt_generator()

    # -- tracked-exponent ciphertext construction -----------------------

    def _tracked_ciphertext(
        self, body_exp: int
    ) -> tuple[HPSKECiphertext, list[int], int]:
        """A Pi_comm-shaped ciphertext ``(gt^{delta_1}, .., gt^{delta_k},
        gt^{body})`` with all exponents tracked."""
        p = self.group.p
        coin_exps = [self.rng.randrange(p) for _ in range(self.params.kappa)]
        coins = tuple(self._gt ** e for e in coin_exps)
        return HPSKECiphertext(coins, self._gt ** body_exp), coin_exps, body_exp

    def _encryption_exponents(
        self, plaintext_exp: int, sigma: tuple[int, ...], coin_exps: list[int]
    ) -> int:
        """Body exponent of ``Enc'(gt^plaintext_exp; coins)``:
        ``plaintext + sum_j sigma_j delta_j``."""
        p = self.group.p
        return (plaintext_exp + sum(s * d for s, d in zip(sigma, coin_exps))) % p

    # -- the sampler -----------------------------------------------------

    def sample_period(self, max_resamples: int = 64) -> FakePeriod:
        """Stages (a)-(e) of the distinguisher's sampling for one period."""
        p = self.group.p
        ell, kappa = self.params.ell, self.params.kappa
        resamples = 0

        # (a) sk1 and sk_comm uniform (dlogs tracked for bookkeeping).
        a_exps = [self.rng.randrange(p) for _ in range(ell)]
        phi_exp = self.rng.randrange(p)
        sk_comm = HPSKEKey(
            tuple(self.rng.randrange(p) for _ in range(kappa)), p
        )
        sigma = sk_comm.sigma

        # The decryption input/output advice: A = g^t, output m.
        t_exp = self.rng.randrange(p)
        message_exp = self.rng.randrange(p)
        # B chosen so decryption is "correct" relative to the fake shares
        # is NOT imposed -- B is free advice; only the c' constraint binds.
        b_exp = self.rng.randrange(p)

        while True:
            # (b)+(c): d_i encrypt e(A, a_i) = gt^{t a_i}; d_Phi encrypts
            # e(A, Phi); d_B encrypts B; c' encrypts m -- coins tracked.
            d_list, d_coin_exps, d_body_exps = [], [], []
            for a_exp in a_exps:
                plaintext_exp = t_exp * a_exp % p
                ct, coin_exps, _ = self._tracked_ciphertext(0)
                body_exp = self._encryption_exponents(plaintext_exp, sigma, coin_exps)
                ct = HPSKECiphertext(ct.coins, self._gt ** body_exp)
                d_list.append(ct)
                d_coin_exps.append(coin_exps)
                d_body_exps.append(body_exp)

            phi_plain = t_exp * phi_exp % p
            d_phi, phi_coins, _ = self._tracked_ciphertext(0)
            phi_body = self._encryption_exponents(phi_plain, sigma, phi_coins)
            d_phi = HPSKECiphertext(d_phi.coins, self._gt ** phi_body)

            d_b, b_coins, _ = self._tracked_ciphertext(0)
            b_body = self._encryption_exponents(b_exp, sigma, b_coins)
            d_b = HPSKECiphertext(d_b.coins, self._gt ** b_body)

            c_prime, c_coins, _ = self._tracked_ciphertext(0)
            c_body = self._encryption_exponents(message_exp, sigma, c_coins)
            c_prime = HPSKECiphertext(c_prime.coins, self._gt ** c_body)

            # (d) solve for sk2: kappa+1 equations (one per c' component).
            #     coin j:  sum_i s_i d_coin_exps[i][j] = c_coin[j] - bB[j] + bPhi[j]
            #     body:    sum_i s_i d_body_exps[i]    = c_body  - b_body + phi_body
            matrix: linalg.Matrix = [
                [d_coin_exps[i][j] for i in range(ell)] for j in range(kappa)
            ]
            matrix.append([d_body_exps[i] for i in range(ell)])
            rhs = [
                (c_coins[j] - b_coins[j] + phi_coins[j]) % p for j in range(kappa)
            ]
            rhs.append((c_body - b_body + phi_body) % p)

            if linalg.rank(matrix, p) == kappa + 1:
                sk2 = linalg.solve_uniform(matrix, rhs, p, self.rng)
                break
            resamples += 1
            if resamples > max_resamples:
                raise SingularMatrixError(
                    "full-rank requirement failed repeatedly (p too small?)"
                )

        return FakePeriod(
            sk_comm=sk_comm,
            t_exp=t_exp,
            a_exps=a_exps,
            phi_exp=phi_exp,
            message_exp=message_exp,
            d_list=d_list,
            d_phi=d_phi,
            d_b=d_b,
            c_prime=c_prime,
            sk2=sk2,
            resamples=resamples,
        )

    # -- verification of the simulated transcript --------------------------

    def p2_recomputation(self, period: FakePeriod) -> HPSKECiphertext:
        """Run P2's *real* decryption step on the fake inputs."""
        combined = period.d_b
        for d_i, s_i in zip(period.d_list, period.sk2):
            combined = combined * (d_i ** s_i)
        return combined / period.d_phi

    def is_consistent(self, period: FakePeriod) -> bool:
        """The fake transcript withstands P2's honest recomputation and
        decrypts to the advised output."""
        if self.p2_recomputation(period) != period.c_prime:
            return False
        decrypted = self.hpske.decrypt(period.sk_comm, period.c_prime)
        assert isinstance(decrypted, GTElement)
        return decrypted == self._gt ** period.message_exp
