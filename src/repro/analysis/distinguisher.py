"""The section 6 distinguisher D, executable end to end.

D receives a BDDH tuple ``(g^a, g^b, g^c, T)`` and plays a *fake*
semantic-security game with an adversary A:

* the public key is planted as ``pk = e(g^a, g^b)``;
* the challenge ciphertext is planted as ``C = (g^c, m_b * T)``;
* D outputs 1 iff A wins the fake game.

The two halves of the proof, checkable by running D:

* if ``T = e(g,g)^{abc}`` the challenge is a *perfectly valid*
  encryption of ``m_b`` under the planted key (because
  ``e(g,g)^{abc} = pk^c``), so A's advantage carries over;
* if ``T`` is uniform the challenge is independent of ``b`` and A's
  win probability is exactly 1/2.

Hence ``Adv_D(BDDH) = Adv_A(game)/...`` -- D distinguishes iff A wins
with advantage.  On toy groups, where discrete logs are computable, the
:class:`DlogBreaker` adversary wins the real-``T`` game with probability
1, making D a *perfect* BDDH distinguisher -- exactly what must happen,
since toy BDDH is easy.  Against computationally bounded adversaries
(our brute-force/random strategies) D's advantage collapses to 0.

This module covers the challenge-planting skeleton of the reduction
(leakage-period simulation is in :mod:`repro.analysis.fake_game`; the
extended abstract defers their full composition to the unpublished full
version -- see EXPERIMENTS.md T8).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.analysis.assumptions import BDDHTuple, sample_bddh
from repro.core.keys import Ciphertext, PublicKey
from repro.core.params import DLRParams
from repro.groups.bilinear import BilinearGroup, G1Element, GTElement


@dataclass
class FakeGameOutcome:
    adversary_won: bool
    challenge_bit: int
    guess: int


class ChallengeAdversary:
    """Interface for adversaries in the challenge-only fake game."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose_messages(self, group: BilinearGroup) -> tuple[GTElement, GTElement]:
        m0 = group.random_gt(self.rng)
        while True:
            m1 = group.random_gt(self.rng)
            if m1 != m0:
                return m0, m1

    def guess(
        self,
        public_key: PublicKey,
        challenge: Ciphertext,
        m0: GTElement,
        m1: GTElement,
    ) -> int:
        return self.rng.getrandbits(1)


class DlogBreaker(ChallengeAdversary):
    """An *unbounded* (toy-group) adversary: computes the discrete log of
    the challenge's first component by baby-step giant-step, recomputes
    the mask ``pk^c``, and reads off the plaintext.  Wins with
    probability 1 when the challenge is well-formed."""

    def guess(self, public_key, challenge, m0, m1) -> int:
        group = public_key.group
        c = _bsgs_dlog(group, challenge.a)
        candidate = challenge.b / (public_key.z ** c)
        if candidate == m0:
            return 0
        if candidate == m1:
            return 1
        return self.rng.getrandbits(1)


class BDDHDistinguisher:
    """D itself: fake game + output 1 iff the adversary wins."""

    def __init__(self, params: DLRParams, rng: random.Random) -> None:
        self.params = params
        self.group = params.group
        self.rng = rng

    def fake_game(self, tup: BDDHTuple, adversary: ChallengeAdversary) -> FakeGameOutcome:
        """One fake game: plant pk and challenge from the tuple."""
        planted_pk = PublicKey(self.params, self.group.pair(tup.g_a, tup.g_b))
        m0, m1 = adversary.choose_messages(self.group)
        bit = self.rng.getrandbits(1)
        challenge = Ciphertext(a=tup.g_c, b=(m0, m1)[bit] * tup.t)
        guess = adversary.guess(planted_pk, challenge, m0, m1)
        return FakeGameOutcome(guess == bit, bit, guess)

    def distinguish(self, tup: BDDHTuple, adversary: ChallengeAdversary) -> int:
        """D's output bit: 1 iff A won the fake game."""
        return int(self.fake_game(tup, adversary).adversary_won)

    def estimate_advantage(
        self,
        adversary_factory,
        trials: int = 20,
    ) -> float:
        """``Pr[D=1 | real] - Pr[D=1 | random]`` over fresh tuples.

        ``adversary_factory(rng)`` builds a fresh adversary per trial.
        """
        ones_real = 0
        ones_random = 0
        for i in range(trials):
            real_tup = sample_bddh(self.group, self.rng, real=True)
            ones_real += self.distinguish(
                real_tup, adversary_factory(random.Random(10_000 + i))
            )
            random_tup = sample_bddh(self.group, self.rng, real=False)
            ones_random += self.distinguish(
                random_tup, adversary_factory(random.Random(20_000 + i))
            )
        return (ones_real - ones_random) / trials


def _bsgs_dlog(group: BilinearGroup, element: G1Element) -> int:
    """Baby-step giant-step discrete log base ``g`` (toy groups only)."""
    p = group.p
    m = math.isqrt(p) + 1
    table: dict[G1Element, int] = {}
    current = group.g_identity()
    for j in range(m):
        table[current] = j
        current = current * group.g
    factor = (group.g ** m).inverse()
    gamma = element
    for i in range(m):
        if gamma in table:
            return (i * m + table[gamma]) % p
        gamma = gamma * factor
    raise ValueError("dlog not found (group too large for BSGS?)")
