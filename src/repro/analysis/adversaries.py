"""Concrete adversary strategies for the Definition 3.2 game.

Three tiers, used by the T6 benchmark:

* :class:`RandomGuessAdversary` -- sanity floor (advantage 0 by design);
* :class:`KeyRecoveryAdversary` -- an *over-budget* adversary: given
  ``b1 >= 2 m1`` and ``b2 >= 2 m2`` it leaks both communication keys from
  P1's refresh snapshot and both shares from P2's, decrypts the public
  encrypted share, reconstructs ``msk = g2^alpha`` and wins with
  probability 1.  Running it validates that the snapshots really
  determine the key -- the leakage surface is honest;
* :class:`BruteForceAdversary` -- an *in-budget* adversary against the
  theorem-bound budget: it leaks as much of ``sk_comm`` as allowed plus
  all of P2's share, then tries to enumerate the missing key bits
  (verifying candidates against ``e(g, msk) = z``).  With the paper's
  parameters the missing entropy is ~``3n`` bits, far beyond its work
  bound, so its advantage is statistically zero; on deliberately
  weakened toy budgets it starts winning exactly when the missing bits
  fall inside its work bound (the T7 "cliff").

These adversaries target :class:`~repro.core.optimal.OptimalDLR`, whose
P1 secret memory is exactly ``sk_comm`` -- the paper's rate-optimal
instantiation.
"""

from __future__ import annotations

import random

from repro.analysis.games import Adversary
from repro.core.hpske import HPSKE, HPSKEKey
from repro.core.keys import Ciphertext
from repro.core.optimal import ENC_SHARE_SLOT, OptimalDLR
from repro.groups.bilinear import G1Element, GTElement
from repro.leakage.functions import BitProjection, LeakageFunction, NullLeakage, PrefixBits
from repro.utils.bits import BitString
from repro.utils.serialization import int_width


def decode_scalars(bits: BitString, width: int, count: int, offset: int = 0) -> list[int]:
    """Decode ``count`` fixed-width scalars from a leaked bit string."""
    values = []
    for i in range(count):
        start = offset + i * width
        chunk = bits[start : start + width]
        assert isinstance(chunk, BitString)
        values.append(int(chunk))
    return values


class RandomGuessAdversary(Adversary):
    """Leaks nothing, guesses uniformly: the advantage-0 floor."""


class TranscriptAdaptiveAdversary(Adversary):
    """Chooses its leakage functions *adaptively* from the public view.

    The model (section 3.2) lets the choice of ``h_i^t`` depend on all
    public information and all earlier leakage.  This adversary derives
    its bit-projection targets from a hash of the transcript-so-far and
    its previous leakage results -- exercising exactly that dependence
    path through the game machinery.
    """

    def __init__(
        self, rng: random.Random, periods: int, bits_per_device: int
    ) -> None:
        super().__init__(rng)
        self.periods = periods
        self.bits_per_device = bits_per_device
        self._history = b""

    def _derived_indices(self, salt: bytes, count: int, space: int) -> list[int]:
        import hashlib

        indices = []
        counter = 0
        while len(indices) < count:
            digest = hashlib.sha256(salt + counter.to_bytes(4, "big") + self._history).digest()
            for i in range(0, len(digest) - 1, 2):
                indices.append(int.from_bytes(digest[i : i + 2], "big") % space)
                if len(indices) == count:
                    break
            counter += 1
        return indices

    def period_functions(self, period: int):
        if period >= self.periods:
            return None
        assert self.view is not None
        transcript_salt = self.view.channel.bits_on_wire().to_bytes(8, "big")
        h1 = BitProjection(
            self._derived_indices(b"p1" + transcript_salt, self.bits_per_device, 4096)
        )
        h2 = BitProjection(
            self._derived_indices(b"p2" + transcript_salt, self.bits_per_device, 4096)
        )
        return (h1, NullLeakage(), h2, NullLeakage())

    def observe_leakage(self, period, results):
        super().observe_leakage(period, results)
        for leaked in results.values():
            self._history += leaked.to_bytes()


class KeyRecoveryAdversary(Adversary):
    """Over-budget adversary: full refresh-snapshot leakage on both
    devices in period 0 recovers the master secret key."""

    def __init__(self, rng: random.Random, scheme: OptimalDLR) -> None:
        super().__init__(rng)
        self.scheme = scheme
        self.master_secret: G1Element | None = None

    def period_functions(self, period: int):
        if period > 0 or self.master_secret is not None:
            return None
        params = self.scheme.params
        m1 = params.sk_comm_bits()
        m2 = params.sk2_bits()
        null: LeakageFunction = NullLeakage()
        return (null, PrefixBits(2 * m1), null, PrefixBits(2 * m2))

    def observe_leakage(self, period, results):
        super().observe_leakage(period, results)
        if period != 0 or self.view is None:
            return
        params = self.scheme.params
        group = self.scheme.group
        width = int_width(group.p)
        # P1 refresh snapshot = old sk_comm || new sk_comm.
        p1_bits = results[(1, "refresh")]
        new_key_scalars = decode_scalars(
            p1_bits, width, params.kappa, offset=params.kappa * width
        )
        sk_comm_new = HPSKEKey(tuple(new_key_scalars), group.p)
        # P2 refresh snapshot = old share || new share.
        p2_bits = results[(2, "refresh")]
        new_share = decode_scalars(p2_bits, width, params.ell, offset=params.ell * width)
        # The post-refresh encrypted share is public.
        encrypted = self.view.device1.public.read(ENC_SHARE_SLOT)
        hpske = HPSKE(group, params.kappa, space="G")
        elements = [hpske.decrypt(sk_comm_new, ct) for ct in encrypted]
        a_elements, phi = elements[:-1], elements[-1]
        master = phi
        for a_i, s_i in zip(a_elements, new_share):
            master = master / (a_i ** s_i)
        self.master_secret = master  # type: ignore[assignment]

    def guess(self, challenge: Ciphertext, m0: GTElement, m1: GTElement) -> int:
        if self.master_secret is None:
            return self.rng.getrandbits(1)
        group = self.scheme.group
        recovered = challenge.b / group.pair(challenge.a, self.master_secret)
        if recovered == m0:
            return 0
        if recovered == m1:
            return 1
        return self.rng.getrandbits(1)


class BruteForceAdversary(Adversary):
    """In-budget adversary: partial ``sk_comm`` leakage + full P2 share,
    then bounded enumeration of the missing key bits.

    ``budget_bits_p1`` is how much of P1's refresh snapshot it may take
    (the game's ``b1``); ``max_work_bits`` caps the enumeration at
    ``2^max_work_bits`` candidates.
    """

    def __init__(
        self,
        rng: random.Random,
        scheme: OptimalDLR,
        budget_bits_p1: int,
        max_work_bits: int = 16,
    ) -> None:
        super().__init__(rng)
        self.scheme = scheme
        self.budget_bits_p1 = budget_bits_p1
        self.max_work_bits = max_work_bits
        self.master_secret: G1Element | None = None
        self.attempted_candidates = 0

    def period_functions(self, period: int):
        if period > 0:
            return None
        params = self.scheme.params
        m1 = params.sk_comm_bits()
        m2 = params.sk2_bits()
        null: LeakageFunction = NullLeakage()
        # Spend the whole P1 budget on the *new* key, which lives at bit
        # positions [m1, 2 m1) of the refresh snapshot (old key || new key);
        # spend exactly b2 = m2 on the new share at positions [m2, 2 m2).
        take = min(self.budget_bits_p1, m1)
        projection = BitProjection(list(range(m1, m1 + take)))
        share_projection = BitProjection(list(range(m2, 2 * m2)))
        return (null, projection, null, share_projection)

    def observe_leakage(self, period, results):
        super().observe_leakage(period, results)
        if period != 0 or self.view is None:
            return
        params = self.scheme.params
        group = self.scheme.group
        width = int_width(group.p)
        m1 = params.sk_comm_bits()

        p1_bits = results[(1, "refresh")]
        p2_bits = results[(2, "refresh")]  # exactly the new share, projected
        new_share = decode_scalars(p2_bits, width, params.ell)

        # We saw the leading `len(p1_bits)` bits of the new sk_comm.
        seen_new_key_bits = len(p1_bits)
        missing = m1 - seen_new_key_bits
        if missing > self.max_work_bits:
            return  # enumeration infeasible: give up, guess randomly

        known = p1_bits
        encrypted = self.view.device1.public.read(ENC_SHARE_SLOT)
        hpske = HPSKE(group, params.kappa, space="G")
        z = self.view.public_key.z

        for candidate_suffix in range(1 << missing):
            self.attempted_candidates += 1
            full = (int(known) << missing) | candidate_suffix
            scalars = decode_scalars(BitString(full, m1), width, params.kappa)
            candidate_key = HPSKEKey(tuple(scalars), group.p)
            elements = [hpske.decrypt(candidate_key, ct) for ct in encrypted]
            master = elements[-1]
            for a_i, s_i in zip(elements[:-1], new_share):
                master = master / (a_i ** s_i)
            # Verify the candidate: e(g, msk) must equal z = e(g1, g2).
            if group.pair(group.g, master) == z:
                self.master_secret = master  # type: ignore[assignment]
                return

    def guess(self, challenge: Ciphertext, m0: GTElement, m1: GTElement) -> int:
        if self.master_secret is None:
            return self.rng.getrandbits(1)
        group = self.scheme.group
        recovered = challenge.b / group.pair(challenge.a, self.master_secret)
        if recovered == m0:
            return 0
        if recovered == m1:
            return 1
        return self.rng.getrandbits(1)
