"""Samplers for the paper's hardness assumptions (section 2.1).

These produce instances of the BDDH, kLin and matrix-kLin distributions.
They serve three purposes:

* tests verify the *structural* properties (a real BDDH tuple satisfies
  ``T = e(g,g)^{abc}``; a rank-``i`` matrix sample has rank ``i``);
* toy-group experiments confirm the two sides of each assumption are
  *distinct distributions* (they must be, or the assumption is vacuous)
  while being indistinguishable to the generic attacks we implement;
* the section 6 fake game consumes BDDH tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.groups.bilinear import BilinearGroup, G1Element, GTElement
from repro.math import linalg


@dataclass(frozen=True)
class BDDHTuple:
    """``(g^a, g^b, g^c, T)`` with ``T`` either ``e(g,g)^{abc}`` or random.

    ``exponents`` carries ``(a, b, c)`` for white-box tests; a real
    distinguisher never sees it.
    """

    g_a: G1Element
    g_b: G1Element
    g_c: G1Element
    t: GTElement
    real: bool
    exponents: tuple[int, int, int]


def sample_bddh(group: BilinearGroup, rng: random.Random, real: bool) -> BDDHTuple:
    """Sample from one side of the BDDH assumption."""
    a, b, c = (group.random_scalar(rng) for _ in range(3))
    if real:
        t = group.gt_generator() ** (a * b * c % group.p)
    else:
        t = group.gt_generator() ** group.random_scalar(rng)
    return BDDHTuple(group.g ** a, group.g ** b, group.g ** c, t, real, (a, b, c))


@dataclass(frozen=True)
class KLinTuple:
    """``(g_0..g_k, g_1^{r_1}..g_k^{r_k}, g_0^{r_0 or sum r_i})``."""

    generators: tuple[G1Element, ...]  # g_0 .. g_k
    powers: tuple[G1Element, ...]  # g_i^{r_i} for i in [k]
    head: G1Element  # g_0^{sum r_i} (real) or g_0^{r_0} (random)
    real: bool


def sample_klin(
    group: BilinearGroup, k: int, rng: random.Random, real: bool
) -> KLinTuple:
    """Sample from one side of the k-Linear assumption."""
    generators = tuple(group.random_g(rng) for _ in range(k + 1))
    r = [group.random_scalar(rng) for _ in range(k)]
    powers = tuple(g_i ** r_i for g_i, r_i in zip(generators[1:], r))
    exponent = sum(r) % group.p if real else group.random_scalar(rng)
    return KLinTuple(generators, powers, generators[0] ** exponent, real)


def sample_matrix_klin(
    group: BilinearGroup,
    rows: int,
    cols: int,
    rank: int,
    rng: random.Random,
) -> list[list[G1Element]]:
    """Sample ``g^R`` for uniform ``R`` of the given rank (the matrix kLin
    distribution ``{(p, g, g^R)}_{R in Rk_i}``)."""
    matrix = linalg.random_matrix_of_rank(rows, cols, rank, group.p, rng)
    return [[group.g ** entry for entry in row] for row in matrix]


def is_bddh_consistent(group: BilinearGroup, tup: BDDHTuple) -> bool:
    """White-box check ``T = e(g,g)^{abc}`` using the stored exponents."""
    a, b, c = tup.exponents
    return tup.t == group.gt_generator() ** (a * b * c % group.p)
