"""The CPA-against-CML game for the distributed IBE (paper sections 3.3
and 4.2 -- "our definitions for distributed identity based encryption
are analogous").

Relative to the DPKE game, the IBE adversary additionally drives a
*key-extraction oracle*: at each period it may name identities whose key
shares the devices derive via the 2-party extraction protocol (leaking
under the normal ``(b1, b2)`` budgets, per Remark 4.1).  The challenge
identity must be one the adversary never had extracted -- the game
enforces this, mirroring the standard IBE restriction.

Per period the challenger also runs one background identity-decryption
(the distribution C analog) and refreshes the master shares plus every
extracted identity's shares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.games import GameResult
from repro.errors import LeakageBudgetExceeded, ProtocolError
from repro.groups.bilinear import GTElement
from repro.ibe.boneh_boyen import IBECiphertext, IBEPublicParams
from repro.ibe.dlr_ibe import DLRIBE
from repro.leakage.functions import LeakageFunction, LeakageInput
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.utils.bits import BitString
from repro.utils.rng import fork_rng


@dataclass
class IBEPeriodRequest:
    """What the adversary asks of one time period."""

    extract_identities: list[str]
    h1: LeakageFunction
    h1_refresh: LeakageFunction
    h2: LeakageFunction
    h2_refresh: LeakageFunction


@dataclass
class IBEAdversaryView:
    public_params: IBEPublicParams
    channel: Channel
    device1: Device
    device2: Device
    extracted: set[str] = field(default_factory=set)
    leakage_log: list[tuple[int, dict[tuple[int, str], BitString]]] = field(
        default_factory=list
    )


class IBEAdversary:
    """Base DIBE adversary: no extractions, no leakage, random guess."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.view: IBEAdversaryView | None = None

    def begin(self, view: IBEAdversaryView) -> None:
        self.view = view

    def period_request(self, period: int) -> IBEPeriodRequest | None:
        return None

    def observe_leakage(self, period: int, results) -> None:
        if self.view is not None:
            self.view.leakage_log.append((period, results))

    def choose_challenge(self) -> tuple[str, GTElement, GTElement]:
        """Return (identity, m0, m1); identity must be unextracted."""
        assert self.view is not None
        group = self.view.public_params.group
        m0 = group.random_gt(self.rng)
        while True:
            m1 = group.random_gt(self.rng)
            if m1 != m0:
                break
        return "challenge-identity", m0, m1

    def guess(self, challenge: IBECiphertext, m0: GTElement, m1: GTElement) -> int:
        return self.rng.getrandbits(1)


class IBECPACMLGame:
    """The Definition 3.2 game, IBE flavor."""

    def __init__(
        self,
        scheme: DLRIBE,
        budget: LeakageBudget,
        rng: random.Random,
        max_periods: int = 16,
    ) -> None:
        self.scheme = scheme
        self.budget = budget
        self.rng = rng
        self.max_periods = max_periods

    def run(self, adversary: IBEAdversary) -> GameResult:
        rng = fork_rng(self.rng, "ibe-game")
        scheme = self.scheme
        setup = scheme.setup(rng)
        oracle = LeakageOracle(self.budget)
        group = scheme.group

        device1 = Device("P1", group, rng)
        device2 = Device("P2", group, rng)
        channel = Channel()
        scheme.install(device1, device2, setup.share1, setup.share2)

        view = IBEAdversaryView(setup.public_params, channel, device1, device2)
        adversary.begin(view)

        periods = 0
        for period in range(self.max_periods):
            request = adversary.period_request(period)
            if request is None:
                break

            # --- normal phase: extractions + one background decryption --
            snap1 = device1.secret.open_phase(f"t{period}.normal")
            snap2 = device2.secret.open_phase(f"t{period}.normal")
            for identity in request.extract_identities:
                if identity in view.extracted:
                    continue
                scheme.extract_protocol(
                    setup.public_params, device1, device2, channel, identity
                )
                view.extracted.add(identity)
            if view.extracted:
                target = sorted(view.extracted)[rng.randrange(len(view.extracted))]
                background = scheme.encrypt_to(
                    setup.public_params, target, group.random_gt(rng), rng
                )
                scheme.decrypt_protocol_id(device1, device2, channel, target, background)
            device1.secret.close_phase()
            device2.secret.close_phase()

            # --- refresh phase: master + every identity share ------------
            ref1 = device1.secret.open_phase(f"t{period}.refresh")
            ref2 = device2.secret.open_phase(f"t{period}.refresh")
            scheme.refresh_protocol(device1, device2, channel)
            for identity in sorted(view.extracted):
                scheme.refresh_identity_protocol(
                    setup.public_params, device1, device2, channel, identity
                )
            device1.secret.close_phase()
            device2.secret.close_phase()

            public = channel.transcript(channel.current_period)
            try:
                results = {
                    (1, "normal"): oracle.leak(
                        1, request.h1, LeakageInput(snap1, public)
                    ),
                    (2, "normal"): oracle.leak(
                        2, request.h2, LeakageInput(snap2, public)
                    ),
                    (1, "refresh"): oracle.leak_refresh(
                        1, request.h1_refresh, LeakageInput(ref1, public)
                    ),
                    (2, "refresh"): oracle.leak_refresh(
                        2, request.h2_refresh, LeakageInput(ref2, public)
                    ),
                }
            except LeakageBudgetExceeded as exc:
                return GameResult(False, 0, 0, periods, aborted=True, abort_reason=str(exc))
            oracle.end_period()
            channel.advance_period()
            adversary.observe_leakage(period, results)
            periods += 1

        identity, m0, m1 = adversary.choose_challenge()
        if identity in view.extracted:
            raise ProtocolError(
                "challenge identity was extracted -- the game forbids this"
            )
        bit = rng.getrandbits(1)
        challenge = scheme.encrypt_to(
            setup.public_params, identity, (m0, m1)[bit], rng
        )
        guess = adversary.guess(challenge, m0, m1)
        return GameResult(guess == bit, bit, guess, periods)
