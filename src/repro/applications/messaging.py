"""The paper's motivating deployments (section 1.1), as ready-to-use
facades.

:class:`SharedKeySession` -- the *symmetric encryption* scenario:
    "If instead the processors agree in person on a common secret key
    but each stores only a share of it, they could still decrypt and
    refresh the secret key via an interactive protocol, but the leakage
    will be restricted to be computed on each share separately."
    The in-person agreement is ``Gen``; afterwards either processor's
    host can encrypt to the pair, and decryption/refresh are the DLR
    protocols between the two shares.

:class:`DecryptionService` -- the *auxiliary device* scenario: a main
    processor plus a smart card jointly serve decryptions, with
    automatic share refresh every ``refresh_every`` decryptions (the
    period schedule) and leakage snapshots retrievable per period.
"""

from __future__ import annotations

import hashlib
import random

from repro.core.dlr import DLR, PeriodRecord
from repro.core.keys import Ciphertext, PublicKey
from repro.core.optimal import OptimalDLR
from repro.core.params import DLRParams
from repro.errors import ProtocolError
from repro.groups.bilinear import GTElement
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.utils.rng import fork_rng


class SharedKeySession:
    """Two processors with a jointly held (split) key.

    Construction: ``Gen`` runs "in person" (trusted setup); each
    processor keeps one share.  Messages are encrypted under the joint
    public key -- by either processor or by third parties -- and
    decrypted cooperatively.  ``rekey_period`` runs the refresh protocol.
    """

    def __init__(self, params: DLRParams, rng: random.Random) -> None:
        self.params = params
        self.group = params.group
        self.scheme = DLR(params)
        self.rng = fork_rng(rng, "shared-key-session")
        generation = self.scheme.generate(self.rng)
        self.public_key: PublicKey = generation.public_key
        self.processor_a = Device("P1", self.group, self.rng)
        self.processor_b = Device("P2", self.group, self.rng)
        self.channel = Channel()
        self.scheme.install(
            self.processor_a, self.processor_b, generation.share1, generation.share2
        )
        self.messages_exchanged = 0

    def encrypt(self, message: GTElement, rng: random.Random | None = None) -> Ciphertext:
        """Anyone holding the public key can encrypt to the pair."""
        return self.scheme.encrypt(self.public_key, message, rng or self.rng)

    def encrypt_bytes(
        self, payload: bytes, rng: random.Random | None = None
    ) -> tuple[Ciphertext, bytes]:
        """KEM-DEM: returns (key encapsulation, XOR-masked payload)."""
        rng = rng or self.rng
        session_key = self.group.random_gt(rng)
        pad = _pad(session_key, len(payload))
        return self.encrypt(session_key, rng), bytes(
            a ^ b for a, b in zip(payload, pad)
        )

    def decrypt(self, ciphertext: Ciphertext) -> GTElement:
        """Cooperative decryption between the two processors."""
        self.messages_exchanged += 1
        return self.scheme.decrypt_protocol(
            self.processor_a, self.processor_b, self.channel, ciphertext
        )

    def decrypt_bytes(self, encapsulation: Ciphertext, masked: bytes) -> bytes:
        session_key = self.decrypt(encapsulation)
        pad = _pad(session_key, len(masked))
        return bytes(a ^ b for a, b in zip(masked, pad))

    def rekey_period(self) -> None:
        """End of a time period: refresh both shares."""
        self.scheme.refresh_protocol(self.processor_a, self.processor_b, self.channel)
        self.channel.advance_period()


class DecryptionService:
    """Main processor + auxiliary device serving decryptions with
    automatic periodic refresh."""

    def __init__(
        self,
        params: DLRParams,
        rng: random.Random,
        refresh_every: int = 1,
        optimal: bool = True,
    ) -> None:
        if refresh_every < 1:
            raise ProtocolError("refresh_every must be >= 1")
        self.params = params
        self.group = params.group
        self.scheme = OptimalDLR(params) if optimal else DLR(params)
        self.rng = fork_rng(rng, "decryption-service")
        generation = self.scheme.generate(self.rng)
        self.public_key: PublicKey = generation.public_key
        self.main_processor = Device("P1", self.group, self.rng)
        self.auxiliary = Device("P2", self.group, self.rng)
        self.channel = Channel()
        self.scheme.install(
            self.main_processor, self.auxiliary, generation.share1, generation.share2
        )
        self.refresh_every = refresh_every
        self.decryptions_served = 0
        self.refreshes_performed = 0
        self.period_records: list[PeriodRecord] = []

    def decrypt(self, ciphertext: Ciphertext) -> GTElement:
        """Serve one decryption; refresh when the schedule says so.

        When a refresh is due, the decryption and refresh run as one
        observed period (the faithful coin-reuse flow) and the period's
        leakage snapshots are retained in ``period_records``.
        """
        self.decryptions_served += 1
        if self.decryptions_served % self.refresh_every == 0:
            record = self.scheme.run_period(
                self.main_processor, self.auxiliary, self.channel, ciphertext
            )
            self.refreshes_performed += 1
            self.period_records.append(record)
            return record.plaintext
        return self.scheme.decrypt_protocol(
            self.main_processor, self.auxiliary, self.channel, ciphertext
        )

    def leakage_surface_bits(self) -> dict[str, int]:
        """Current essential secret-memory sizes, per device."""
        return {
            "main_processor": self.main_processor.secret.size_bits(),
            "auxiliary": self.auxiliary.secret.size_bits(),
        }


def _pad(key_element: GTElement, length: int) -> bytes:
    seed = key_element.to_bits().to_bytes()
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(counter.to_bytes(4, "big") + seed).digest()
        counter += 1
    return out[:length]
