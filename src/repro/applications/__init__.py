"""Deployment-shaped facades over the core schemes.

* :mod:`repro.applications.messaging` -- the two scenarios of paper
  section 1.1: a shared-key session between two processors, and a
  decryption service backed by a main processor + auxiliary device.
"""

from repro.applications.messaging import DecryptionService, SharedKeySession

__all__ = ["DecryptionService", "SharedKeySession"]
