"""Identity-based encryption: the Boneh-Boyen substrate and DLRIBE.

* :mod:`repro.ibe.identity_hash` -- the hash ``H(ID) -> {0,1}^{n_id}``.
* :mod:`repro.ibe.boneh_boyen` -- the (single-processor) BB-style IBE the
  paper builds on [5], used both as substrate and as a baseline.
* :mod:`repro.ibe.dlr_ibe` -- DLRIBE (paper section 4.2): master secret
  key *and* identity secret keys shared across two devices, with 2-party
  extraction, decryption and refresh protocols.
"""

from repro.ibe.boneh_boyen import BonehBoyenIBE, IBECiphertext, IBEPublicParams, IdentityKey
from repro.ibe.dlr_ibe import DLRIBE, IdentityShare1
from repro.ibe.identity_hash import hash_identity

__all__ = [
    "BonehBoyenIBE",
    "DLRIBE",
    "IBECiphertext",
    "IBEPublicParams",
    "IdentityKey",
    "IdentityShare1",
    "hash_identity",
]
