"""The identity hash ``H(ID) = (b_1, ..., b_{n_id})``.

The paper evaluates "an appropriate hash function H on the underlying
identity" and indexes the matrix ``U in G^{n x 2}`` by the resulting
coordinates, i.e. each coordinate selects one of two columns -- a bit.
We instantiate ``H`` with SHA-256 in counter mode, modeled as a random
oracle, and expose the output as a tuple of bits.
"""

from __future__ import annotations

import hashlib

from repro.errors import ParameterError


def hash_identity(identity: str | bytes, n_id: int) -> tuple[int, ...]:
    """Return ``H(ID)`` as ``n_id`` bits (each selects a column of U)."""
    if n_id < 1:
        raise ParameterError("identity hash length must be positive")
    if isinstance(identity, str):
        identity = identity.encode("utf-8")
    bits: list[int] = []
    counter = 0
    while len(bits) < n_id:
        digest = hashlib.sha256(counter.to_bytes(4, "big") + identity).digest()
        for byte in digest:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
                if len(bits) == n_id:
                    return tuple(bits)
        counter += 1
    return tuple(bits)
