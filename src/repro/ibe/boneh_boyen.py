"""The Boneh-Boyen-style IBE the paper builds on (reference [5], in the
per-bit variant of paper section 4.2).

Public parameters: ``(p, g, e, g1 = g^alpha, g2, U)`` with
``U = (u_{j,0}, u_{j,1})_{j in [n_id]}`` uniform in ``G^{n_id x 2}``;
master secret key ``msk = g2^alpha``.

* ``Extract(ID)``: with ``H(ID) = (b_1..b_{n_id})``, sample
  ``r_1..r_{n_id}`` and output
  ``sk_ID = (g^{r_1}, ..., g^{r_{n_id}}, M = g2^alpha prod_j
  u_{j,b_j}^{r_j})``.
* ``Enc(ID, m)``: ``(g^t, (u_{j,b_j}^t)_j, m * e(g1,g2)^t)``.
* ``Dec``: ``m = B * prod_j e(C_j, g^{r_j}) / e(A, M)``.

This single-processor scheme serves two roles: the substrate DLRIBE
shares (its identity keys are what gets secret-shared) and a baseline
the DIBE tests compare functionality against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.groups.bilinear import BilinearGroup, G1Element, GTElement
from repro.ibe.identity_hash import hash_identity
from repro.utils.bits import BitString, concat_all


@dataclass(frozen=True)
class IBEPublicParams:
    """Public parameters of the (distributed or plain) BB-style IBE."""

    group: BilinearGroup
    g1: G1Element
    g2: G1Element
    u: tuple[tuple[G1Element, G1Element], ...]
    z: GTElement  # e(g1, g2)

    @property
    def n_id(self) -> int:
        return len(self.u)

    def u_for(self, id_bits: tuple[int, ...]) -> tuple[G1Element, ...]:
        """The column selection ``(u_{j, b_j})_j`` for hashed identity bits."""
        if len(id_bits) != self.n_id:
            raise ParameterError("identity hash length mismatch")
        return tuple(self.u[j][b] for j, b in enumerate(id_bits))


@dataclass(frozen=True)
class IdentityKey:
    """``sk_ID = ((g^{r_j})_j, M)`` of the single-processor scheme."""

    r_pub: tuple[G1Element, ...]
    m: G1Element

    def to_bits(self) -> BitString:
        return concat_all(e.to_bits() for e in self.r_pub) + self.m.to_bits()


@dataclass(frozen=True)
class IBECiphertext:
    """``(A, (C_j)_j, B) = (g^t, (u_{j,b_j}^t)_j, m z^t)``."""

    a: G1Element
    c: tuple[G1Element, ...]
    b: GTElement

    def to_bits(self) -> BitString:
        return self.a.to_bits() + concat_all(e.to_bits() for e in self.c) + self.b.to_bits()

    def size_group_elements(self) -> int:
        return 2 + len(self.c)


class BonehBoyenIBE:
    """The plain (single-processor) IBE."""

    def __init__(self, group: BilinearGroup, n_id: int = 16) -> None:
        if n_id < 1:
            raise ParameterError("n_id must be positive")
        self.group = group
        self.n_id = n_id

    def setup(self, rng: random.Random) -> tuple[IBEPublicParams, G1Element]:
        """Return ``(public params, msk = g2^alpha)``."""
        group = self.group
        alpha = group.random_scalar(rng)
        g1 = group.g ** alpha
        g2 = group.random_g(rng)
        u = tuple(
            (group.random_g(rng), group.random_g(rng)) for _ in range(self.n_id)
        )
        z = group.pair(g1, g2)
        return IBEPublicParams(group, g1, g2, u, z), g2 ** alpha

    def extract(
        self,
        pp: IBEPublicParams,
        msk: G1Element,
        identity: str | bytes,
        rng: random.Random,
    ) -> IdentityKey:
        """Derive ``sk_ID`` from the master secret key."""
        id_bits = hash_identity(identity, self.n_id)
        u_sel = pp.u_for(id_bits)
        r = [self.group.random_scalar(rng) for _ in range(self.n_id)]
        m = msk
        for u_j, r_j in zip(u_sel, r):
            m = m * (u_j ** r_j)
        r_pub = tuple(self.group.g ** r_j for r_j in r)
        return IdentityKey(r_pub=r_pub, m=m)

    def encrypt(
        self,
        pp: IBEPublicParams,
        identity: str | bytes,
        message: GTElement,
        rng: random.Random,
    ) -> IBECiphertext:
        id_bits = hash_identity(identity, self.n_id)
        u_sel = pp.u_for(id_bits)
        t = self.group.random_scalar(rng)
        return IBECiphertext(
            a=self.group.g ** t,
            c=tuple(u_j ** t for u_j in u_sel),
            b=message * (pp.z ** t),
        )

    def decrypt(self, key: IdentityKey, ciphertext: IBECiphertext) -> GTElement:
        """``m = B * prod_j e(C_j, g^{r_j}) / e(A, M)``."""
        group = self.group
        numerator = ciphertext.b
        for c_j, r_j in zip(ciphertext.c, key.r_pub):
            numerator = numerator * group.pair(c_j, r_j)
        return numerator / group.pair(ciphertext.a, key.m)
