"""A bounded LRU cache of extracted identity-key state for DLRIBE.

Identity keys are *derived* material: re-extractable from the master
shares at any time, never checkpointed, but each extraction costs a full
2-party protocol (one ``ell``-wide refresh-shaped exchange).  Keeping
every extracted key resident forever is also not free -- the shares live
in the devices' **secret** memory, which the leakage model prices per
bit.  This cache bounds that residency: it tracks which identities
currently hold usable shares on the devices, evicts the
least-recently-used identity when the bound is hit (the scheme then
erases its slots on both devices), and decides when a cached extraction
may be *reused* instead of re-run (:meth:`DLRIBE.extract_batch
<repro.ibe.dlr_ibe.DLRIBE.extract_batch>` skips fresh entries).

Two invalidation mechanisms, both leakage-ledger-aware:

* **Generation tokens** -- every (re-)extraction and every successful
  identity refresh mints a new generation for that identity, so any
  holder of an older token (a session that captured key state before
  the rotation) observes staleness and must re-resolve.  This is the
  per-identity analogue of the share rotation the continual-leakage
  model is built on.
* **Epochs** -- :meth:`advance_epoch` marks *every* entry stale at once.
  The scheme calls it when the master shares rotate (a period boundary
  on the master leakage ledger): shares extracted under the previous
  master generation keep decrypting, but their accumulated leakage
  belongs to a closed ledger period, so the cache stops vouching for
  them and the next batch re-extracts fresh shares.

The cache itself holds **no key material** -- only identity strings and
counters -- so it lives outside the leakage accounting and can be
inspected freely (``stats``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class CacheToken:
    """An opaque freshness witness for one cached identity extraction."""

    identity: str
    generation: int
    epoch: int


class IdentityKeyCache:
    """LRU over identities with generation/epoch invalidation."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ParameterError("extract cache capacity must be >= 1")
        self.capacity = capacity
        #: identity -> (generation, epoch); insertion order is LRU order.
        self._entries: "OrderedDict[str, tuple[int, int]]" = OrderedDict()
        self._generation = 0
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- recording -------------------------------------------------------

    def record(self, identity: str) -> str | None:
        """Mark ``identity`` as freshly extracted (or refreshed).

        Mints a new generation -- any previously issued token for this
        identity is stale from here on -- and moves the entry to
        most-recently-used.  Returns the identity evicted to stay within
        ``capacity`` (the caller must erase its device slots), or
        ``None`` if nothing was evicted.
        """
        self._generation += 1
        self._entries.pop(identity, None)
        self._entries[identity] = (self._generation, self._epoch)
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    def touch(self, identity: str) -> None:
        """Move a present entry to most-recently-used (a cache *use*)."""
        entry = self._entries.pop(identity, None)
        if entry is not None:
            self._entries[identity] = entry

    # -- freshness -------------------------------------------------------

    def is_fresh(self, identity: str) -> bool:
        """Is there an entry from the *current* epoch for ``identity``?

        Entries from earlier epochs still exist (the device shares still
        decrypt) but are not vouched for -- the caller should re-extract.
        Counts toward hit/miss statistics.
        """
        entry = self._entries.get(identity)
        if entry is not None and entry[1] == self._epoch:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def token(self, identity: str) -> CacheToken | None:
        """The current freshness witness, or ``None`` if absent/stale."""
        entry = self._entries.get(identity)
        if entry is None or entry[1] != self._epoch:
            return None
        return CacheToken(identity, entry[0], entry[1])

    def is_current(self, token: CacheToken) -> bool:
        """Does ``token`` still witness the live extraction state?

        False once the identity was refreshed/re-extracted (generation
        moved on), evicted, explicitly invalidated, or the epoch
        advanced (master rotation).
        """
        entry = self._entries.get(token.identity)
        return (
            entry is not None
            and entry == (token.generation, token.epoch)
            and entry[1] == self._epoch
        )

    # -- invalidation ----------------------------------------------------

    def invalidate(self, identity: str) -> bool:
        """Drop one identity (aborted protocol, explicit revocation)."""
        return self._entries.pop(identity, None) is not None

    def advance_epoch(self) -> int:
        """Master-rotation boundary: every cached entry becomes stale.

        Entries are kept (their LRU position still orders future
        evictions) but no longer fresh; re-extraction re-stamps them.
        Returns the new epoch.
        """
        self._epoch += 1
        return self._epoch

    def clear(self) -> None:
        self._entries.clear()

    # -- introspection ---------------------------------------------------

    def __contains__(self, identity: str) -> bool:
        return identity in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def epoch(self) -> int:
        return self._epoch

    def identities(self) -> list[str]:
        """Resident identities, least- to most-recently-used."""
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "epoch": self._epoch,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
