"""DLRIBE: distributed IBE secure against continual memory leakage
(paper section 4.2).

Both the master secret key *and* every identity secret key are shared
between the two devices:

* the master shares and their refresh protocol are identical to DLR's
  (``msk = g2^alpha`` shared via Pi_ss), so :class:`DLRIBE` subclasses
  :class:`~repro.core.dlr.DLR` and inherits them;
* an identity key ``sk_ID = ((g^{r_j})_j, M = g2^alpha prod_j
  u_{j,b_j}^{r_j})`` is shared as
  ``sk_ID^1 = ((g^{r_j})_j, (a'_i)_i, Psi = M prod_i a'_i{}^{s'_i})`` and
  ``sk_ID^2 = (s'_1..s'_ell)``.

The 2-party protocols (all engine-driven step-generator pairs; P2's
steps are the shared DLR generators -- the identity protocols differ
from the master ones only in P1's local computation and the labels):

* **Extraction** mirrors the refresh protocol: P1 samples the BB
  randomness ``r_j`` and fresh ``a'_i``, sends
  ``(Enc'(a_i), Enc'(a'_i))_i`` and ``Enc'(Phi * prod u_{j,b_j}^{r_j})``;
  P2 samples ``s'`` and returns the blinded combination, which decrypts
  to ``Psi``.  Per Remark 4.1 the leakage bound during extraction is the
  normal ``(b1, b2)`` -- only *master* key generation needs ``b0``.
* **Identity decryption** mirrors DLR decryption after P1 folds
  ``prod_j e(C_j, g^{r_j})`` into ``B``.
* **Identity refresh** additionally re-randomizes the BB exponents:
  P1 shifts ``r_j -> r_j + delta_j`` by multiplying ``g^{delta_j}`` into
  the public parts and ``prod u_{j,b_j}^{delta_j}`` into the blinded
  ``Psi`` homomorphically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.dlr import DLR, MultiPeriodRecord, PeriodRecord, combine_refresh
from repro.core.keys import Share1, Share2
from repro.errors import ProtocolError
from repro.groups.bilinear import G1Element, GTElement
from repro.ibe.boneh_boyen import BonehBoyenIBE, IBECiphertext, IBEPublicParams
from repro.ibe.extract_cache import IdentityKeyCache
from repro.ibe.identity_hash import hash_identity
from repro.protocol.device import Device
from repro.protocol.engine import Commit, ProtocolSpec, Recv, Send, StagedShare
from repro.protocol.memory import PhaseSnapshot
from repro.protocol.transport import Transport
from repro.telemetry.tracer import traced
from repro.utils.bits import BitString, concat_all


@dataclass(frozen=True)
class IdentityShare1:
    """P1's share of an identity key: ``((g^{r_j})_j, (a'_i)_i, Psi)``."""

    r_pub: tuple[G1Element, ...]
    a: tuple[G1Element, ...]
    psi: G1Element

    def to_bits(self) -> BitString:
        return (
            concat_all(e.to_bits() for e in self.r_pub)
            + concat_all(e.to_bits() for e in self.a)
            + self.psi.to_bits()
        )

    def size_bits(self) -> int:
        return len(self.to_bits())


@dataclass
class DIBESetupResult:
    """Output of DLRIBE setup: public params, master shares, and the
    secret setup randomness (input to ``h_Gen``)."""

    public_params: IBEPublicParams
    share1: Share1
    share2: Share2
    randomness: PhaseSnapshot


def _id_slot(device_index: int, identity: str) -> str:
    return f"id.{identity}.sk{device_index}"


@dataclass
class IdentityPeriodRecord:
    """One identity-key time period (extract-if-absent, decrypt, refresh)."""

    period: int
    identity: str
    plaintext: GTElement
    extracted: bool  # whether this period had to (re-)extract the key
    messages: list


class DLRIBE(DLR):
    """The distributed leakage-resilient IBE."""

    span_kind = "dlribe"

    def __init__(
        self, params, n_id: int = 16, extract_cache_size: int = 32
    ) -> None:
        super().__init__(params)
        self.n_id = n_id
        self._bb = BonehBoyenIBE(params.group, n_id)
        #: Bounded LRU over extracted identities; entries go stale on
        #: identity refresh (new generation) and on master rotation
        #: (epoch advance).  See :mod:`repro.ibe.extract_cache`.
        self.extract_cache = IdentityKeyCache(extract_cache_size)

    # ------------------------------------------------------------------
    # Setup (master key generation)
    # ------------------------------------------------------------------

    @traced("setup")
    def setup(self, rng: random.Random) -> DIBESetupResult:
        """Master key generation: BB public parameters + DLR-style shares
        of ``msk = g2^alpha``."""
        group = self.group
        base = self.generate(rng)  # DLR generation: shares of g2^alpha
        randomness = base.randomness
        # The DLR public key hides g1, g2; the IBE needs them public,
        # along with the U matrix.
        g2 = randomness.get("g2")
        alpha_mem = randomness.get("alpha")
        assert isinstance(g2, G1Element)
        g1 = group.g ** int(alpha_mem)  # type: ignore[call-overload]
        u = tuple((group.random_g(rng), group.random_g(rng)) for _ in range(self.n_id))
        pp = IBEPublicParams(group, g1, g2, u, base.public_key.z)
        return DIBESetupResult(pp, base.share1, base.share2, randomness)

    # ------------------------------------------------------------------
    # Encryption (public operation, identical to BB)
    # ------------------------------------------------------------------

    @traced("enc")
    def encrypt_to(
        self,
        pp: IBEPublicParams,
        identity: str,
        message: GTElement,
        rng: random.Random,
    ) -> IBECiphertext:
        return self._bb.encrypt(pp, identity, message, rng)

    # ------------------------------------------------------------------
    # 2-party identity key extraction
    # ------------------------------------------------------------------

    @traced("extract")
    def extract_protocol(
        self,
        pp: IBEPublicParams,
        device1: Device,
        device2: Device,
        channel: Transport,
        identity: str,
    ) -> None:
        """Derive and install the identity key shares for ``identity``.

        Requires the master shares to be installed (``DLR.install``).
        A mid-protocol failure erases any partially installed identity
        share on either device (the ``abort_erase`` entries of the spec;
        the master shares are never touched), so extraction can simply
        be retried.
        """
        msk1 = self.share1_of(device1)
        ell = self.params.ell
        u_sel = pp.u_for(hash_identity(identity, self.n_id))

        def p1():
            with device1.computing():
                # BB randomness r_j: secret while the blinded M is formed.
                r = [self.group.random_scalar(device1.rng) for _ in range(self.n_id)]
                device1.secret.store("ext.r", Share2(tuple(r), self.group.p))
                r_pub = tuple(self.group.g ** r_j for r_j in r)
                # Phi * prod_j u_j^{r_j} as one multiexp (Phi rides along
                # with exponent 1).
                blinding = G1Element.multiexp((msk1.phi, *u_sel), (1, *r))

                sk_comm = self.hpske_g.keygen(device1.rng)
                device1.secret.store("ext.sk_comm", sk_comm)
                fresh_a = tuple(self.group.random_g(device1.rng) for _ in range(ell))
                device1.secret.store("ext.a_next", list(fresh_a), derived=True)
                f_pairs = tuple(
                    (
                        self.hpske_g.encrypt(sk_comm, msk1.a[i], device1.rng),
                        self.hpske_g.encrypt(sk_comm, fresh_a[i], device1.rng),
                    )
                    for i in range(ell)
                )
                f_m = self.hpske_g.encrypt(sk_comm, blinding, device1.rng)
            yield Send("ext.f", (f_pairs, f_m))

            message = yield Recv("ext.f_combined")
            with device1.computing():
                psi = self.hpske_g.decrypt(sk_comm, message.payload)
            assert isinstance(psi, G1Element)
            device1.secret.store(
                _id_slot(1, identity), IdentityShare1(r_pub=r_pub, a=fresh_a, psi=psi)
            )

        def p2():
            # Identical shape to the refresh step, but the fresh scalars
            # become the *identity* share, leaving the master share in place.
            message = yield Recv("ext.f")
            f_pairs, f_m = message.payload
            msk2 = self.share2_of(device2)
            with device2.computing():
                id_share2 = Share2(
                    tuple(self.group.random_scalar(device2.rng) for _ in range(ell)),
                    self.group.p,
                )
                combined = combine_refresh(msk2, id_share2, f_pairs, f_m)
            device2.secret.store(_id_slot(2, identity), id_share2)
            yield Send("ext.f_combined", combined)

        spec = ProtocolSpec(
            "dlribe.extract",
            device1,
            device2,
            p1,
            p2,
            secrets1=("ext.r", "ext.sk_comm", "ext.a_next"),
            # A half-installed identity key must not linger on either side.
            abort_erase=((1, _id_slot(1, identity)), (2, _id_slot(2, identity))),
        )
        try:
            self._run_engine(spec, channel)
        except Exception:
            self.extract_cache.invalidate(identity)
            raise
        self._record_extraction(device1, device2, identity)

    def _record_extraction(
        self, device1: Device, device2: Device, identity: str
    ) -> None:
        """Stamp ``identity`` fresh in the extract cache; if the LRU
        bound pushed another identity out, erase its share slots on both
        devices (the cache bounds secret-memory residency, so eviction
        must actually free the slots)."""
        evicted = self.extract_cache.record(identity)
        if evicted is not None and evicted != identity:
            device1.secret.erase_if_present(_id_slot(1, evicted))
            device2.secret.erase_if_present(_id_slot(2, evicted))

    @traced("extract_batch")
    def extract_batch(
        self,
        pp: IBEPublicParams,
        device1: Device,
        device2: Device,
        channel: Transport,
        identities: "list[str]",
        skip_cached: bool = True,
    ) -> list[str]:
        """Extract identity keys for a whole vector in **one** protocol.

        Amortisation: a single ``sk_comm`` and a single set of old-share
        encryptions ``Enc'(a_i)`` serve every identity -- only the fresh
        ``a'`` encryptions, the blinded ``M``, and P2's fresh scalars are
        per-identity (labels ``ext.<i>.*``).  This is the batch analogue
        of the section 5.2 coin-reuse remark applied to extraction.

        With ``skip_cached`` (the default), identities whose extraction
        is cache-fresh *and* whose shares are still resident on both
        devices are skipped; duplicates are extracted once.  Returns the
        identities actually extracted, in protocol order.  A mid-batch
        failure erases every identity share the batch touched on both
        devices (``abort_erase``) plus their cache entries, so a retry
        re-extracts the whole batch.
        """
        todo: list[str] = []
        seen: set[str] = set()
        for identity in identities:
            if identity in seen:
                continue
            seen.add(identity)
            if (
                skip_cached
                and self.extract_cache.is_fresh(identity)
                and self.has_identity_key(device1, device2, identity)
            ):
                self.extract_cache.touch(identity)
                continue
            todo.append(identity)
        if not todo:
            return []

        msk1 = self.share1_of(device1)
        ell = self.params.ell

        def p1():
            with device1.computing():
                sk_comm = self.hpske_g.keygen(device1.rng)
                device1.secret.store("ext.sk_comm", sk_comm)
                # The shared leg: Enc'(a_i) of the *old* master share is
                # identity-independent, so one set serves the batch.
                f_old = tuple(
                    self.hpske_g.encrypt(sk_comm, msk1.a[i], device1.rng)
                    for i in range(ell)
                )
            for index, identity in enumerate(todo):
                u_sel = pp.u_for(hash_identity(identity, self.n_id))
                with device1.computing():
                    r = [
                        self.group.random_scalar(device1.rng)
                        for _ in range(self.n_id)
                    ]
                    # Overwritten per identity: one identity's BB
                    # randomness in the clear at a time.
                    device1.secret.store("ext.r", Share2(tuple(r), self.group.p))
                    r_pub = tuple(self.group.g ** r_j for r_j in r)
                    blinding = G1Element.multiexp((msk1.phi, *u_sel), (1, *r))
                    fresh_a = tuple(
                        self.group.random_g(device1.rng) for _ in range(ell)
                    )
                    device1.secret.store("ext.a_next", list(fresh_a), derived=True)
                    f_pairs = tuple(
                        (
                            f_old[i],
                            self.hpske_g.encrypt(sk_comm, fresh_a[i], device1.rng),
                        )
                        for i in range(ell)
                    )
                    f_m = self.hpske_g.encrypt(sk_comm, blinding, device1.rng)
                yield Send(f"ext.{index}.f", (f_pairs, f_m))

                message = yield Recv(f"ext.{index}.f_combined")
                with device1.computing():
                    psi = self.hpske_g.decrypt(sk_comm, message.payload)
                assert isinstance(psi, G1Element)
                device1.secret.store(
                    _id_slot(1, identity),
                    IdentityShare1(r_pub=r_pub, a=fresh_a, psi=psi),
                )

        def p2():
            msk2 = self.share2_of(device2)
            for index, identity in enumerate(todo):
                message = yield Recv(f"ext.{index}.f")
                f_pairs, f_m = message.payload
                with device2.computing():
                    id_share2 = Share2(
                        tuple(
                            self.group.random_scalar(device2.rng)
                            for _ in range(ell)
                        ),
                        self.group.p,
                    )
                    combined = combine_refresh(msk2, id_share2, f_pairs, f_m)
                device2.secret.store(_id_slot(2, identity), id_share2)
                yield Send(f"ext.{index}.f_combined", combined)

        spec = ProtocolSpec(
            "dlribe.extract_batch",
            device1,
            device2,
            p1,
            p2,
            secrets1=("ext.r", "ext.sk_comm", "ext.a_next"),
            abort_erase=tuple(
                (device_index, _id_slot(device_index, identity))
                for identity in todo
                for device_index in (1, 2)
            ),
        )
        try:
            self._run_engine(spec, channel)
        except Exception:
            for identity in todo:
                self.extract_cache.invalidate(identity)
            raise
        for identity in todo:
            self._record_extraction(device1, device2, identity)
        return todo

    # ------------------------------------------------------------------
    # 2-party identity decryption
    # ------------------------------------------------------------------

    @traced("dec_id")
    def decrypt_protocol_id(
        self,
        device1: Device,
        device2: Device,
        channel: Transport,
        identity: str,
        ciphertext: IBECiphertext,
    ) -> GTElement:
        """Decrypt a ciphertext for ``identity`` with its key shares."""
        share1 = self.identity_share1_of(device1, identity)

        def p1():
            with device1.computing():
                b_star = ciphertext.b
                for c_j, r_j in zip(ciphertext.c, share1.r_pub):
                    b_star = b_star * self.group.pair(c_j, r_j)

                sk_comm = self.hpske_gt.keygen(device1.rng)
                device1.secret.store("iddec.sk_comm", sk_comm)
                # One Miller schedule for A = c.a, reused over every a_i
                # and Psi.
                a_precomp = self.group.pairing_precomp(ciphertext.a)
                d_list = tuple(
                    self.hpske_gt.encrypt(sk_comm, a_precomp.pair(a_i), device1.rng)
                    for a_i in share1.a
                )
                d_psi = self.hpske_gt.encrypt(
                    sk_comm, a_precomp.pair(share1.psi), device1.rng
                )
                d_b = self.hpske_gt.encrypt(sk_comm, b_star, device1.rng)
            yield Send("iddec.d", (d_list, d_psi, d_b))

            message = yield Recv("iddec.c_prime")
            with device1.computing():
                plaintext = self.hpske_gt.decrypt(sk_comm, message.payload)
            return plaintext

        spec = ProtocolSpec(
            "dlribe.decrypt",
            device1,
            device2,
            p1,
            lambda: self._p2_decrypt_steps(
                device2,
                prefix="iddec",
                share_of=lambda: self.identity_share2_of(device2, identity),
            ),
            secrets1=("iddec.sk_comm",),
        )
        plaintext = self._run_engine(spec, channel)
        assert isinstance(plaintext, GTElement)
        return plaintext

    # ------------------------------------------------------------------
    # 2-party identity key refresh
    # ------------------------------------------------------------------

    @traced("ref_id")
    def refresh_identity_protocol(
        self,
        pp: IBEPublicParams,
        device1: Device,
        device2: Device,
        channel: Transport,
        identity: str,
    ) -> None:
        """Refresh the identity key shares: fresh ``a''``, fresh ``s''``,
        and re-randomized BB exponents ``r_j + delta_j``.

        Staged like the master refresh: both devices park their fresh
        identity share in a pending slot and only swap it in at the
        ``idref.commit`` boundary; any earlier failure rolls both back
        to the old identity shares (:class:`~repro.errors.RefreshAborted`).
        """
        share1 = self.identity_share1_of(device1, identity)
        ell = self.params.ell
        u_sel = pp.u_for(hash_identity(identity, self.n_id))
        slot1 = _id_slot(1, identity)
        slot2 = _id_slot(2, identity)
        pending1 = slot1 + ".pending"
        pending2 = slot2 + ".pending"

        def p1():
            with device1.computing():
                delta = [self.group.random_scalar(device1.rng) for _ in range(self.n_id)]
                device1.secret.store("idref.delta", Share2(tuple(delta), self.group.p))
                new_r_pub = tuple(
                    r_j * (self.group.g ** d_j) for r_j, d_j in zip(share1.r_pub, delta)
                )
                shift = G1Element.multiexp((share1.psi, *u_sel), (1, *delta))

                sk_comm = self.hpske_g.keygen(device1.rng)
                device1.secret.store("idref.sk_comm", sk_comm)
                fresh_a = tuple(self.group.random_g(device1.rng) for _ in range(ell))
                device1.secret.store("idref.a_next", list(fresh_a), derived=True)
                f_pairs = tuple(
                    (
                        self.hpske_g.encrypt(sk_comm, share1.a[i], device1.rng),
                        self.hpske_g.encrypt(sk_comm, fresh_a[i], device1.rng),
                    )
                    for i in range(ell)
                )
                f_psi = self.hpske_g.encrypt(sk_comm, shift, device1.rng)
            yield Send("idref.f", (f_pairs, f_psi))

            message = yield Recv("idref.f_combined")
            with device1.computing():
                new_psi = self.hpske_g.decrypt(sk_comm, message.payload)
            assert isinstance(new_psi, G1Element)
            device1.secret.store(
                pending1,
                IdentityShare1(r_pub=new_r_pub, a=fresh_a, psi=new_psi),
            )
            yield Send("idref.commit", True)
            yield Commit()

        spec = ProtocolSpec(
            "dlribe.refresh_identity",
            device1,
            device2,
            p1,
            lambda: self._p2_refresh_steps(
                device2,
                prefix="idref",
                pending_slot=pending2,
                share_of=lambda: self.identity_share2_of(device2, identity),
            ),
            secrets1=("idref.delta", "idref.sk_comm", "idref.a_next"),
            staged=(
                StagedShare(1, slot1, pending1),
                StagedShare(2, slot2, pending2),
            ),
            abort_message=(
                f"identity refresh for {identity!r} aborted; "
                "both devices rolled back to their old identity shares"
            ),
        )
        self._run_engine(spec, channel)
        # A refresh mints a new generation: tokens captured against the
        # pre-refresh extraction must observe staleness.
        self.extract_cache.record(identity)

    # ------------------------------------------------------------------
    # Master rotation closes the extract-cache epoch
    # ------------------------------------------------------------------
    #
    # The master shares rotating is a period boundary on the master
    # leakage ledger; identity keys extracted under the previous master
    # generation stop being vouched for (see
    # :meth:`repro.ibe.extract_cache.IdentityKeyCache.advance_epoch`).

    def refresh_protocol(self, device1, device2, channel):
        super().refresh_protocol(device1, device2, channel)
        self.extract_cache.advance_epoch()

    def run_period(self, device1, device2, channel, ciphertext):
        record = super().run_period(device1, device2, channel, ciphertext)
        self.extract_cache.advance_epoch()
        return record

    def run_period_multi(self, device1, device2, channel, ciphertexts):
        record = super().run_period_multi(device1, device2, channel, ciphertexts)
        self.extract_cache.advance_epoch()
        return record

    # ------------------------------------------------------------------
    # One identity-key time period (for the session supervisor)
    # ------------------------------------------------------------------

    def has_identity_key(self, device1: Device, device2: Device, identity: str) -> bool:
        """Do both devices hold committed identity shares for ``identity``?"""
        return device1.secret.has(_id_slot(1, identity)) and device2.secret.has(
            _id_slot(2, identity)
        )

    def run_identity_period(
        self,
        pp: IBEPublicParams,
        device1: Device,
        device2: Device,
        channel: Transport,
        identity: str,
        ciphertext: IBECiphertext,
    ) -> IdentityPeriodRecord:
        """One full *identity-key* time period: extract the key shares if
        absent (first period, or after a resume -- identity keys are
        derived material, re-extractable from the master shares and never
        checkpointed), decrypt this period's traffic, refresh the
        identity shares.

        Crash-safe like :meth:`~repro.core.dlr.DLR.run_period`: a failed
        extraction erases its partial shares, a failed refresh rolls both
        devices back, so a supervisor simply re-runs the period.  The
        channel period advances only on success.
        """
        period = channel.current_period
        extracted = False
        if not self.has_identity_key(device1, device2, identity):
            self.extract_protocol(pp, device1, device2, channel, identity)
            extracted = True
        else:
            self.extract_cache.touch(identity)
        plaintext = self.decrypt_protocol_id(device1, device2, channel, identity, ciphertext)
        self.refresh_identity_protocol(pp, device1, device2, channel, identity)
        messages = channel.transcript(period)
        channel.advance_period()
        return IdentityPeriodRecord(period, identity, plaintext, extracted, messages)

    # ------------------------------------------------------------------
    # Share accessors / reference decryption
    # ------------------------------------------------------------------

    @staticmethod
    def identity_share1_of(device: Device, identity: str) -> IdentityShare1:
        share = device.secret.read(_id_slot(1, identity))
        if not isinstance(share, IdentityShare1):
            raise ProtocolError(f"P1 has no identity share for {identity!r}")
        return share

    @staticmethod
    def identity_share2_of(device: Device, identity: str) -> Share2:
        share = device.secret.read(_id_slot(2, identity))
        if not isinstance(share, Share2):
            raise ProtocolError(f"P2 has no identity share for {identity!r}")
        return share

    def reference_decrypt_id(
        self,
        share1: IdentityShare1,
        share2: Share2,
        ciphertext: IBECiphertext,
    ) -> GTElement:
        """Single-place decryption from the identity shares (tests only)."""
        p = self.group.p
        m = G1Element.multiexp(
            (share1.psi, *share1.a),
            (1, *((p - s_i) % p for s_i in share2.s)),
        )
        numerator = ciphertext.b
        for c_j, r_j in zip(ciphertext.c, share1.r_pub):
            numerator = numerator * self.group.pair(c_j, r_j)
        return numerator / self.group.pair(ciphertext.a, m)
