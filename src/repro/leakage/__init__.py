"""The continual-memory-leakage machinery (paper sections 3.2-3.3).

* :mod:`repro.leakage.functions` -- length-shrinking leakage functions.
* :mod:`repro.leakage.oracle` -- the challenger-side budget accounting.
* :mod:`repro.leakage.rates` -- the five leakage-rate parameters.
"""

from repro.leakage.functions import (
    BitProjection,
    HammingWeight,
    InnerProductBits,
    LeakageFunction,
    LeakageInput,
    PrefixBits,
    PythonLeakage,
)
from repro.leakage.oracle import LeakageBudget, LeakageOracle
from repro.leakage.rates import LeakageRates, compute_rates

__all__ = [
    "BitProjection",
    "HammingWeight",
    "InnerProductBits",
    "LeakageBudget",
    "LeakageFunction",
    "LeakageInput",
    "LeakageOracle",
    "LeakageRates",
    "PrefixBits",
    "PythonLeakage",
    "compute_rates",
]
