"""Polynomial-time, length-shrinking leakage functions.

The adversary chooses arbitrary polynomial-time computable functions with
bounded output length (section 3.2).  We model them as callables on a
:class:`LeakageInput` -- the secret memory of one device during one phase
plus the public information ``pub^t`` -- returning a
:class:`~repro.utils.bits.BitString` whose length is checked against the
declared bound by the oracle.

The concrete functions here cover the strategies our security-game
adversaries use: raw bit windows, projections, inner products (the
canonical "hard-to-simulate" leakage), Hamming weight, and arbitrary
user code wrapped with an output-length cap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import ParameterError
from repro.protocol.channel import Message
from repro.protocol.memory import PhaseSnapshot
from repro.utils.bits import BitString


@dataclass
class LeakageInput:
    """What one leakage function sees.

    ``snapshot`` is the device's secret memory over the phase (share +
    secret randomness + intermediates); ``public`` is the public
    information ``pub^t`` of that time period (transcript messages and
    public memory contents), which the model folds into the leakage input
    so function choice can depend on it.
    """

    snapshot: PhaseSnapshot
    public: list[Message]

    def secret_bits(self) -> BitString:
        return self.snapshot.to_bits()

    def secret_value(self, name: str) -> object:
        return self.snapshot.get(name)


class LeakageFunction:
    """Base class: a named function with a declared output length."""

    def __init__(self, output_length: int) -> None:
        if output_length < 0:
            raise ParameterError("leakage output length must be >= 0")
        self.output_length = output_length

    def __call__(self, leak_input: LeakageInput) -> BitString:
        result = self.evaluate(leak_input)
        if len(result) > self.output_length:
            raise ParameterError(
                f"{type(self).__name__} produced {len(result)} bits, "
                f"declared {self.output_length}"
            )
        return result

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        raise NotImplementedError


class NullLeakage(LeakageFunction):
    """Leaks nothing (the adversary may decline to leak in a period)."""

    def __init__(self) -> None:
        super().__init__(0)

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        return BitString.empty()


class PrefixBits(LeakageFunction):
    """The first ``k`` bits of the secret memory."""

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        bits = leak_input.secret_bits()
        return bits[: min(self.output_length, len(bits))]


class BitProjection(LeakageFunction):
    """Selected bit positions of the secret memory.

    Total: an index beyond the end of the snapshot reads as 0, so the
    output is always exactly ``len(indices)`` bits -- the declared
    ``output_length`` the oracle charges against.
    """

    def __init__(self, indices: list[int]) -> None:
        super().__init__(len(indices))
        self.indices = indices

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        bits = leak_input.secret_bits()
        return BitString.from_bits(
            bits.bit(i) if i < len(bits) else 0 for i in self.indices
        )


class HammingWeight(LeakageFunction):
    """The Hamming weight of the secret memory, as a fixed-width integer."""

    def __init__(self, memory_bits: int) -> None:
        super().__init__(max(memory_bits.bit_length(), 1))
        self.memory_bits = memory_bits

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        weight = leak_input.secret_bits().hamming_weight()
        return BitString(min(weight, (1 << self.output_length) - 1), self.output_length)


class InnerProductBits(LeakageFunction):
    """``k`` inner products of the secret memory with fixed mask strings.

    Parity leakage is the classic example of leakage that cannot be
    answered from the public view alone.
    """

    def __init__(self, masks: list[BitString]) -> None:
        super().__init__(len(masks))
        self.masks = masks

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        bits = leak_input.secret_bits()
        out = []
        for mask in self.masks:
            usable = min(len(mask), len(bits))
            parity = 0
            for i in range(usable):
                parity ^= bits.bit(i) & mask.bit(i)
            out.append(parity)
        return BitString.from_bits(out)


class HashLeakage(LeakageFunction):
    """``k`` bits of SHA-256 of the secret memory -- a generic entropy-
    shrinking function an adversary might use to fingerprint the state."""

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        digest = hashlib.sha256(leak_input.secret_bits().to_bytes()).digest()
        full = BitString.from_bytes(digest)
        return full[: self.output_length]


class PythonLeakage(LeakageFunction):
    """An arbitrary adversary-supplied callable, with the length cap
    enforced by the base class."""

    def __init__(self, fn: Callable[[LeakageInput], BitString], output_length: int) -> None:
        super().__init__(output_length)
        self._fn = fn

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        return self._fn(leak_input)


class NoisyBits(LeakageFunction):
    """Side-channel-style probing: selected bits observed through a
    binary symmetric channel with crossover probability ``flip_prob``.

    Models physical measurements (power/EM traces) that read key bits
    imperfectly.  The noise is derived deterministically from a seed so
    game runs stay reproducible; from the model's perspective this is
    just another polynomial-time length-shrinking function.
    """

    def __init__(self, indices: list[int], flip_prob: float, seed: int = 0) -> None:
        super().__init__(len(indices))
        if not 0.0 <= flip_prob <= 1.0:
            raise ParameterError("flip probability must be in [0, 1]")
        self.indices = indices
        self.flip_prob = flip_prob
        self.seed = seed

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        import random as _random

        bits = leak_input.secret_bits()
        noise = _random.Random(self.seed)
        out = []
        for index in self.indices:
            # Total, like BitProjection: probing past the end reads 0
            # (the noise draw still happens, keeping traces aligned).
            bit = bits.bit(index) if index < len(bits) else 0
            if noise.random() < self.flip_prob:
                bit ^= 1
            out.append(bit)
        return BitString.from_bits(out)


class WordHammingWeights(LeakageFunction):
    """Per-word Hamming weights: the classic power-analysis observable.

    The secret memory is split into ``word_bits``-wide words and the
    Hamming weight of each of the first ``words`` words is reported at
    fixed width -- what a power trace of a ``word_bits``-bit datapath
    reveals per cycle.
    """

    def __init__(self, words: int, word_bits: int = 8) -> None:
        if words < 1 or word_bits < 1:
            raise ParameterError("words and word_bits must be positive")
        self.words = words
        self.word_bits = word_bits
        self._weight_width = word_bits.bit_length()
        super().__init__(words * self._weight_width)

    def evaluate(self, leak_input: LeakageInput) -> BitString:
        bits = leak_input.secret_bits()
        out = BitString.empty()
        for w in range(self.words):
            start = w * self.word_bits
            if start >= len(bits):
                break
            end = min(start + self.word_bits, len(bits))
            word = bits[start:end]
            assert isinstance(word, BitString)
            out = out + BitString(word.hamming_weight(), self._weight_width)
        return out
