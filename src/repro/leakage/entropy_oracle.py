"""Entropy-shrinking leakage (paper footnote 1).

"More generally, both in [11, 15] and in our work it suffices to
restrict the leakage function to be *entropy shrinking* [32], namely,
requiring that the secret key has non-trivial average min-entropy
conditioned on the leakage."

A length-``b`` output shrinks entropy by at most ``b`` bits, but the
converse fails: a 1000-bit output that is a deterministic function of
10 key bits only costs 10 bits of entropy.  This module provides the
entropy-side accounting:

* :func:`entropy_loss` -- exact average-min-entropy loss of a leakage
  function over an enumerable secret distribution (toy domains);
* :class:`EntropyLeakageOracle` -- a budget oracle that charges the
  *measured entropy loss* instead of the output length, admitting
  long-but-uninformative leakage that the length-based oracle would
  refuse.

Exact conditional entropy needs the secret's distribution enumerated,
so this oracle is an analysis tool for toy parameters; the production
path stays the length-based :class:`~repro.leakage.oracle.LeakageOracle`
(a sound over-approximation).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import LeakageBudgetExceeded, ParameterError
from repro.math.entropy import average_min_entropy, min_entropy
from repro.utils.bits import BitString

SecretDistribution = dict[object, float]
LeakageMap = Callable[[object], BitString]


def entropy_loss(secrets: SecretDistribution, leak: LeakageMap) -> float:
    """Exact entropy cost: ``H_inf(X) - H~_inf(X | leak(X))``."""
    if not secrets:
        raise ParameterError("empty secret distribution")
    joint = {
        (secret, leak(secret)): probability
        for secret, probability in secrets.items()
    }
    return min_entropy(secrets) - average_min_entropy(joint)


def uniform_secrets(outcomes: Iterable[object]) -> SecretDistribution:
    """A uniform distribution over the given outcomes."""
    items = list(outcomes)
    if not items:
        raise ParameterError("no outcomes")
    return {outcome: 1.0 / len(items) for outcome in items}


class EntropyLeakageOracle:
    """Per-period budget in *bits of average min-entropy*.

    ``leak(secrets, leak_fn, actual_secret)`` measures the entropy loss
    of ``leak_fn`` over the declared distribution, charges it against
    the budget, and returns the leakage on the actual secret.
    """

    def __init__(self, entropy_budget_bits: float) -> None:
        if entropy_budget_bits < 0:
            raise ParameterError("budget must be non-negative")
        self.budget = entropy_budget_bits
        self.spent = 0.0
        self.period = 0

    def remaining(self) -> float:
        return max(self.budget - self.spent, 0.0)

    def leak(
        self,
        secrets: SecretDistribution,
        leak_fn: LeakageMap,
        actual_secret: object,
    ) -> BitString:
        if actual_secret not in secrets:
            raise ParameterError("actual secret outside declared distribution")
        cost = entropy_loss(secrets, leak_fn)
        if cost > self.remaining() + 1e-9:
            raise LeakageBudgetExceeded(
                "entropy", int(cost + 0.999), int(self.remaining())
            )
        self.spent += cost
        return leak_fn(actual_secret)

    def end_period(self) -> None:
        """Entropy budgets replenish with refresh, like length budgets."""
        self.spent = 0.0
        self.period += 1
