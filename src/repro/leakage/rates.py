"""Leakage rates (paper section 3.2 and the discussion after Theorem 4.1).

The rate quintuple is ``(rho_Gen, rho_1^Ref, rho_2^Ref, rho_1, rho_2)``::

    rho_Gen   = b0 / |r_Gen|
    rho_i^Ref = b_i / (|sk_i| + |r_i^Ref|)
    rho_i     = b_i / (|sk_i| + |r_i|)

The paper's headline numbers for DLR: ``rho_Gen = o(1)``,
``(rho_1, rho_2) = (1 - o(1), 1)`` and
``(rho_1^Ref, rho_2^Ref) = (1/2 - o(1), 1/2)`` -- with a strengthening to
``rho_2^Ref = 1`` shown in the proof.  The denominators double during
refresh because each device briefly holds both the outgoing and the
incoming share.  These formulas are *measured* in our benchmarks from the
actual phase snapshots, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.leakage.oracle import LeakageBudget


@dataclass(frozen=True)
class MemoryProfile:
    """Measured secret-memory sizes (bits) of one device."""

    share_bits: int
    normal_randomness_bits: int
    refresh_randomness_bits: int

    @property
    def normal_bits(self) -> int:
        return self.share_bits + self.normal_randomness_bits

    @property
    def refresh_bits(self) -> int:
        return self.share_bits + self.refresh_randomness_bits


@dataclass(frozen=True)
class LeakageRates:
    """The five leakage-rate parameters of the scheme."""

    rho_gen: float
    rho1_refresh: float
    rho2_refresh: float
    rho1: float
    rho2: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.rho_gen, self.rho1_refresh, self.rho2_refresh, self.rho1, self.rho2)


def compute_rates(
    budget: LeakageBudget,
    generation_randomness_bits: int,
    profile1: MemoryProfile,
    profile2: MemoryProfile,
) -> LeakageRates:
    """Compute the rate quintuple from a budget and measured memory sizes."""
    for name, denominator in (
        ("generation randomness", generation_randomness_bits),
        ("P1 normal memory", profile1.normal_bits),
        ("P2 normal memory", profile2.normal_bits),
        ("P1 refresh memory", profile1.refresh_bits),
        ("P2 refresh memory", profile2.refresh_bits),
    ):
        if denominator <= 0:
            raise ParameterError(f"{name} size must be positive")
    return LeakageRates(
        rho_gen=budget.b0 / generation_randomness_bits,
        rho1_refresh=budget.b1 / profile1.refresh_bits,
        rho2_refresh=budget.b2 / profile2.refresh_bits,
        rho1=budget.b1 / profile1.normal_bits,
        rho2=budget.b2 / profile2.normal_bits,
    )


def theoretical_b1(m1_bits: int, n: int, lam: int, c: int = 3) -> int:
    """Theorem 4.1's bound ``b1 = (1 - c n / (lambda + c n)) m1``.

    The proof sets ``c = 3`` for this construction
    (``|sk_comm| = kappa log p = lambda + 3n``), giving
    ``b1 = lambda / (lambda + 3n) * m1 -> m1`` as ``lambda`` grows.
    """
    if lam < 0 or n <= 0 or m1_bits <= 0:
        raise ParameterError("invalid Theorem 4.1 parameters")
    return (m1_bits * lam) // (lam + c * n)
