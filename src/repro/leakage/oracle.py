"""Challenger-side leakage accounting (Definition 3.2).

The length-shrinking restriction binds *per key share lifetime*: the sum
of the output lengths of the functions that leak while share ``sk_i^t``
is in memory -- that is, ``h_i^t`` (normal operation in period ``t``) and
``h_i^{t-1,Ref}`` (the refresh that *created* the share, at the end of
period ``t-1``)... rewritten from the challenger's viewpoint as

    L_i^t + |l_i^t| + |l_i^{t,Ref}|  <=  b_i

where ``L_i^t`` is the number of bits the *previous* refresh already
leaked about the current share (carried forward as ``L_i^{t+1} :=
|l_i^{t,Ref}|``).  Key-generation leakage has its own bound ``b0``.

:class:`LeakageOracle` implements exactly this bookkeeping and raises
:class:`~repro.errors.LeakageBudgetExceeded` (the challenger "aborts")
when the adversary oversteps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LeakageBudgetExceeded, ParameterError
from repro.leakage.functions import LeakageFunction, LeakageInput
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.bits import BitString


@dataclass(frozen=True)
class LeakageBudget:
    """The game's leakage parameter ``(b0, b1, b2)`` in bits."""

    b0: int
    b1: int
    b2: int

    def __post_init__(self) -> None:
        if min(self.b0, self.b1, self.b2) < 0:
            raise ParameterError("leakage bounds must be non-negative")

    def for_device(self, index: int) -> int:
        if index == 1:
            return self.b1
        if index == 2:
            return self.b2
        raise ParameterError("device index must be 1 or 2")


class _DeviceAccount:
    """Per-device accounting of one time period + carry-over."""

    def __init__(self, bound: int) -> None:
        self.bound = bound
        self.carried = 0  # L_i^t: bits the previous refresh leaked on this share
        self.period_normal = 0  # |l_i^t|
        self.period_refresh = 0  # |l_i^{t,Ref}|

    def available(self) -> int:
        return self.bound - self.carried - self.period_normal - self.period_refresh

    def charge_normal(self, bits: int, device: str) -> None:
        if bits > self.available():
            raise LeakageBudgetExceeded(device, bits, max(self.available(), 0))
        self.period_normal += bits

    def charge_refresh(self, bits: int, device: str) -> None:
        if bits > self.available():
            raise LeakageBudgetExceeded(device, bits, max(self.available(), 0))
        self.period_refresh += bits

    def roll_period(self) -> None:
        """End of period: refresh leakage becomes the carry for the new share."""
        self.carried = self.period_refresh
        self.period_normal = 0
        self.period_refresh = 0


class LeakageOracle:
    """Evaluates leakage functions against device snapshots under budget.

    Drives the per-period lifecycle::

        oracle.leak_generation(h, input)      # once, before period 0
        l1 = oracle.leak(1, h1, input)        # during period t
        r1 = oracle.leak_refresh(1, h1r, input)
        oracle.end_period()                   # t <- t + 1
    """

    def __init__(self, budget: LeakageBudget, metrics: MetricsRegistry | None = None) -> None:
        self.budget = budget
        self._accounts = {1: _DeviceAccount(budget.b1), 2: _DeviceAccount(budget.b2)}
        self._generation_used = 0
        self.period = 0
        self.total_leaked_bits = {0: 0, 1: 0, 2: 0}
        #: The oracle's bookkeeping substrate.  All charged bits land in
        #: these instruments (``leakage.leaked_bits``,
        #: ``leakage.retry_bits``); :attr:`retry_ledger` is a *view* over
        #: them, not a second tally.  Pass a shared registry to merge the
        #: oracle's numbers into a session-wide telemetry snapshot.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- key generation phase ---------------------------------------------

    def leak_generation(self, function: LeakageFunction, leak_input: LeakageInput) -> BitString:
        """Leakage on the key-generation randomness, bounded by ``b0``."""
        if self.period != 0 or self.total_leaked_bits[1] or self.total_leaked_bits[2]:
            raise ParameterError("generation leakage must precede all periods")
        requested = function.output_length
        if self._generation_used + requested > self.budget.b0:
            raise LeakageBudgetExceeded(
                "Gen", requested, self.budget.b0 - self._generation_used
            )
        result = function(leak_input)
        self._generation_used += len(result)
        self.total_leaked_bits[0] += len(result)
        self.metrics.counter("leakage.leaked_bits", phase="gen").inc(len(result))
        return result

    # -- per-period leakage ---------------------------------------------------

    def _account(self, device: int) -> _DeviceAccount:
        if device not in self._accounts:
            raise ParameterError(f"device index must be 1 or 2, got {device!r}")
        return self._accounts[device]

    @staticmethod
    def _checked(function: LeakageFunction, leak_input: LeakageInput) -> BitString:
        """Evaluate and enforce the declared output length.

        The budget is charged by ``function.output_length`` *before*
        evaluation, so a function that returns more bits than declared
        would leak past the bound; one that returns fewer corrupts the
        carry-over accounting.  Either is a malformed adversary query.
        """
        result = function(leak_input)
        if len(result) != function.output_length:
            raise ParameterError(
                f"leakage function declared output_length={function.output_length}"
                f" but returned {len(result)} bits"
            )
        return result

    def leak(self, device: int, function: LeakageFunction, leak_input: LeakageInput) -> BitString:
        """Evaluate ``h_i^t`` on the device's normal-operation snapshot."""
        account = self._account(device)
        account.charge_normal(function.output_length, f"P{device}")
        result = self._checked(function, leak_input)
        self.total_leaked_bits[device] += len(result)
        self.metrics.counter(
            "leakage.leaked_bits", phase="normal", device=str(device)
        ).inc(len(result))
        return result

    def leak_refresh(
        self, device: int, function: LeakageFunction, leak_input: LeakageInput
    ) -> BitString:
        """Evaluate ``h_i^{t,Ref}`` on the device's refresh snapshot."""
        account = self._account(device)
        account.charge_refresh(function.output_length, f"P{device}")
        result = self._checked(function, leak_input)
        self.total_leaked_bits[device] += len(result)
        self.metrics.counter(
            "leakage.leaked_bits", phase="refresh", device=str(device)
        ).inc(len(result))
        return result

    def charge_retry(self, device: int, bits: int) -> None:
        """Charge the partial transcript of a failed-then-retried
        protocol attempt against the device's *current-period* budget.

        A retry widens the adversary's view: the aborted attempt's
        frames are on the public wire in addition to the successful
        run's, and leakage functions may depend on the transcript.  The
        session supervisor (:mod:`repro.runtime`) therefore books every
        failed attempt's bits here *before* retrying; when the charge
        does not fit, :class:`~repro.errors.LeakageBudgetExceeded`
        propagates and the supervisor freezes instead of silently
        handing the adversary more transcript.
        """
        if bits < 0:
            raise ParameterError("retry charge must be >= 0")
        if bits == 0:
            # An attempt that died before putting anything on the wire
            # widened nothing; keep the ledger free of empty entries so
            # it stays in one-to-one balance with the session log.
            return
        account = self._account(device)
        account.charge_normal(bits, f"P{device}")
        # The counter *is* the ledger: one instrument per (period, device)
        # pair, reconstructed into dict shape by :attr:`retry_ledger`.
        for d in (1, 2):
            self.metrics.counter(
                "leakage.retry_bits", device=str(d), period=str(self.period)
            ).inc(bits if d == device else 0)
        self.total_leaked_bits[device] += bits

    @property
    def retry_ledger(self) -> dict[int, dict[int, int]]:
        """``{period: {device: bits}}`` view over the registry's
        ``leakage.retry_bits`` counters.  Periods appear once any retry
        was charged in them; both devices are always present per period
        (a device that never retried shows ``0``)."""
        ledger: dict[int, dict[int, int]] = {}
        for labels, counter in self.metrics.counters_named("leakage.retry_bits"):
            period = int(labels["period"])
            device = int(labels["device"])
            ledger.setdefault(period, {})[device] = counter.value
        return {
            period: {device: ledger[period][device] for device in sorted(ledger[period])}
            for period in sorted(ledger)
        }

    def retry_charged(self, period: int | None = None, device: int | None = None) -> int:
        """Total retry-charged bits, optionally filtered by period/device."""
        total = 0
        for labels, counter in self.metrics.counters_named("leakage.retry_bits"):
            if period is not None and int(labels["period"]) != period:
                continue
            if device is not None and int(labels["device"]) != device:
                continue
            total += counter.value
        return total

    def end_period(self) -> None:
        """Close time period ``t``: refresh leakage carries to the new share."""
        for account in self._accounts.values():
            account.roll_period()
        self.period += 1

    # -- introspection -----------------------------------------------------------

    def remaining(self, device: int) -> int:
        return max(self._accounts[device].available(), 0)

    def carried(self, device: int) -> int:
        return self._accounts[device].carried

    def account_view(self, device: int) -> dict[str, int]:
        """Current-period accounting for one device, for the dashboard."""
        account = self._account(device)
        return {
            "bound": account.bound,
            "carried": account.carried,
            "normal": account.period_normal,
            "refresh": account.period_refresh,
            "available": max(account.available(), 0),
        }

    def generation_view(self) -> dict[str, int]:
        """Key-generation (``b0``) accounting, for the dashboard."""
        return {
            "b0": self.budget.b0,
            "used": self._generation_used,
            "remaining": self.budget.b0 - self._generation_used,
        }
