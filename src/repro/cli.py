"""Command-line interface for the DLR scheme.

Key material and ciphertexts travel as the JSON envelopes of
:mod:`repro.utils.persist`.  The two "devices" are files on disk in this
demo driver -- a real deployment would keep share files on separate
hardware and run the protocol messages over a network.

Commands::

    repro-dlr keygen  -n 64 --lam 128 --out-dir keys/
    repro-dlr encrypt --pk keys/public_key.json --message <hex|-> --out ct.json
    repro-dlr decrypt --pk keys/public_key.json --share1 keys/share1.json \
                      --share2 keys/share2.json --ciphertext ct.json
    repro-dlr refresh --pk keys/public_key.json --share1 ... --share2 ... [--in-place]
    repro-dlr supervise --pk keys/public_key.json --share1 ... --share2 ... \
                        --periods 10 --seed 7 --checkpoint session.ckpt.json
    repro-dlr supervise --resume --checkpoint session.ckpt.json
    repro-dlr serve   --checkpoint-dir service-state/ --workers 4 --port 0 \
                      --announce service.addr
    repro-dlr trace   trace.jsonl --top 10
    repro-dlr metrics --log session.json
    repro-dlr info    --pk keys/public_key.json

``supervise`` drives a whole multi-period lifecycle through the
:mod:`repro.runtime` session supervisor: classified retries, durable
checkpoints after every committed period (kill the process at any
instant and ``--resume`` continues from the checkpoint), and a
structured session log (``--log``).  With ``--trace`` the lifecycle is
span-traced to JSONL (digest it with ``trace``); with ``--budget``
retries are charged against the Theorem 4.1 leakage budget and the
dashboard is printed (and embedded per period in ``--log``, which
``metrics`` renders).

``encrypt`` takes a GT element produced by ``random-message``; use
``random-message`` to mint one (printed as hex, decryption prints the
same hex back).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys

from repro.core.dlr import DLR
from repro.core.params import DLRParams
from repro.groups.encoding import decode_gt
from repro.groups.pairing_params import generate_params
from repro.groups.bilinear import BilinearGroup
from repro.protocol.channel import Channel
from repro.protocol.device import Device
from repro.utils import persist
from repro.utils.bits import BitString


def _write(path: pathlib.Path, text: str) -> None:
    path.write_text(text)
    print(f"wrote {path}")


def _load_public_key(path: str):
    return persist.loads(pathlib.Path(path).read_text())


def cmd_keygen(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed) if args.seed is not None else random.Random()
    group = BilinearGroup(generate_params(args.n, rng))
    params = DLRParams(group=group, lam=args.lam)
    scheme = DLR(params)
    generation = scheme.generate(rng)
    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    _write(out / "public_key.json", persist.dumps("public_key", generation.public_key))
    _write(out / "share1.json", persist.dumps("share1", generation.share1))
    _write(out / "share2.json", persist.dumps("share2", generation.share2))
    print(
        f"generated: n={params.n}, lambda={params.lam}, "
        f"kappa={params.kappa}, ell={params.ell}, "
        f"b1={params.theorem_b1()} bits/period"
    )
    return 0


def cmd_random_message(args: argparse.Namespace) -> int:
    public_key = _load_public_key(args.pk)
    rng = random.Random(args.seed) if args.seed is not None else random.Random()
    message = public_key.group.random_gt(rng)
    print(message.to_bits().to_bytes().hex())
    return 0


def cmd_encrypt(args: argparse.Namespace) -> int:
    public_key = _load_public_key(args.pk)
    group = public_key.group
    hex_text = sys.stdin.read().strip() if args.message == "-" else args.message
    width = group.gt_element_bits()
    message = decode_gt(
        group, BitString(int.from_bytes(bytes.fromhex(hex_text), "big"), width)
    )
    rng = random.Random(args.seed) if args.seed is not None else random.Random()
    scheme = DLR(public_key.params)
    ciphertext = scheme.encrypt(public_key, message, rng)
    _write(pathlib.Path(args.out), persist.dumps("ciphertext", ciphertext))
    return 0


def _devices_for(public_key, share1, share2, seed=None):
    rng = random.Random(seed) if seed is not None else random.Random()
    group = public_key.group
    scheme = DLR(public_key.params)
    device1 = Device("P1", group, rng)
    device2 = Device("P2", group, rng)
    scheme.install(device1, device2, share1, share2)
    return scheme, device1, device2


def cmd_decrypt(args: argparse.Namespace) -> int:
    public_key = _load_public_key(args.pk)
    group = public_key.group
    share1 = persist.loads(pathlib.Path(args.share1).read_text(), group)
    share2 = persist.loads(pathlib.Path(args.share2).read_text(), group)
    ciphertext = persist.loads(pathlib.Path(args.ciphertext).read_text(), group)
    scheme, device1, device2 = _devices_for(public_key, share1, share2, args.seed)
    plaintext = scheme.decrypt_protocol(device1, device2, Channel(), ciphertext)
    print(plaintext.to_bits().to_bytes().hex())
    return 0


def cmd_refresh(args: argparse.Namespace) -> int:
    public_key = _load_public_key(args.pk)
    group = public_key.group
    share1_path = pathlib.Path(args.share1)
    share2_path = pathlib.Path(args.share2)
    share1 = persist.loads(share1_path.read_text(), group)
    share2 = persist.loads(share2_path.read_text(), group)
    scheme, device1, device2 = _devices_for(public_key, share1, share2, args.seed)
    scheme.refresh_protocol(device1, device2, Channel())
    new_share1 = scheme.share1_of(device1)
    new_share2 = scheme.share2_of(device2)
    suffix = "" if args.in_place else ".refreshed"
    _write(share1_path.with_name(share1_path.name + suffix) if suffix else share1_path,
           persist.dumps("share1", new_share1))
    _write(share2_path.with_name(share2_path.name + suffix) if suffix else share2_path,
           persist.dumps("share2", new_share2))
    print("shares refreshed (public key unchanged)")
    return 0


def cmd_supervise(args: argparse.Namespace) -> int:
    import time

    from repro.core.optimal import OptimalDLR
    from repro.ibe.dlr_ibe import DLRIBE
    from repro.protocol.transport import InMemoryTransport, SocketTransport
    from repro.runtime import RetryPolicy, SessionSupervisor
    from repro.telemetry import Tracer, install_tracer

    if args.wire == "socket":
        transport = SocketTransport(timeout=args.timeout)
    else:
        transport = InMemoryTransport()
    policy = RetryPolicy(max_attempts=args.max_attempts)

    def on_commit(state) -> None:
        # Flushed so a parent process (or a human tail) can watch
        # progress in real time -- the kill/resume harness relies on it.
        print(
            f"period {state.next_period - 1} committed "
            f"({state.remaining_periods} remaining)",
            flush=True,
        )
        if args.pace > 0:
            time.sleep(args.pace)

    if args.resume:
        if args.checkpoint is None:
            print("--resume requires --checkpoint", file=sys.stderr)
            return 2
        supervisor = SessionSupervisor.resume(
            args.checkpoint, transport, policy=policy, on_period_commit=on_commit
        )
        print(
            f"resumed {supervisor.state.scheme} session at period "
            f"{supervisor.state.next_period}/{supervisor.state.periods_total}",
            flush=True,
        )
    else:
        for required in ("pk", "share1", "share2"):
            if getattr(args, required) is None:
                print(f"--{required} is required unless --resume", file=sys.stderr)
                return 2
        public_key = _load_public_key(args.pk)
        group = public_key.group
        share1 = persist.loads(pathlib.Path(args.share1).read_text(), group)
        share2 = persist.loads(pathlib.Path(args.share2).read_text(), group)
        scheme_cls = {"dlr": DLR, "optimal": OptimalDLR, "dlribe": DLRIBE}[args.scheme]
        supervisor = SessionSupervisor.start(
            scheme_cls(public_key.params),
            transport,
            public_key=public_key,
            share1=share1,
            share2=share2,
            periods=args.periods,
            seed=args.seed,
            checkpoint_path=args.checkpoint,
            policy=policy,
            on_period_commit=on_commit,
        )
    if args.budget:
        from repro.leakage.oracle import LeakageBudget, LeakageOracle

        params = supervisor.state.public_key.params
        supervisor.oracle = LeakageOracle(
            LeakageBudget(b0=0, b1=params.theorem_b1(), b2=params.theorem_b2())
        )
    tracer = None
    if args.trace is not None:
        tracer = Tracer()
        previous = install_tracer(tracer)
    try:
        result = supervisor.run()
    finally:
        if tracer is not None:
            install_tracer(previous)
    if tracer is not None:
        tracer.export_jsonl(args.trace)
        print(f"wrote {args.trace}")
    if args.log is not None:
        persist.atomic_write_text(args.log, result.log.to_json())
        print(f"wrote {args.log}")
    if supervisor.oracle is not None:
        from repro.telemetry import budget_dashboard, render_budget_dashboard

        print(render_budget_dashboard(budget_dashboard(supervisor.oracle)))
    print(json.dumps(result.log.to_dict()["summary"], indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-session key service until interrupted.

    ``--announce FILE`` writes ``host port`` once the listener is bound
    (the port is ephemeral with ``--port 0``), so test harnesses and
    init scripts can wait for the file instead of polling the socket.
    ``--max-requests N`` drains and exits after N requests -- the knob
    the CLI test and the bench harness use for bounded runs.

    SIGTERM / SIGINT trigger a graceful drain: stop accepting, finish
    in-flight requests within ``--drain-deadline`` seconds, flush every
    resident session's checkpoint, and exit -- nonzero only if a
    checkpoint flush failed (the deployment's durable state could not
    be proven complete).
    """
    import signal
    import threading as _threading

    from repro.service import KeyService, SessionRegistry
    from repro.telemetry import Tracer, install_tracer

    registry = SessionRegistry(
        args.checkpoint_dir, capacity=args.capacity, budgeted=args.budget
    )
    service = KeyService(
        registry,
        host=args.host,
        port=args.port,
        workers=args.workers,
        client_timeout=args.timeout,
        max_requests=args.max_requests,
        backlog=args.backlog,
    )
    from repro.math.backend import active_backend

    tracer = None
    previous_tracer = None
    if args.trace is not None:
        # The server is one actor in a cross-process trace: qualified
        # span ids keep its file merge-safe against any client's.
        tracer = Tracer(actor="server")
        previous_tracer = install_tracer(tracer)
    service.start()
    host, port = service.address
    print(f"serving on {host}:{port} ({args.workers} workers, "
          f"capacity {args.capacity}, backend {active_backend().name})", flush=True)
    if args.announce is not None:
        persist.atomic_write_text(args.announce, f"{host} {port}\n")
    prom = None
    if args.prom_port is not None:
        from repro.service import PrometheusEndpoint

        prom = PrometheusEndpoint(service, host=args.host, port=args.prom_port).start()
        prom_host, prom_port = prom.address
        print(f"prometheus on {prom_host}:{prom_port}", flush=True)
        if args.prom_announce is not None:
            persist.atomic_write_text(args.prom_announce, f"{prom_host} {prom_port}\n")

    def request_drain(signum, frame):
        print(f"received signal {signum}; draining", flush=True)
        service.begin_drain()

    previous_handlers = {}
    # signal.signal only works on the main thread; the in-process CLI
    # tests drive serve from a worker thread and keep the old
    # KeyboardInterrupt path instead.
    if _threading.current_thread() is _threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, request_drain)
    try:
        service.wait()
    except KeyboardInterrupt:
        print("interrupted; draining", flush=True)
    finally:
        service.stop(drain_deadline=args.drain_deadline)
        if prom is not None:
            prom.stop()
        if tracer is not None:
            install_tracer(previous_tracer)
            tracer.export_jsonl(args.trace)
            print(f"wrote {args.trace}", flush=True)
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    snapshot = service.metrics.snapshot()
    print(json.dumps(
        {
            "requests_handled": service.requests_handled,
            "drain_failures": service.drain_failures,
            "counters": snapshot["counters"],
        },
        indent=2,
        sort_keys=True,
    ))
    if service.drain_failures:
        print(
            f"drain failed to checkpoint {len(service.drain_failures)} "
            "session(s)", file=sys.stderr, flush=True,
        )
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Digest a span-trace JSONL file, or -- as ``trace analyze FILE...``
    -- merge one or more (cross-process) traces and report critical-path
    decomposition and per-step aggregates."""
    from repro.telemetry import (
        merge_trace_files,
        render_trace_analysis,
        render_trace_report,
        trace_analysis,
        validate_trace_file,
    )

    files = list(args.files)
    if files and files[0] == "analyze":
        files = files[1:]
        if not files:
            print("trace analyze: at least one trace file required", file=sys.stderr)
            return 2
        try:
            spans = merge_trace_files(files, output=args.merged_out)
        except (OSError, ValueError) as exc:
            print(f"invalid trace: {exc}", file=sys.stderr)
            return 1
        if args.merged_out is not None:
            print(f"wrote {args.merged_out}")
        print(render_trace_analysis(trace_analysis(spans)))
        return 0
    if len(files) != 1:
        print(
            "trace: exactly one file for the digest (use 'trace analyze "
            "FILE...' for multi-file analysis)",
            file=sys.stderr,
        )
        return 2
    try:
        spans = validate_trace_file(files[0])
    except ValueError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    print(render_trace_report(spans, top=args.top))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render the per-period telemetry snapshots of a session log."""
    from repro.telemetry import render_period_metrics

    log_dict = json.loads(pathlib.Path(args.log).read_text())
    if args.json:
        print(json.dumps([p.get("metrics", {}) for p in log_dict.get("periods", [])], indent=2))
        return 0
    print(render_period_metrics(log_dict))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    public_key = _load_public_key(args.pk)
    params = public_key.params
    pairing = params.group.params
    info = {
        "security_parameter_n": params.n,
        "group_order_bits": pairing.p.bit_length(),
        "field_bits": pairing.q.bit_length(),
        "cofactor": pairing.h,
        "lambda": params.lam,
        "kappa": params.kappa,
        "ell": params.ell,
        "m1_bits": params.sk_comm_bits(),
        "m2_bits": params.sk2_bits(),
        "b1_bits_per_period": params.theorem_b1(),
        "b2_bits_per_period": params.theorem_b2(),
    }
    print(json.dumps(info, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dlr",
        description="Distributed leakage-resilient PKE (PODC 2012 reproduction)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "gmpy2"),
        default=None,
        help="field-arithmetic backend (default: $REPRO_BACKEND or auto-detect; "
        "see docs/performance.md)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for batch pairing/multiexp kernels "
        "(default: $REPRO_JOBS or 1 = in-process; see docs/performance.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    keygen = sub.add_parser("keygen", help="generate pk + device shares")
    keygen.add_argument("-n", type=int, default=64, help="security parameter (bits of p)")
    keygen.add_argument("--lam", type=int, default=128, help="leakage parameter lambda")
    keygen.add_argument("--out-dir", default="keys", help="output directory")
    keygen.add_argument("--seed", type=int, default=None)
    keygen.set_defaults(fn=cmd_keygen)

    rmsg = sub.add_parser("random-message", help="mint a random GT plaintext (hex)")
    rmsg.add_argument("--pk", required=True)
    rmsg.add_argument("--seed", type=int, default=None)
    rmsg.set_defaults(fn=cmd_random_message)

    enc = sub.add_parser("encrypt", help="encrypt a GT plaintext")
    enc.add_argument("--pk", required=True)
    enc.add_argument("--message", required=True, help="hex plaintext or '-' for stdin")
    enc.add_argument("--out", required=True)
    enc.add_argument("--seed", type=int, default=None)
    enc.set_defaults(fn=cmd_encrypt)

    dec = sub.add_parser("decrypt", help="run the 2-party decryption protocol")
    dec.add_argument("--pk", required=True)
    dec.add_argument("--share1", required=True)
    dec.add_argument("--share2", required=True)
    dec.add_argument("--ciphertext", required=True)
    dec.add_argument("--seed", type=int, default=None)
    dec.set_defaults(fn=cmd_decrypt)

    ref = sub.add_parser("refresh", help="run the 2-party refresh protocol")
    ref.add_argument("--pk", required=True)
    ref.add_argument("--share1", required=True)
    ref.add_argument("--share2", required=True)
    ref.add_argument("--in-place", action="store_true")
    ref.add_argument("--seed", type=int, default=None)
    ref.set_defaults(fn=cmd_refresh)

    sup = sub.add_parser(
        "supervise",
        help="drive a supervised multi-period lifecycle (checkpointed, resumable)",
    )
    sup.add_argument("--pk", default=None)
    sup.add_argument("--share1", default=None)
    sup.add_argument("--share2", default=None)
    sup.add_argument("--scheme", choices=("dlr", "optimal", "dlribe"), default="dlr")
    sup.add_argument("--periods", type=int, default=5)
    sup.add_argument("--seed", type=int, default=0)
    sup.add_argument("--checkpoint", default=None, help="durable checkpoint file")
    sup.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting fresh",
    )
    sup.add_argument("--wire", choices=("memory", "socket"), default="memory")
    sup.add_argument("--timeout", type=float, default=30.0, help="socket timeout (s)")
    sup.add_argument("--max-attempts", type=int, default=3)
    sup.add_argument("--log", default=None, help="write the session log JSON here")
    sup.add_argument(
        "--pace",
        type=float,
        default=0.0,
        help="sleep between periods (widens the crash window for drills)",
    )
    sup.add_argument(
        "--trace",
        default=None,
        metavar="JSONL",
        help="record a span trace of the whole lifecycle to this JSONL file",
    )
    sup.add_argument(
        "--budget",
        action="store_true",
        help="account retries against the Theorem 4.1 leakage budget and "
        "print the budget dashboard (embedded per period in --log)",
    )
    sup.set_defaults(fn=cmd_supervise)

    serve = sub.add_parser(
        "serve",
        help="run the multi-session key service (framed TCP, many keys)",
    )
    serve.add_argument("--checkpoint-dir", default="service-state",
                       help="directory of per-key durable checkpoints")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port (see --announce)")
    serve.add_argument("--workers", type=int, default=4,
                       help="request worker threads (concurrent sessions served)")
    serve.add_argument("--capacity", type=int, default=64,
                       help="max resident sessions before LRU eviction")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-connection idle timeout (s); silent clients are dropped")
    serve.add_argument("--backlog", type=int, default=8,
                       help="connections beyond the worker count before brownout "
                            "shedding kicks in")
    serve.add_argument("--drain-deadline", type=float, default=30.0,
                       help="seconds in-flight requests may take to finish "
                            "during a graceful drain (SIGTERM/SIGINT)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="drain and exit after this many requests")
    serve.add_argument("--announce", default=None, metavar="FILE",
                       help="write 'host port' here once the listener is bound")
    serve.add_argument("--prom-port", type=int, default=None, metavar="PORT",
                       help="also serve a read-only Prometheus scrape endpoint "
                            "(GET /metrics, GET /health) on this port (0 = ephemeral)")
    serve.add_argument("--prom-announce", default=None, metavar="FILE",
                       help="write 'host port' of the Prometheus endpoint here "
                            "once it is bound (separate from --announce)")
    serve.add_argument("--trace", default=None, metavar="JSONL",
                       help="record a server-side span trace (actor 'server') "
                            "to this JSONL file at exit")
    serve.add_argument("--no-budget", dest="budget", action="store_false",
                       help="serve without leakage-budget admission control")
    serve.set_defaults(fn=cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="digest a span-trace JSONL file (or: trace analyze FILE...)",
    )
    trace.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="trace JSONL file(s); prefix with the literal word 'analyze' "
        "for cross-process critical-path analysis of merged traces",
    )
    trace.add_argument("--top", type=int, default=10, help="hottest spans to list")
    trace.add_argument("--merged-out", default=None, metavar="JSONL",
                       help="with 'analyze': also write the merged trace here")
    trace.set_defaults(fn=cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="render per-period telemetry from a session log"
    )
    metrics.add_argument("--log", required=True, help="session log JSON (supervise --log)")
    metrics.add_argument("--json", action="store_true", help="raw metrics snapshots as JSON")
    metrics.set_defaults(fn=cmd_metrics)

    info = sub.add_parser("info", help="print parameters of a public key")
    info.add_argument("--pk", required=True)
    info.set_defaults(fn=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        from repro.errors import ParameterError
        from repro.math.backend import set_backend

        try:
            set_backend(args.backend)
        except ParameterError as exc:
            print(f"--backend {args.backend}: {exc}", file=sys.stderr)
            return 2
    if args.jobs is not None:
        from repro.parallel import set_jobs

        if args.jobs < 1:
            print(f"--jobs {args.jobs}: must be >= 1", file=sys.stderr)
            return 2
        set_jobs(args.jobs)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
