"""Secure storage on continually leaky devices (paper sections 1.1, 4.4)."""

from repro.storage.leaky_store import LeakyStore, StoredSecret

__all__ = ["LeakyStore", "StoredSecret"]
